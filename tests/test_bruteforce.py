"""Self-checks for the brute-force oracle (the oracle must be right)."""

import pytest

from repro.baselines.bruteforce import (
    BruteForceLimitError,
    brute_force_mine,
    enumerate_contained_sequences,
    nonempty_subsets,
)
from repro.core.sequence import Sequence, sequence_contains
from repro.db.database import SequenceDatabase
from tests.test_database import paper_db


class TestNonemptySubsets:
    def test_singleton(self):
        assert nonempty_subsets((1,)) == [(1,)]

    def test_pair(self):
        assert sorted(nonempty_subsets((1, 2))) == [(1,), (1, 2), (2,)]

    def test_count_is_2n_minus_1(self):
        assert len(nonempty_subsets((1, 2, 3, 4))) == 15


class TestEnumeration:
    def test_single_event(self):
        found = enumerate_contained_sequences(((1, 2),))
        assert found == {
            (frozenset({1}),),
            (frozenset({2}),),
            (frozenset({1, 2}),),
        }

    def test_two_events_counts(self):
        # 3 subsets per (1,2)-event; sequences: 3 + 1 + 3*1 single/pairs...
        found = enumerate_contained_sequences(((1, 2), (3,)))
        singles = {s for s in found if len(s) == 1}
        pairs = {s for s in found if len(s) == 2}
        assert len(singles) == 4  # {1},{2},{1,2},{3}
        assert len(pairs) == 3  # each subset of (1,2) followed by {3}

    def test_every_enumerated_sequence_is_contained(self):
        events = ((1, 2), (2, 3), (1,))
        for pattern in enumerate_contained_sequences(events):
            assert sequence_contains(events, pattern)

    def test_max_pattern_length(self):
        found = enumerate_contained_sequences(((1,), (2,), (3,)), max_pattern_length=2)
        assert max(len(s) for s in found) == 2

    def test_limit_enforced(self):
        with pytest.raises(BruteForceLimitError):
            enumerate_contained_sequences(
                tuple((i, i + 1, i + 2, i + 3) for i in range(8)), limit=50
            )


class TestBruteForceMine:
    def test_paper_golden_answer(self):
        results = brute_force_mine(paper_db(), minsup=0.25)
        assert [(str(s), c) for s, c in results] == [
            ("<(30)(40 70)>", 2),
            ("<(30)(90)>", 2),
        ]

    def test_minsup_one(self):
        db = SequenceDatabase.from_sequences([[(1,), (2,)], [(1,), (2,)]])
        results = brute_force_mine(db, minsup=1.0)
        assert [(str(s), c) for s, c in results] == [("<(1)(2)>", 2)]

    def test_single_customer(self):
        db = SequenceDatabase.from_sequences([[(1, 2), (3,)]])
        results = brute_force_mine(db, minsup=1.0)
        assert [(str(s), c) for s, c in results] == [("<(1 2)(3)>", 1)]

    def test_respects_max_pattern_length(self):
        db = SequenceDatabase.from_sequences([[(1,), (2,), (3,)]])
        results = brute_force_mine(db, minsup=1.0, max_pattern_length=2)
        assert all(s.length <= 2 for s, _ in results)

    def test_empty_db(self):
        assert brute_force_mine(SequenceDatabase([]), minsup=0.5) == []

    def test_supports_are_exact(self):
        db = paper_db()
        for seq, count in brute_force_mine(db, minsup=0.25):
            assert db.support_count(seq) == count
