"""Tests for the PrefixSpan baseline — the independent second oracle."""

from hypothesis import HealthCheck, given, settings

from repro import mine_sequential_patterns
from repro.baselines.bruteforce import enumerate_contained_sequences
from repro.baselines.prefixspan import (
    iter_frequent_counts,
    prefixspan_frequent_set,
    prefixspan_mine,
)
from repro.core.sequence import Sequence, sequence_contains
from repro.db.database import SequenceDatabase
from tests import strategies as my
from tests.test_database import paper_db

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def brute_force_frequent(db, minsup):
    threshold = db.threshold(minsup)
    candidates = set()
    for customer in db:
        candidates |= enumerate_contained_sequences(customer.events)
    frequent = {}
    for pattern in candidates:
        count = sum(1 for c in db if sequence_contains(c.events, pattern))
        if count >= threshold:
            frequent[Sequence(tuple(sorted(e)) for e in pattern)] = count
    return frequent


class TestGolden:
    def test_paper_example_all_frequent(self):
        patterns = prefixspan_mine(paper_db(), 0.25)
        got = dict(iter_frequent_counts(patterns))
        assert got == {
            "<(30)>": 4,
            "<(40)>": 2,
            "<(70)>": 3,
            "<(40 70)>": 2,
            "<(90)>": 3,
            "<(30)(40)>": 2,
            "<(30)(70)>": 2,
            "<(30)(40 70)>": 2,
            "<(30)(90)>": 2,
        }

    def test_paper_example_maximal(self):
        patterns = prefixspan_mine(paper_db(), 0.25, maximal=True)
        assert [str(p.sequence) for p in patterns] == [
            "<(30)(40 70)>",
            "<(30)(90)>",
        ]

    def test_i_extension_needs_same_event(self):
        db = SequenceDatabase.from_sequences([[(1,), (2,)], [(1,), (2,)]])
        got = {str(p.sequence) for p in prefixspan_mine(db, 1.0)}
        assert "<(1 2)>" not in got
        assert "<(1)(2)>" in got

    def test_i_extension_beyond_greedy_position(self):
        """The i-extension must see events after the first match of the
        last element: <(a)(b c)> when the first (b) lacks c."""
        db = SequenceDatabase.from_sequences(
            [[(1,), (2,), (2, 3)], [(1,), (2,), (2, 3)]]
        )
        got = {str(p.sequence) for p in prefixspan_mine(db, 1.0)}
        assert "<(1)(2 3)>" in got

    def test_repeated_item_sequences(self):
        db = SequenceDatabase.from_sequences([[(1,), (1,), (1,)]] * 2)
        got = {str(p.sequence) for p in prefixspan_mine(db, 1.0)}
        assert got == {"<(1)>", "<(1)(1)>", "<(1)(1)(1)>"}

    def test_max_pattern_length(self):
        db = SequenceDatabase.from_sequences([[(1,), (2,), (3,)]] * 2)
        patterns = prefixspan_mine(db, 1.0, max_pattern_length=2)
        assert max(p.sequence.length for p in patterns) == 2

    def test_empty_db(self):
        assert prefixspan_mine(SequenceDatabase([]), 0.5) == []

    def test_supports_exact(self):
        db = paper_db()
        for p in prefixspan_mine(db, 0.25):
            assert db.support_count(p.sequence) == p.count


class TestProperties:
    @given(my.databases(), my.minsups())
    @RELAXED
    def test_matches_bruteforce_frequent_set(self, db, minsup):
        assert prefixspan_frequent_set(db, minsup) == brute_force_frequent(
            db, minsup
        )

    @given(my.databases(), my.minsups())
    @RELAXED
    def test_maximal_matches_core_miner(self, db, minsup):
        """Two algorithm families, zero shared mining code — same answer."""
        ps = prefixspan_mine(db, minsup, maximal=True)
        core = mine_sequential_patterns(db, minsup).patterns
        assert [(p.sequence, p.count) for p in ps] == [
            (p.sequence, p.count) for p in core
        ]

    @given(my.databases(max_customers=4), my.minsups())
    @RELAXED
    def test_capped_matches_bruteforce(self, db, minsup):
        capped = prefixspan_mine(db, minsup, max_pattern_length=2)
        expected = {
            seq: count
            for seq, count in brute_force_frequent(db, minsup).items()
            if seq.length <= 2
        }
        assert {p.sequence: p.count for p in capped} == expected
