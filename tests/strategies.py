"""Shared hypothesis strategies for property-based tests.

The databases produced here are deliberately tiny (≤ 7 customers, short
histories, small alphabets): small enough for the exponential brute-force
oracle, dense enough that interesting containment structure (shared
prefixes, same-length strict containment, repeated litemsets) appears
often.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.sequence import Itemset, Sequence
from repro.db.database import SequenceDatabase


def itemsets(max_item: int = 6, max_size: int = 3) -> st.SearchStrategy[Itemset]:
    return st.sets(
        st.integers(min_value=1, max_value=max_item), min_size=1, max_size=max_size
    ).map(lambda s: tuple(sorted(s)))


def event_lists(
    max_item: int = 6,
    max_size: int = 3,
    max_events: int = 4,
) -> st.SearchStrategy[list[Itemset]]:
    return st.lists(itemsets(max_item, max_size), min_size=1, max_size=max_events)


def sequences(
    max_item: int = 6, max_size: int = 3, max_events: int = 4
) -> st.SearchStrategy[Sequence]:
    return event_lists(max_item, max_size, max_events).map(Sequence)


def databases(
    max_customers: int = 6,
    max_item: int = 5,
    max_event_size: int = 3,
    max_events: int = 4,
) -> st.SearchStrategy[SequenceDatabase]:
    return st.lists(
        event_lists(max_item, max_event_size, max_events),
        min_size=1,
        max_size=max_customers,
    ).map(SequenceDatabase.from_sequences)


def id_event_sequences(
    max_id: int = 8, max_events: int = 6, max_event_size: int = 4
) -> st.SearchStrategy[tuple[frozenset[int], ...]]:
    """Transformed customer sequences (events of litemset ids)."""
    return st.lists(
        st.frozensets(
            st.integers(min_value=1, max_value=max_id),
            min_size=1,
            max_size=max_event_size,
        ),
        min_size=1,
        max_size=max_events,
    ).map(tuple)


def id_sequences(
    max_id: int = 8, max_length: int = 4
) -> st.SearchStrategy[tuple[int, ...]]:
    """Candidate sequences over the id alphabet."""
    return st.lists(
        st.integers(min_value=1, max_value=max_id), min_size=1, max_size=max_length
    ).map(tuple)


def minsups() -> st.SearchStrategy[float]:
    return st.sampled_from([0.15, 0.25, 0.4, 0.5, 0.75, 1.0])
