"""``seqmine fsck`` repair semantics (:mod:`repro.db.fsck`).

The covered contract: temp-file orphans and uncommitted delta files are
removed (they were never part of the database); a corrupt delta
generation quarantines itself and every later generation and rolls the
manifest back with exactly recomputed statistics; base/manifest damage
is fatal; stale or unreadable mining-state snapshots are quarantined;
invalid derived caches are deleted. After any successful fsck the
directory must reopen, and a second fsck must be clean.
"""

import json

import pytest

from repro.db.database import CustomerSequence
from repro.db.fsck import QUARANTINE_SUFFIX, FsckReport, fsck_directory
from repro.db.partitioned import (
    MANIFEST_NAME,
    MINING_STATE_NAME,
    PartitionedDatabase,
    delta_partition_file_name,
    partition_file_name,
)
from repro.incremental.state import MiningState
from repro.io.state import write_mining_state


def customers(start: int, count: int) -> list[CustomerSequence]:
    return [
        CustomerSequence(
            customer_id=cid,
            events=((cid % 5 + 1,), tuple(sorted({cid % 3 + 1, 6}))),
        )
        for cid in range(start, start + count)
    ]


def make_db(directory, *, deltas: int = 0) -> PartitionedDatabase:
    """A 2-partition base of 10 customers plus ``deltas`` generations of
    4 new customers each."""
    db = PartitionedDatabase.create(directory, customers(1, 10), partitions=2)
    for generation in range(1, deltas + 1):
        db.append_delta(customers(1 + 10 + 4 * (generation - 1), 4))
    return db


def corrupt(path) -> None:
    """Break a binlog detectably (truncate into the footer)."""
    path.write_bytes(path.read_bytes()[:-7])


def snapshot(generation: int, num_customers: int) -> MiningState:
    return MiningState(
        minsup=0.3,
        algorithm="aprioriall",
        strategy="hashtree",
        num_customers=num_customers,
        generation=generation,
        length2_complete=True,
    )


class TestCleanDatabase:
    def test_clean_reports_clean(self, tmp_path):
        make_db(tmp_path / "db", deltas=2)
        report = fsck_directory(tmp_path / "db")
        assert report.clean
        assert report.rolled_back_to_generation is None
        assert report.removed == [] and report.quarantined == []
        assert report.checked_files > 0
        assert report.lines()[-1] == "clean"

    def test_current_mining_state_is_kept(self, tmp_path):
        db = make_db(tmp_path / "db", deltas=1)
        write_mining_state(
            snapshot(1, db.num_customers),
            tmp_path / "db" / MINING_STATE_NAME,
        )
        assert fsck_directory(tmp_path / "db").clean
        assert (tmp_path / "db" / MINING_STATE_NAME).exists()


class TestInterruptedWrites:
    def test_tmp_orphans_removed(self, tmp_path):
        make_db(tmp_path / "db")
        (tmp_path / "db" / (MANIFEST_NAME + ".tmp")).write_text("{par")
        (tmp_path / "db" / "transformed").mkdir()
        (tmp_path / "db" / "transformed" / "tpart-00000.binlog.tmp").write_bytes(
            b"SQBL"
        )
        report = fsck_directory(tmp_path / "db")
        assert not report.clean
        assert len(report.removed) == 2
        assert not list((tmp_path / "db").glob("**/*.tmp"))
        assert any("interrupted write" in p for p in report.problems)
        assert fsck_directory(tmp_path / "db").clean

    def test_uncommitted_delta_removed(self, tmp_path):
        make_db(tmp_path / "db", deltas=1)
        # An append that died after writing its partition but before the
        # manifest replace: the file exists, no manifest entry claims it.
        orphan = tmp_path / "db" / delta_partition_file_name(2, 0)
        orphan.write_bytes(b"SQBL\x02partial")
        report = fsck_directory(tmp_path / "db")
        assert report.removed == [orphan.name]
        assert not orphan.exists()
        assert report.rolled_back_to_generation is None  # gen 1 untouched
        reopened = PartitionedDatabase.open(tmp_path / "db")
        assert reopened.generation == 1
        assert reopened.num_customers == 14


class TestDeltaRollback:
    def test_corrupt_generation_quarantines_itself_and_later(self, tmp_path):
        make_db(tmp_path / "db", deltas=3)
        corrupt(tmp_path / "db" / delta_partition_file_name(2, 0))
        report = fsck_directory(tmp_path / "db")
        assert not report.clean
        assert report.rolled_back_to_generation == 1
        # Generations 2 and 3 quarantined; generation 1 untouched.
        assert delta_partition_file_name(2, 0) in report.quarantined
        assert delta_partition_file_name(3, 0) in report.quarantined
        assert (tmp_path / "db").glob("*" + QUARANTINE_SUFFIX)
        assert (tmp_path / "db" / delta_partition_file_name(1, 0)).exists()

    def test_rollback_recomputes_statistics_and_reopens(self, tmp_path):
        reference = make_db(tmp_path / "ref", deltas=1)
        make_db(tmp_path / "db", deltas=3)
        corrupt(tmp_path / "db" / delta_partition_file_name(2, 0))
        fsck_directory(tmp_path / "db")
        rolled = PartitionedDatabase.open(tmp_path / "db")
        assert rolled.generation == 1
        assert rolled.num_customers == reference.num_customers == 14
        manifest = json.loads(
            (tmp_path / "db" / MANIFEST_NAME).read_text(encoding="utf-8")
        )
        expected = json.loads(
            (tmp_path / "ref" / MANIFEST_NAME).read_text(encoding="utf-8")
        )
        for key in (
            "num_customers",
            "num_transactions",
            "num_items_total",
            "num_distinct_items",
            "max_customer_id",
            "vocabulary",
        ):
            assert manifest[key] == expected[key], key
        assert fsck_directory(tmp_path / "db").clean

    def test_corrupt_first_generation_rolls_back_to_base(self, tmp_path):
        make_db(tmp_path / "db", deltas=2)
        corrupt(tmp_path / "db" / delta_partition_file_name(1, 0))
        report = fsck_directory(tmp_path / "db")
        assert report.rolled_back_to_generation == 0
        reopened = PartitionedDatabase.open(tmp_path / "db")
        assert reopened.generation == 0
        assert reopened.num_customers == 10

    def test_overlay_corruption_rolls_back_too(self, tmp_path):
        db = make_db(tmp_path / "db")
        # Overlay delta: extra events for existing customers 1 and 2.
        db.append_delta(
            [
                CustomerSequence(customer_id=1, events=((9,),)),
                CustomerSequence(customer_id=2, events=((8, 9),)),
            ],
        )
        overlay = tmp_path / "db" / "delta-00001-overlay.binlog"
        assert overlay.exists()
        corrupt(overlay)
        report = fsck_directory(tmp_path / "db")
        assert report.rolled_back_to_generation == 0
        assert overlay.name in report.quarantined
        assert PartitionedDatabase.open(tmp_path / "db").num_customers == 10

    def test_stale_mining_state_quarantined_after_rollback(self, tmp_path):
        db = make_db(tmp_path / "db", deltas=1)
        state_path = tmp_path / "db" / MINING_STATE_NAME
        write_mining_state(snapshot(1, db.num_customers), state_path)
        corrupt(tmp_path / "db" / delta_partition_file_name(1, 0))
        report = fsck_directory(tmp_path / "db")
        assert report.rolled_back_to_generation == 0
        assert not state_path.exists()
        assert (
            tmp_path / "db" / (MINING_STATE_NAME + QUARANTINE_SUFFIX)
        ).exists()
        assert any("rolled back" in p for p in report.problems)


class TestFatalDamage:
    def test_missing_manifest(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ValueError, match="not a partitioned database"):
            fsck_directory(tmp_path / "empty")

    def test_manifest_not_json(self, tmp_path):
        make_db(tmp_path / "db")
        (tmp_path / "db" / MANIFEST_NAME).write_text("{torn", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            fsck_directory(tmp_path / "db")

    def test_manifest_wrong_format(self, tmp_path):
        make_db(tmp_path / "db")
        (tmp_path / "db" / MANIFEST_NAME).write_text(
            json.dumps({"format": "something-else"}), encoding="utf-8"
        )
        with pytest.raises(ValueError, match="partitioned-database manifest"):
            fsck_directory(tmp_path / "db")

    def test_corrupt_base_partition(self, tmp_path):
        make_db(tmp_path / "db", deltas=1)
        corrupt(tmp_path / "db" / partition_file_name(1))
        with pytest.raises(ValueError, match="damaged beyond repair"):
            fsck_directory(tmp_path / "db")

    def test_missing_base_partition(self, tmp_path):
        make_db(tmp_path / "db")
        (tmp_path / "db" / partition_file_name(0)).unlink()
        with pytest.raises(ValueError, match="damaged beyond repair"):
            fsck_directory(tmp_path / "db")


class TestMiningState:
    def test_unreadable_snapshot_quarantined(self, tmp_path):
        make_db(tmp_path / "db")
        state_path = tmp_path / "db" / MINING_STATE_NAME
        state_path.write_text("not json at all", encoding="utf-8")
        report = fsck_directory(tmp_path / "db")
        assert not report.clean
        assert MINING_STATE_NAME in report.quarantined
        assert not state_path.exists()

    def test_snapshot_ahead_of_database_quarantined(self, tmp_path):
        # A snapshot claiming generation 3 against a generation-1
        # database (e.g. restored from a different backup) is stale.
        db = make_db(tmp_path / "db", deltas=1)
        write_mining_state(
            snapshot(3, db.num_customers),
            tmp_path / "db" / MINING_STATE_NAME,
        )
        report = fsck_directory(tmp_path / "db")
        assert MINING_STATE_NAME in report.quarantined


class TestDerivedCaches:
    def test_invalid_caches_deleted(self, tmp_path):
        make_db(tmp_path / "db")
        transformed = tmp_path / "db" / "transformed"
        transformed.mkdir()
        (transformed / "tpart-00000.binlog").write_bytes(b"NOPE")
        (transformed / "tpart-00000.compiled.pkl").write_bytes(b"\x80broken")
        report = fsck_directory(tmp_path / "db")
        assert not report.clean
        assert len(report.removed) == 2
        assert not list(transformed.iterdir())
        assert fsck_directory(tmp_path / "db").clean


class TestReportRendering:
    def test_lines_enumerate_findings(self, tmp_path):
        report = FsckReport(directory=tmp_path)
        report.checked_files = 3
        report.problems.append("x: damaged")
        report.removed.append("x")
        report.quarantined.append("y")
        report.rolled_back_to_generation = 2
        lines = report.lines()
        assert lines[0] == f"fsck {tmp_path}: checked 3 files"
        assert "  problem: x: damaged" in lines
        assert "  removed: x" in lines
        assert "  quarantined: y" in lines
        assert "  rolled back to generation 2" in lines
        assert lines[-1] == "repaired"
