"""Tests for raw transaction records."""

import pytest

from repro.db.records import RecordError, Transaction, merge_transactions


class TestTransaction:
    def test_items_canonicalized(self):
        t = Transaction(customer_id=1, transaction_time=5, items=(3, 1, 1))
        assert t.items == (1, 3)

    def test_ordering_is_sort_phase_key(self):
        rows = [
            Transaction(2, 1, (1,)),
            Transaction(1, 9, (1,)),
            Transaction(1, 2, (1,)),
        ]
        assert [(t.customer_id, t.transaction_time) for t in sorted(rows)] == [
            (1, 2),
            (1, 9),
            (2, 1),
        ]

    def test_empty_items_rejected(self):
        with pytest.raises(RecordError):
            Transaction(1, 1, ())

    def test_non_int_customer_rejected(self):
        with pytest.raises(RecordError):
            Transaction("x", 1, (1,))

    def test_non_int_time_rejected(self):
        with pytest.raises(RecordError):
            Transaction(1, 1.5, (1,))

    def test_bool_customer_rejected(self):
        with pytest.raises(RecordError):
            Transaction(True, 1, (1,))

    def test_frozen(self):
        t = Transaction(1, 1, (1,))
        with pytest.raises(AttributeError):
            t.customer_id = 2


class TestMerge:
    def test_merges_item_union(self):
        a = Transaction(1, 3, (1, 2))
        b = Transaction(1, 3, (2, 5))
        assert merge_transactions(a, b).items == (1, 2, 5)

    def test_rejects_different_keys(self):
        with pytest.raises(RecordError):
            merge_transactions(Transaction(1, 3, (1,)), Transaction(1, 4, (1,)))
        with pytest.raises(RecordError):
            merge_transactions(Transaction(1, 3, (1,)), Transaction(2, 3, (1,)))
