"""Tests for the maximal phase and the containment index."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.maximal import (
    ContainmentIndex,
    SequenceExpander,
    events_of_sequence,
    maximal_sequences,
    maximal_sequences_naive,
    sequence_of_events,
)
from repro.core.sequence import Sequence
from repro.itemsets.litemsets import LitemsetCatalog
from tests import strategies as my


def ev(*events):
    return tuple(frozenset(e) for e in events)


class TestContainmentIndex:
    def test_empty_index(self):
        index = ContainmentIndex()
        assert not index.contains_super_of(ev({1}))
        assert len(index) == 0

    def test_finds_proper_super(self):
        index = ContainmentIndex()
        index.add(ev({1, 2}, {3}))
        assert index.contains_proper_super_of(ev({1}, {3}))
        assert index.contains_proper_super_of(ev({1, 2}))
        assert not index.contains_proper_super_of(ev({3}, {1}))

    def test_equal_sequence_not_proper(self):
        index = ContainmentIndex()
        index.add(ev({1}, {2}))
        assert not index.contains_proper_super_of(ev({1}, {2}))
        assert index.contains_super_of(ev({1}, {2}))

    def test_same_length_strict_containment(self):
        index = ContainmentIndex()
        index.add(ev({1, 2}, {3}))
        # Same length (2) but strictly contained via event subset.
        assert index.contains_proper_super_of(ev({2}, {3}))

    def test_missing_item_short_circuits(self):
        index = ContainmentIndex()
        index.add(ev({1}, {2}))
        assert not index.contains_super_of(ev({9}))

    def test_length_prefilter_rejects_short_entries(self):
        # Every pattern item is mentioned, but no stored entry has enough
        # events — the length pre-filter must reject before any probe.
        index = ContainmentIndex()
        index.add(ev({1}, {2}))
        index.add(ev({1, 2}))
        assert not index.contains_super_of(ev({1}, {2}, {1}))
        assert index.contains_super_of(ev({1}, {2}))

    @given(my.sequences(), st.lists(my.sequences(), max_size=8))
    @settings(max_examples=80)
    def test_matches_naive_scan(self, pattern, stored):
        from repro.core.sequence import sequence_contains

        index = ContainmentIndex()
        entries = [events_of_sequence(s) for s in stored]
        index.add_all(entries)
        p = events_of_sequence(pattern)
        expected_proper = any(
            e != p and len(e) >= len(p) and sequence_contains(e, p) for e in entries
        )
        expected_any = any(
            len(e) >= len(p) and sequence_contains(e, p) for e in entries
        )
        assert index.contains_proper_super_of(p) == expected_proper
        assert index.contains_super_of(p) == expected_any


class TestMaximalFilter:
    def test_paper_answer_shape(self):
        # Large sequences from the paper example; only the two 2-sequences
        # are maximal.
        supported = {
            ev({30}): 4,
            ev({40}): 2,
            ev({70}): 3,
            ev({40, 70}): 2,
            ev({90}): 3,
            ev({30}, {90}): 2,
            ev({30}, {40}): 2,
            ev({30}, {70}): 2,
            ev({30}, {40, 70}): 2,
        }
        maximal = maximal_sequences(supported)
        assert set(maximal) == {ev({30}, {90}), ev({30}, {40, 70})}
        assert maximal[ev({30}, {90})] == 2

    def test_equal_length_subset_eliminated(self):
        supported = {ev({1}, {3}): 5, ev({1, 2}, {3}): 4}
        assert set(maximal_sequences(supported)) == {ev({1, 2}, {3})}

    def test_incomparable_sequences_all_kept(self):
        supported = {ev({1}, {2}): 1, ev({2}, {1}): 1}
        assert set(maximal_sequences(supported)) == set(supported)

    def test_empty(self):
        assert maximal_sequences({}) == {}

    @given(
        st.dictionaries(
            my.sequences(max_item=4, max_events=3).map(events_of_sequence),
            st.integers(1, 10),
            max_size=12,
        )
    )
    @settings(max_examples=80)
    def test_matches_naive(self, supported):
        assert maximal_sequences(supported) == maximal_sequences_naive(supported)

    @given(
        st.dictionaries(
            my.sequences(max_item=4, max_events=3).map(events_of_sequence),
            st.integers(1, 10),
            max_size=10,
        )
    )
    @settings(max_examples=60)
    def test_result_is_antichain_and_dominating(self, supported):
        from repro.core.sequence import sequence_contains

        maximal = maximal_sequences(supported)
        # antichain: no member properly contains another
        for a in maximal:
            for b in maximal:
                if a != b:
                    assert not (len(a) >= len(b) and sequence_contains(a, b))
        # domination: every input is contained in some member
        for pattern in supported:
            assert any(
                len(m) >= len(pattern) and sequence_contains(m, pattern)
                for m in maximal
            )


class TestExpander:
    def test_expansion_cached_and_correct(self):
        catalog = LitemsetCatalog({(1,): 3, (2, 3): 2})
        expander = SequenceExpander(catalog)
        ids = (catalog.id_of((1,)), catalog.id_of((2, 3)))
        first = expander.expand(ids)
        assert first == (frozenset({1}), frozenset({2, 3}))
        assert expander.expand(ids) is first  # cached

    def test_roundtrip_sequence_of_events(self):
        seq = Sequence([[1, 2], [3]])
        assert sequence_of_events(events_of_sequence(seq)) == seq
