"""Tests for result comparison and report rendering."""

import pytest

from repro.analysis.compare import (
    compare_results,
    pattern_length_histogram,
)
from repro.analysis.report import format_series_chart, format_table
from repro.miner import Pattern
from repro.core.sequence import Sequence


def pat(text_events, count=1, support=0.5):
    return Pattern(sequence=Sequence(text_events), count=count, support=support)


class TestCompareResults:
    def test_identical(self):
        left = [pat([[1], [2]], 3)]
        right = [pat([[1], [2]], 3)]
        diff = compare_results(left, right)
        assert diff.identical
        assert diff.jaccard == 1.0
        assert diff.completeness_of_right() == 1.0
        assert "identical" in diff.describe()

    def test_disjoint(self):
        diff = compare_results([pat([[1]])], [pat([[2]])])
        assert not diff.identical
        assert diff.jaccard == 0.0
        assert diff.only_left == (Sequence([[1]]),)
        assert diff.only_right == (Sequence([[2]]),)

    def test_partial_overlap_and_completeness(self):
        left = [pat([[1]]), pat([[2]]), pat([[3]])]
        right = [pat([[1]]), pat([[2]])]
        diff = compare_results(left, right)
        assert diff.completeness_of_right() == pytest.approx(2 / 3)
        assert diff.jaccard == pytest.approx(2 / 3)

    def test_support_mismatch_detected(self):
        diff = compare_results([pat([[1]], count=3)], [pat([[1]], count=4)])
        assert not diff.identical
        assert diff.support_mismatches == ((Sequence([[1]]), 3, 4),)
        assert "support mismatches" in diff.describe()

    def test_empty_both(self):
        diff = compare_results([], [])
        assert diff.identical
        assert diff.jaccard == 1.0
        assert diff.completeness_of_right() == 1.0

    def test_accepts_mining_result_objects(self):
        from repro import SequenceDatabase, mine_sequential_patterns

        db = SequenceDatabase.from_sequences([[(1,), (2,)], [(1,), (2,)]])
        a = mine_sequential_patterns(db, 1.0, algorithm="aprioriall")
        b = mine_sequential_patterns(db, 1.0, algorithm="dynamicsome")
        assert compare_results(a, b).identical


class TestHistogram:
    def test_histogram(self):
        patterns = [pat([[1]]), pat([[2]]), pat([[1], [2]])]
        assert pattern_length_histogram(patterns) == {1: 2, 2: 1}

    def test_empty(self):
        assert pattern_length_histogram([]) == {}


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("name", "value"), [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "--" in lines[1]
        assert lines[2].split() == ["a", "1"]

    def test_title(self):
        text = format_table(("x",), [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_float_formatting(self):
        text = format_table(("x",), [[1.23456]])
        assert "1.235" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [[1]])


class TestSeriesChart:
    def test_empty(self):
        assert "(no data)" in format_series_chart({})

    def test_markers_and_legend(self):
        chart = format_series_chart(
            {"alpha": [(1, 1), (2, 2)], "beta": [(1, 2), (2, 1)]},
            x_label="n",
            y_label="t",
        )
        assert "* alpha" in chart
        assert "o beta" in chart
        assert "(n)" in chart

    def test_single_point(self):
        chart = format_series_chart({"s": [(5, 5)]})
        assert "*" in chart

    def test_title_present(self):
        chart = format_series_chart({"s": [(0, 0), (1, 1)]}, title="my chart")
        assert chart.splitlines()[0] == "my chart"
