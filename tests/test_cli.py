"""End-to-end tests of the seqmine CLI."""

import json

import pytest

from repro.cli import main
from repro.io.patterns import read_patterns
from repro.io.spmf import read_spmf, write_spmf
from tests.test_database import paper_db


@pytest.fixture()
def paper_spmf(tmp_path):
    path = tmp_path / "paper.spmf"
    write_spmf(paper_db(), path)
    return path


class TestGenerate:
    def test_generate_spmf(self, tmp_path, capsys):
        out = tmp_path / "data.spmf"
        code = main([
            "generate", "--dataset", "C10-T2.5-S4-I1.25",
            "--customers", "30", "--seed", "5", "--output", str(out),
        ])
        assert code == 0
        assert "30 customers" in capsys.readouterr().out
        db = read_spmf(out)
        assert db.num_customers == 30

    def test_generate_csv(self, tmp_path):
        out = tmp_path / "data.csv"
        code = main([
            "generate", "--customers", "10", "--format", "csv",
            "--output", str(out),
        ])
        assert code == 0
        header = out.read_text().splitlines()[0]
        assert header == "customer_id,transaction_time,items"

    def test_generate_bad_dataset_name(self, tmp_path):
        code = main([
            "generate", "--dataset", "bogus", "--output",
            str(tmp_path / "x.spmf"),
        ])
        assert code == 1

    def test_generate_deterministic(self, tmp_path):
        a, b = tmp_path / "a.spmf", tmp_path / "b.spmf"
        for out in (a, b):
            assert main([
                "generate", "--customers", "15", "--seed", "9",
                "--output", str(out),
            ]) == 0
        assert a.read_text() == b.read_text()


class TestMine:
    def test_mine_stdout(self, paper_spmf, capsys):
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "<(30)(90)>" in out
        assert "<(30)(40 70)>" in out

    @pytest.mark.parametrize(
        "strategy", ["hashtree", "naive", "bitset", "vertical"]
    )
    def test_mine_strategy_flag(self, paper_spmf, capsys, strategy):
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
            "--strategy", strategy,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "<(30)(90)>" in out
        assert "<(30)(40 70)>" in out

    def test_mine_unknown_strategy_rejected(self, paper_spmf):
        with pytest.raises(SystemExit):
            main([
                "mine", "--input", str(paper_spmf), "--minsup", "0.25",
                "--strategy", "bogus",
            ])

    def test_mine_to_file(self, paper_spmf, tmp_path):
        out = tmp_path / "patterns.txt"
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
            "--algorithm", "apriorisome", "--output", str(out),
        ])
        assert code == 0
        patterns = read_patterns(out)
        assert [str(p.sequence) for p in patterns] == [
            "<(30)(40 70)>",
            "<(30)(90)>",
        ]

    def test_mine_json(self, paper_spmf, capsys):
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25", "--json",
        ])
        assert code == 0
        parsed = json.loads(capsys.readouterr().out)
        assert len(parsed) == 2

    def test_mine_csv_input(self, tmp_path):
        csv_path = tmp_path / "txns.csv"
        csv_path.write_text(
            "customer_id,transaction_time,items\n"
            "1,1,30\n1,2,90\n2,1,30\n2,2,90\n"
        )
        code = main([
            "mine", "--input", str(csv_path), "--format", "csv",
            "--minsup", "1.0",
        ])
        assert code == 0

    def test_mine_missing_file(self, tmp_path):
        code = main([
            "mine", "--input", str(tmp_path / "nope.spmf"), "--minsup", "0.5",
        ])
        assert code == 1

    def test_mine_bad_minsup(self, paper_spmf):
        code = main(["mine", "--input", str(paper_spmf), "--minsup", "7"])
        assert code == 1


class TestMinePrefixSpan:
    def test_mine_prefixspan_matches_aprioriall(self, paper_spmf, capsys):
        outputs = []
        for algorithm in ("aprioriall", "prefixspan"):
            code = main([
                "mine", "--input", str(paper_spmf), "--minsup", "0.25",
                "--algorithm", algorithm,
            ])
            assert code == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        assert "<(30)(90)>" in outputs[1]

    def test_mine_prefixspan_partitioned_and_parallel(
        self, paper_spmf, tmp_path, capsys
    ):
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
            "--algorithm", "prefixspan",
            "--partition-dir", str(tmp_path / "parts"),
            "--partitions", "2", "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "<(30)(90)>" in out
        assert "<(30)(40 70)>" in out

    def _assert_one_line_error(self, capsys, code, needle):
        assert code == 1
        err_lines = capsys.readouterr().err.splitlines()
        assert len(err_lines) == 1
        assert err_lines[0].startswith("error: ")
        assert needle in err_lines[0]

    def test_checkpoint_dir_rejected(self, paper_spmf, tmp_path, capsys):
        """Pattern growth has no counting passes to checkpoint; the flag
        must fail fast (one-line stderr, exit 1), not silently no-op —
        and must not create the checkpoint directory."""
        ckpt = tmp_path / "ckpt"
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
            "--algorithm", "prefixspan", "--checkpoint-dir", str(ckpt),
        ])
        self._assert_one_line_error(capsys, code, "--checkpoint-dir")
        assert not ckpt.exists()

    @pytest.mark.parametrize(
        "strategy", ["hashtree", "naive", "bitset", "vertical"]
    )
    def test_explicit_strategy_rejected(self, paper_spmf, capsys, strategy):
        """Any explicit --strategy is dead with prefixspan — even the
        default name, because the flag's presence signals an intent the
        engine cannot honor."""
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
            "--algorithm", "prefixspan", "--strategy", strategy,
        ])
        self._assert_one_line_error(capsys, code, "--strategy")

    def test_save_state_rejected(self, paper_spmf, tmp_path, capsys):
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
            "--algorithm", "prefixspan",
            "--partition-dir", str(tmp_path / "parts"),
            "--save-state",
        ])
        self._assert_one_line_error(capsys, code, "--save-state")

    def test_resume_roundtrip_with_default_strategy(
        self, paper_spmf, tmp_path, capsys
    ):
        """--strategy now defaults to None (the prefixspan sentinel);
        the checkpoint config must round-trip through resume unchanged
        for the apriori family."""
        ckpt = tmp_path / "ckpt"
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
            "--checkpoint-dir", str(ckpt),
        ])
        assert code == 0
        first = capsys.readouterr().out
        code = main(["resume", "--checkpoint-dir", str(ckpt)])
        assert code == 0
        assert capsys.readouterr().out == first


class TestMinePartitioned:
    def test_mine_with_partition_dir_matches_in_memory(
        self, paper_spmf, tmp_path, capsys
    ):
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
            "--partition-dir", str(tmp_path / "parts"), "--partitions", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "<(30)(90)>" in out
        assert "<(30)(40 70)>" in out

    def test_mine_reuses_existing_partition_dir(
        self, paper_spmf, tmp_path, capsys
    ):
        parts = tmp_path / "parts"
        assert main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
            "--partition-dir", str(parts),
        ]) == 0
        capsys.readouterr()
        code = main([
            "mine", "--minsup", "0.25", "--partition-dir", str(parts),
            "--strategy", "bitset",
        ])
        assert code == 0
        assert "<(30)(90)>" in capsys.readouterr().out

    def test_mine_max_memory_mb(self, paper_spmf, tmp_path, capsys):
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
            "--partition-dir", str(tmp_path / "parts"),
            "--max-memory-mb", "64",
        ])
        assert code == 0
        assert "<(30)(90)>" in capsys.readouterr().out

    def test_generate_stream_out_then_mine(self, tmp_path, capsys):
        parts = tmp_path / "parts"
        assert main([
            "generate", "--customers", "40", "--seed", "5",
            "--stream-out", str(parts), "--partitions", "3",
        ]) == 0
        assert "40 customers" in capsys.readouterr().out
        assert main([
            "mine", "--minsup", "0.2", "--partition-dir", str(parts),
        ]) == 0

    def test_stream_out_matches_output_generation(self, tmp_path, capsys):
        """--stream-out and --output produce the same customers."""
        from repro.db.partitioned import PartitionedDatabase
        from repro.io.spmf import iter_spmf_lines

        spmf = tmp_path / "d.spmf"
        parts = tmp_path / "parts"
        for argv in (
            ["generate", "--customers", "25", "--seed", "9",
             "--output", str(spmf)],
            ["generate", "--customers", "25", "--seed", "9",
             "--stream-out", str(parts), "--partitions", "4"],
        ):
            assert main(argv) == 0
        pdb = PartitionedDatabase.open(parts)
        streamed = "".join(line + "\n" for line in iter_spmf_lines(pdb))
        assert streamed == spmf.read_text()


def one_line_error(capsys) -> str:
    """The CLI error contract: one stderr line, no traceback."""
    captured = capsys.readouterr()
    lines = [line for line in captured.err.splitlines() if line]
    assert len(lines) == 1, captured.err
    assert "Traceback" not in captured.err
    return lines[0]


class TestCliErrorPaths:
    def test_unknown_strategy_exits_nonzero_with_message(
        self, paper_spmf, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "mine", "--input", str(paper_spmf), "--minsup", "0.25",
                "--strategy", "bogus",
            ])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'bogus'" in err
        assert "Traceback" not in err

    def test_partitions_zero(self, paper_spmf, tmp_path, capsys):
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
            "--partition-dir", str(tmp_path / "p"), "--partitions", "0",
        ])
        assert code == 1
        assert "--partitions must be >= 1" in one_line_error(capsys)

    def test_partitions_without_partition_dir(self, paper_spmf, capsys):
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
            "--partitions", "2",
        ])
        assert code == 1
        assert "--partitions requires --partition-dir" in one_line_error(capsys)

    def test_max_memory_without_partition_dir(self, paper_spmf, capsys):
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
            "--max-memory-mb", "32",
        ])
        assert code == 1
        assert "--max-memory-mb requires --partition-dir" in one_line_error(
            capsys
        )

    def test_partitions_and_max_memory_conflict(
        self, paper_spmf, tmp_path, capsys
    ):
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
            "--partition-dir", str(tmp_path / "p"),
            "--partitions", "2", "--max-memory-mb", "32",
        ])
        assert code == 1
        assert "mutually exclusive" in one_line_error(capsys)

    def test_missing_input_and_partition_dir(self, capsys):
        code = main(["mine", "--minsup", "0.25"])
        assert code == 1
        assert "--input is required" in one_line_error(capsys)

    def test_partition_dir_without_database(self, tmp_path, capsys):
        code = main([
            "mine", "--minsup", "0.25", "--partition-dir", str(tmp_path),
        ])
        assert code == 1
        assert "missing manifest.json" in one_line_error(capsys)

    def test_zero_max_memory(self, paper_spmf, tmp_path, capsys):
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
            "--partition-dir", str(tmp_path / "p"), "--max-memory-mb", "0",
        ])
        assert code == 1
        assert "max-memory-mb must be > 0" in one_line_error(capsys)

    def test_generate_output_and_stream_out_conflict(self, tmp_path, capsys):
        code = main([
            "generate", "--customers", "5",
            "--output", str(tmp_path / "d.spmf"),
            "--stream-out", str(tmp_path / "parts"),
        ])
        assert code == 1
        assert "exactly one of --output or --stream-out" in one_line_error(
            capsys
        )

    def test_generate_neither_output_nor_stream_out(self, capsys):
        code = main(["generate", "--customers", "5"])
        assert code == 1
        assert "exactly one of --output or --stream-out" in one_line_error(
            capsys
        )

    def test_generate_stream_out_partitions_zero(self, tmp_path, capsys):
        code = main([
            "generate", "--customers", "5",
            "--stream-out", str(tmp_path / "parts"), "--partitions", "0",
        ])
        assert code == 1
        assert "partitions must be >= 1" in one_line_error(capsys)

    def test_convert_refuses_to_clobber_existing_database(
        self, paper_spmf, tmp_path, capsys
    ):
        parts = tmp_path / "parts"
        assert main([
            "generate", "--customers", "20", "--stream-out", str(parts),
        ]) == 0
        capsys.readouterr()
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
            "--partition-dir", str(parts),
        ])
        assert code == 1
        assert "already holds a partitioned database" in one_line_error(capsys)

    def test_sizing_flags_rejected_when_reusing_existing(
        self, paper_spmf, tmp_path, capsys
    ):
        parts = tmp_path / "parts"
        assert main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
            "--partition-dir", str(parts), "--partitions", "2",
        ]) == 0
        capsys.readouterr()
        for flag in (["--partitions", "5"], ["--max-memory-mb", "16"]):
            code = main([
                "mine", "--minsup", "0.25", "--partition-dir", str(parts),
                *flag,
            ])
            assert code == 1
            assert "has no effect when reusing" in one_line_error(capsys)

    def test_csv_conversion_rejects_memory_budget(self, tmp_path, capsys):
        csv_path = tmp_path / "txns.csv"
        csv_path.write_text(
            "customer_id,transaction_time,items\n1,1,30\n1,2,90\n"
        )
        code = main([
            "mine", "--input", str(csv_path), "--format", "csv",
            "--minsup", "1.0", "--partition-dir", str(tmp_path / "p"),
            "--max-memory-mb", "16",
        ])
        assert code == 1
        assert "cannot be honored for --format csv" in one_line_error(capsys)

    def test_generate_partitions_rejected_without_stream_out(
        self, tmp_path, capsys
    ):
        code = main([
            "generate", "--customers", "5", "--partitions", "4",
            "--output", str(tmp_path / "d.spmf"),
        ])
        assert code == 1
        assert "--partitions only applies to --stream-out" in one_line_error(
            capsys
        )

    def test_generate_stream_out_rejects_csv_format(self, tmp_path, capsys):
        code = main([
            "generate", "--customers", "5", "--format", "csv",
            "--stream-out", str(tmp_path / "parts"),
        ])
        assert code == 1
        assert "--format csv has no effect" in one_line_error(capsys)

    def test_corrupt_partition_file_reported(self, tmp_path, capsys):
        parts = tmp_path / "parts"
        assert main([
            "generate", "--customers", "10", "--stream-out", str(parts),
            "--partitions", "2",
        ]) == 0
        capsys.readouterr()
        victim = parts / "part-00000.binlog"
        victim.write_bytes(victim.read_bytes()[:-4])
        code = main(["mine", "--minsup", "0.5", "--partition-dir", str(parts)])
        assert code == 1
        message = one_line_error(capsys)
        assert "part-00000.binlog" in message
        assert "offset" in message


class TestInfoAndHistogram:
    def test_info(self, paper_spmf, capsys):
        assert main(["info", "--input", str(paper_spmf)]) == 0
        out = capsys.readouterr().out
        assert "customers: 5" in out

    def test_histogram(self, paper_spmf, capsys):
        assert main([
            "histogram", "--input", str(paper_spmf), "--minsup", "0.25",
        ]) == 0
        assert "length 2: 2" in capsys.readouterr().out


class TestExperiment:
    def test_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig6-C10-T2.5-S4-I1.25" in out
        assert "table1-params" in out

    def test_unknown_id(self, capsys):
        # Pinned by the CLI error policy: anticipated failures exit 1
        # with a one-line ``error:`` on stderr, never a bespoke status.
        assert main(["experiment", "bogus"]) == 1
        message = one_line_error(capsys)
        assert message.startswith("error:")
        assert "unknown experiment 'bogus'" in message
        assert "--list" in message

    def test_static_experiment_runs(self, capsys):
        assert main(["experiment", "table1-params"]) == 0
        assert "Table 1" in capsys.readouterr().out


class TestAppendUpdateCli:
    """The incremental CLI surface: mine --save-state → append → update,
    and its error contract (one stderr line, exit 1, no traceback)."""

    @pytest.fixture()
    def mined_partition_dir(self, tmp_path, capsys):
        data = tmp_path / "data.spmf"
        parts = tmp_path / "parts"
        assert main([
            "generate", "--customers", "40", "--seed", "6",
            "--output", str(data),
        ]) == 0
        assert main([
            "mine", "--input", str(data), "--partition-dir", str(parts),
            "--partitions", "2", "--minsup", "0.2", "--save-state",
        ]) == 0
        capsys.readouterr()
        return parts

    def test_append_then_update_matches_full_remine(
        self, tmp_path, mined_partition_dir, capsys
    ):
        delta = tmp_path / "delta.spmf"
        assert main([
            "generate", "--customers", "10", "--seed", "61",
            "--output", str(delta),
        ]) == 0
        assert main([
            "append", "--partition-dir", str(mined_partition_dir),
            "--input", str(delta),
        ]) == 0
        capsys.readouterr()
        assert main([
            "update", "--partition-dir", str(mined_partition_dir),
        ]) == 0
        updated = capsys.readouterr().out
        assert main([
            "mine", "--minsup", "0.2",
            "--partition-dir", str(mined_partition_dir),
        ]) == 0
        assert capsys.readouterr().out == updated

    def test_update_without_state_file(self, mined_partition_dir, capsys):
        (mined_partition_dir / "mining_state.json").unlink()
        code = main(["update", "--partition-dir", str(mined_partition_dir)])
        assert code == 1
        message = one_line_error(capsys)
        assert "mining_state.json" in message
        assert "--save-state" in message

    def test_update_with_corrupt_state_file(
        self, mined_partition_dir, capsys
    ):
        (mined_partition_dir / "mining_state.json").write_text("{nope")
        code = main(["update", "--partition-dir", str(mined_partition_dir)])
        assert code == 1
        assert "not valid JSON" in one_line_error(capsys)

    def test_update_with_wrong_format_state_file(
        self, mined_partition_dir, capsys
    ):
        (mined_partition_dir / "mining_state.json").write_text(
            '{"format": "something-else"}\n'
        )
        code = main(["update", "--partition-dir", str(mined_partition_dir)])
        assert code == 1
        assert "not a mining-state snapshot" in one_line_error(capsys)

    def test_update_minsup_mismatch(self, mined_partition_dir, capsys):
        code = main([
            "update", "--partition-dir", str(mined_partition_dir),
            "--minsup", "0.3",
        ])
        assert code == 1
        assert "does not match the snapshot's minsup" in one_line_error(
            capsys
        )

    def test_update_on_missing_database(self, tmp_path, capsys):
        code = main(["update", "--partition-dir", str(tmp_path / "nope")])
        assert code == 1
        assert "missing manifest.json" in one_line_error(capsys)

    def test_append_on_missing_database(self, tmp_path, capsys):
        code = main([
            "append", "--partition-dir", str(tmp_path / "nope"),
            "--input", str(tmp_path / "delta.spmf"),
        ])
        assert code == 1
        assert "missing manifest.json" in one_line_error(capsys)

    def test_append_with_missing_input(self, mined_partition_dir, capsys):
        code = main([
            "append", "--partition-dir", str(mined_partition_dir),
            "--input", str(mined_partition_dir / "no-such.spmf"),
        ])
        assert code == 1
        assert "No such file" in one_line_error(capsys)

    def test_save_state_requires_partition_dir(self, tmp_path, capsys):
        data = tmp_path / "data.spmf"
        assert main([
            "generate", "--customers", "10", "--output", str(data),
        ]) == 0
        capsys.readouterr()
        code = main([
            "mine", "--input", str(data), "--minsup", "0.25", "--save-state",
        ])
        assert code == 1
        assert "--save-state requires --partition-dir" in one_line_error(
            capsys
        )


class TestRobustnessVerbs:
    """Error paths (and minimal happy paths) of the fault-tolerance
    verbs: ``mine --checkpoint-dir``, ``resume``, ``fsck``."""

    def test_resume_missing_checkpoint_dir(self, tmp_path, capsys):
        code = main(["resume", "--checkpoint-dir", str(tmp_path / "nope")])
        assert code == 1
        assert "checkpoint meta" in one_line_error(capsys)

    def test_resume_corrupt_checkpoint_meta(self, tmp_path, capsys):
        ck = tmp_path / "ck"
        ck.mkdir()
        (ck / "checkpoint.json").write_text("{torn", encoding="utf-8")
        code = main(["resume", "--checkpoint-dir", str(ck)])
        assert code == 1
        assert "checkpoint meta" in one_line_error(capsys)

    def test_resume_checkpoint_not_a_mine_run(self, tmp_path, capsys):
        from repro.io.checkpoint import CheckpointStore

        CheckpointStore.attach(tmp_path / "ck", {"command": "other"})
        code = main(["resume", "--checkpoint-dir", str(tmp_path / "ck")])
        assert code == 1
        assert "does not describe a resumable 'mine' run" in one_line_error(
            capsys
        )

    def test_mine_checkpoint_config_mismatch(
        self, paper_spmf, tmp_path, capsys
    ):
        ck = tmp_path / "ck"
        assert main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
            "--checkpoint-dir", str(ck),
        ]) == 0
        capsys.readouterr()
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.4",
            "--checkpoint-dir", str(ck),
        ])
        assert code == 1
        assert "different run configuration" in one_line_error(capsys)

    def test_mine_then_resume_reproduces_output(
        self, paper_spmf, tmp_path, capsys
    ):
        ck, out = tmp_path / "ck", tmp_path / "out.txt"
        assert main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
            "--checkpoint-dir", str(ck), "--output", str(out),
        ]) == 0
        first = out.read_bytes()
        out.unlink()
        assert main(["resume", "--checkpoint-dir", str(ck)]) == 0
        assert out.read_bytes() == first
        err = capsys.readouterr().err
        assert "replayed" in err  # the resume consumed recorded passes

    def test_fsck_missing_directory(self, tmp_path, capsys):
        code = main(["fsck", str(tmp_path / "nope")])
        assert code == 1
        assert "not a partitioned database" in one_line_error(capsys)

    def test_fsck_corrupt_manifest(self, tmp_path, capsys):
        parts = tmp_path / "parts"
        assert main([
            "generate", "--customers", "10", "--seed", "3",
            "--stream-out", str(parts),
        ]) == 0
        capsys.readouterr()
        (parts / "manifest.json").write_text("{torn", encoding="utf-8")
        code = main(["fsck", str(parts)])
        assert code == 1
        assert "not valid JSON" in one_line_error(capsys)

    def test_fsck_corrupt_base_partition(self, tmp_path, capsys):
        parts = tmp_path / "parts"
        assert main([
            "generate", "--customers", "10", "--seed", "3",
            "--stream-out", str(parts), "--partitions", "2",
        ]) == 0
        capsys.readouterr()
        target = parts / "part-00000.binlog"
        target.write_bytes(target.read_bytes()[:-7])
        code = main(["fsck", str(parts)])
        assert code == 1
        assert "damaged beyond repair" in one_line_error(capsys)

    def test_fsck_clean_and_repair_round_trip(self, tmp_path, capsys):
        parts = tmp_path / "parts"
        assert main([
            "generate", "--customers", "10", "--seed", "3",
            "--stream-out", str(parts),
        ]) == 0
        (parts / "manifest.json.tmp").write_text("{", encoding="utf-8")
        assert main(["fsck", str(parts)]) == 0
        out = capsys.readouterr().out
        assert "removed: manifest.json.tmp" in out
        assert out.rstrip().endswith("repaired")
        assert main(["fsck", str(parts)]) == 0
        assert capsys.readouterr().out.rstrip().endswith("clean")


@pytest.fixture()
def mined_patterns(paper_spmf, tmp_path):
    path = tmp_path / "mined.txt"
    assert main([
        "mine", "--input", str(paper_spmf), "--minsup", "0.25",
        "--output", str(path),
    ]) == 0
    return path


class TestQuery:
    def test_query_match_local(self, mined_patterns, capsys):
        code = main([
            "query", "--patterns", str(mined_patterns),
            "--seq", "<(30)(40 60 70)(90)>",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "<(30)(90)>" in captured.out
        assert "(support 40.00%, 2 customers)" in captured.out

    def test_query_predict_local(self, mined_patterns, capsys):
        code = main([
            "query", "--patterns", str(mined_patterns),
            "--seq", "<(30)>", "--predict", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "support" in out

    def test_query_json_output(self, mined_patterns, capsys):
        code = main([
            "query", "--patterns", str(mined_patterns),
            "--seq", "<(30)(90)>", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_matched"] >= 1
        assert all("pattern" in p for p in payload["patterns"])

    def test_query_requires_exactly_one_source(self, mined_patterns, capsys):
        code = main(["query", "--seq", "<(30)>"])
        assert code == 1
        assert "exactly one" in one_line_error(capsys)
        code = main([
            "query", "--patterns", str(mined_patterns),
            "--url", "http://127.0.0.1:1", "--seq", "<(30)>",
        ])
        assert code == 1
        assert "exactly one" in one_line_error(capsys)

    def test_query_rejects_negative_predict(self, mined_patterns, capsys):
        code = main([
            "query", "--patterns", str(mined_patterns),
            "--seq", "<(30)>", "--predict", "-2",
        ])
        assert code == 1
        assert "--predict" in one_line_error(capsys)

    def test_query_bad_sequence_text(self, mined_patterns, capsys):
        code = main([
            "query", "--patterns", str(mined_patterns), "--seq", "30 90",
        ])
        assert code == 1
        assert one_line_error(capsys)

    def test_query_missing_patterns_file(self, tmp_path, capsys):
        code = main([
            "query", "--patterns", str(tmp_path / "absent.txt"),
            "--seq", "<(30)>",
        ])
        assert code == 1
        assert one_line_error(capsys)

    def test_query_legacy_headerless_file_rejected(self, tmp_path, capsys):
        legacy = tmp_path / "legacy.txt"
        legacy.write_text("<(1)> #SUP: 2 #FREQ: 0.5\n", encoding="utf-8")
        code = main(["query", "--patterns", str(legacy), "--seq", "<(1)>"])
        assert code == 1
        assert "header" in one_line_error(capsys)

    def test_query_unreachable_url(self, capsys):
        code = main([
            "query", "--url", "http://127.0.0.1:9", "--seq", "<(30)>",
        ])
        assert code == 1
        assert "cannot reach" in one_line_error(capsys)


class TestServe:
    def test_serve_missing_patterns_file(self, tmp_path, capsys):
        code = main(["serve", "--patterns", str(tmp_path / "absent.txt")])
        assert code == 1
        assert one_line_error(capsys)

    def test_serve_corrupt_patterns_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("#! seqmine-patterns v1\ngarbage\n", encoding="utf-8")
        code = main(["serve", "--patterns", str(bad)])
        assert code == 1
        assert one_line_error(capsys)
