"""End-to-end tests of the seqmine CLI."""

import json

import pytest

from repro.cli import main
from repro.io.patterns import read_patterns
from repro.io.spmf import read_spmf, write_spmf
from tests.test_database import paper_db


@pytest.fixture()
def paper_spmf(tmp_path):
    path = tmp_path / "paper.spmf"
    write_spmf(paper_db(), path)
    return path


class TestGenerate:
    def test_generate_spmf(self, tmp_path, capsys):
        out = tmp_path / "data.spmf"
        code = main([
            "generate", "--dataset", "C10-T2.5-S4-I1.25",
            "--customers", "30", "--seed", "5", "--output", str(out),
        ])
        assert code == 0
        assert "30 customers" in capsys.readouterr().out
        db = read_spmf(out)
        assert db.num_customers == 30

    def test_generate_csv(self, tmp_path):
        out = tmp_path / "data.csv"
        code = main([
            "generate", "--customers", "10", "--format", "csv",
            "--output", str(out),
        ])
        assert code == 0
        header = out.read_text().splitlines()[0]
        assert header == "customer_id,transaction_time,items"

    def test_generate_bad_dataset_name(self, tmp_path):
        code = main([
            "generate", "--dataset", "bogus", "--output",
            str(tmp_path / "x.spmf"),
        ])
        assert code == 1

    def test_generate_deterministic(self, tmp_path):
        a, b = tmp_path / "a.spmf", tmp_path / "b.spmf"
        for out in (a, b):
            assert main([
                "generate", "--customers", "15", "--seed", "9",
                "--output", str(out),
            ]) == 0
        assert a.read_text() == b.read_text()


class TestMine:
    def test_mine_stdout(self, paper_spmf, capsys):
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "<(30)(90)>" in out
        assert "<(30)(40 70)>" in out

    @pytest.mark.parametrize(
        "strategy", ["hashtree", "naive", "bitset", "vertical"]
    )
    def test_mine_strategy_flag(self, paper_spmf, capsys, strategy):
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
            "--strategy", strategy,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "<(30)(90)>" in out
        assert "<(30)(40 70)>" in out

    def test_mine_unknown_strategy_rejected(self, paper_spmf):
        with pytest.raises(SystemExit):
            main([
                "mine", "--input", str(paper_spmf), "--minsup", "0.25",
                "--strategy", "bogus",
            ])

    def test_mine_to_file(self, paper_spmf, tmp_path):
        out = tmp_path / "patterns.txt"
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25",
            "--algorithm", "apriorisome", "--output", str(out),
        ])
        assert code == 0
        patterns = read_patterns(out)
        assert [str(p.sequence) for p in patterns] == [
            "<(30)(40 70)>",
            "<(30)(90)>",
        ]

    def test_mine_json(self, paper_spmf, capsys):
        code = main([
            "mine", "--input", str(paper_spmf), "--minsup", "0.25", "--json",
        ])
        assert code == 0
        parsed = json.loads(capsys.readouterr().out)
        assert len(parsed) == 2

    def test_mine_csv_input(self, tmp_path):
        csv_path = tmp_path / "txns.csv"
        csv_path.write_text(
            "customer_id,transaction_time,items\n"
            "1,1,30\n1,2,90\n2,1,30\n2,2,90\n"
        )
        code = main([
            "mine", "--input", str(csv_path), "--format", "csv",
            "--minsup", "1.0",
        ])
        assert code == 0

    def test_mine_missing_file(self, tmp_path):
        code = main([
            "mine", "--input", str(tmp_path / "nope.spmf"), "--minsup", "0.5",
        ])
        assert code == 1

    def test_mine_bad_minsup(self, paper_spmf):
        code = main(["mine", "--input", str(paper_spmf), "--minsup", "7"])
        assert code == 1


class TestInfoAndHistogram:
    def test_info(self, paper_spmf, capsys):
        assert main(["info", "--input", str(paper_spmf)]) == 0
        out = capsys.readouterr().out
        assert "customers: 5" in out

    def test_histogram(self, paper_spmf, capsys):
        assert main([
            "histogram", "--input", str(paper_spmf), "--minsup", "0.25",
        ]) == 0
        assert "length 2: 2" in capsys.readouterr().out


class TestExperiment:
    def test_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig6-C10-T2.5-S4-I1.25" in out
        assert "table1-params" in out

    def test_unknown_id(self, capsys):
        assert main(["experiment", "bogus"]) == 2

    def test_static_experiment_runs(self, capsys):
        assert main(["experiment", "table1-params"]) == 0
        assert "Table 1" in capsys.readouterr().out
