"""Tests for instrumentation (stats) and shared phase types."""

import pytest

from repro.core.phase import CountingOptions, SequencePhaseResult
from repro.core.stats import AlgorithmStats, PassStats, PhaseTimings


class TestPassStats:
    def test_hit_ratio(self):
        p = PassStats(length=2, phase="forward", num_candidates=10,
                      num_large=4, elapsed_seconds=0.1)
        assert p.hit_ratio == pytest.approx(0.4)

    def test_hit_ratio_zero_candidates(self):
        p = PassStats(length=2, phase="forward", num_candidates=0,
                      num_large=0, elapsed_seconds=0.0)
        assert p.hit_ratio == 0.0


class TestAlgorithmStats:
    def make(self):
        stats = AlgorithmStats("x")
        stats.record_pass(length=1, phase="litemset", num_candidates=5,
                          num_large=5, elapsed_seconds=0.0)
        stats.record_pass(length=2, phase="forward", num_candidates=25,
                          num_large=7, elapsed_seconds=0.2)
        stats.record_pass(length=3, phase="backward", num_candidates=4,
                          num_large=2, elapsed_seconds=0.1)
        stats.record_generated(2, 25)
        stats.record_generated(3, 9)
        stats.record_generated(3, 1)
        return stats

    def test_totals(self):
        stats = self.make()
        assert stats.total_candidates_counted == 34
        assert stats.total_large == 14
        assert stats.total_generated == 35
        assert stats.generated_candidates[3] == 10

    def test_counted_lengths_sorted_unique(self):
        stats = self.make()
        stats.record_pass(length=2, phase="backward", num_candidates=1,
                          num_large=0, elapsed_seconds=0.0)
        assert stats.counted_lengths == [1, 2, 3]


class TestPhaseTimings:
    def test_total_and_row(self):
        t = PhaseTimings(
            sort_seconds=0.1,
            litemset_seconds=0.2,
            transform_seconds=0.3,
            sequence_seconds=0.4,
            maximal_seconds=0.5,
        )
        assert t.total_seconds == pytest.approx(1.5)
        row = t.as_row()
        assert row["total"] == pytest.approx(1.5)
        assert row["sort"] == pytest.approx(0.1)


class TestSequencePhaseResult:
    def test_all_large_and_max_length(self):
        result = SequencePhaseResult()
        result.large_by_length[1] = {(1,): 3, (2,): 2}
        result.large_by_length[2] = {(1, 2): 2}
        result.large_by_length[3] = {}
        assert result.all_large() == {(1,): 3, (2,): 2, (1, 2): 2}
        assert result.max_length == 2  # empty L3 ignored
        assert result.num_large() == 3

    def test_empty(self):
        result = SequencePhaseResult()
        assert result.all_large() == {}
        assert result.max_length == 0


class TestCountingOptions:
    def test_kwargs_roundtrip(self):
        opts = CountingOptions(
            strategy="naive", leaf_capacity=4, branch_factor=8, workers=2,
            chunk_size=100,
        )
        assert opts.kwargs() == {
            "strategy": "naive",
            "leaf_capacity": 4,
            "branch_factor": 8,
            "workers": 2,
            "chunk_size": 100,
            "checkpoint": None,
        }
        assert opts.sharding_kwargs() == {
            "workers": 2,
            "chunk_size": 100,
            "checkpoint": None,
        }

    def test_rejects_bad_parallel_knobs(self):
        with pytest.raises(ValueError):
            CountingOptions(workers=-1)
        with pytest.raises(ValueError):
            CountingOptions(chunk_size=0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CountingOptions().strategy = "naive"
