"""Differential-oracle suite: every backend against two independent baselines.

The cross-product the rest of the suite only samples: AprioriAll,
AprioriSome, DynamicSome and the PrefixSpan engine × all four counting
strategies (the candidate family; pattern growth has none) × serial and
``workers=2`` × in-memory and disk-partitioned, each required to report
the *identical* maximal pattern set with identical support counts as

* ``baselines/bruteforce.py`` — the exhaustive enumeration oracle, and
* ``baselines/prefixspan.py`` — an independently-implemented
  pattern-growth miner sharing no code path with the Apriori family
  (and only projection *helpers*, not the search, with the engine),

on small datagen-generated databases with pinned seeds (the generator is
deterministic per (params, seed), so every run of this suite checks the
exact same databases — failures reproduce). A Hypothesis property layers
random hand-rolled databases on top of the pinned synthetic ones.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import brute_force_mine
from repro.baselines.prefixspan import prefixspan_mine
from repro.core.counting import COUNTING_STRATEGIES
from repro.miner import ALGORITHM_NAMES, ALL_ALGORITHM_NAMES, MiningParams, mine
from repro.core.phase import CountingOptions
from repro.datagen.generator import generate_database
from repro.datagen.params import SyntheticParams
from repro.db.database import SequenceDatabase
from repro.db.partitioned import PartitionedDatabase
from tests import strategies as my

#: Deterministic generator inputs: tiny enough for the exponential
#: oracle, varied enough (different seeds) to exercise different
#: litemset alphabets and pattern shapes.
PINNED_SEEDS = (3, 11, 29)
MINSUP = 0.25

TINY_PARAMS = SyntheticParams(
    num_customers=8,
    num_pattern_sequences=4,
    num_pattern_itemsets=8,
    num_items=12,
    avg_transactions_per_customer=3.0,
    avg_items_per_transaction=1.6,
    avg_pattern_sequence_length=2.0,
    avg_pattern_itemset_size=1.2,
)


def answer(db, algorithm, strategy="hashtree", workers=1):
    result = mine(
        db,
        MiningParams(
            minsup=MINSUP,
            algorithm=algorithm,
            counting=CountingOptions(strategy=strategy, workers=workers),
        ),
    )
    return [(p.sequence, p.count) for p in result.patterns]


@pytest.fixture(scope="module", params=PINNED_SEEDS)
def pinned(request):
    """One pinned database with both baselines' answers, computed once."""
    db = generate_database(TINY_PARAMS, seed=request.param)
    oracle = brute_force_mine(db, MINSUP)
    prefixspan = [
        (p.sequence, p.count) for p in prefixspan_mine(db, MINSUP, maximal=True)
    ]
    return db, oracle, prefixspan


def test_baselines_agree_with_each_other(pinned):
    """The two independent baselines must agree before they judge anyone."""
    _db, oracle, prefixspan = pinned
    assert prefixspan == oracle
    assert oracle, "expected the pinned databases to contain patterns"


@pytest.mark.parametrize("strategy", COUNTING_STRATEGIES)
@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_serial_backends_match_oracle(pinned, algorithm, strategy):
    db, oracle, _prefixspan = pinned
    assert answer(db, algorithm, strategy) == oracle


@pytest.mark.parametrize("strategy", COUNTING_STRATEGIES)
@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_parallel_backends_match_oracle(pinned, algorithm, strategy):
    """workers=2 shards customers (candidates for vertical) across a pool."""
    db, oracle, _prefixspan = pinned
    assert answer(db, algorithm, strategy, workers=2) == oracle


@pytest.mark.parametrize("strategy", COUNTING_STRATEGIES)
@pytest.mark.parametrize("workers", [1, 2])
def test_partitioned_backends_match_oracle(
    tmp_path, pinned, strategy, workers
):
    """The out-of-core path joins the differential, serial and sharded."""
    db, oracle, _prefixspan = pinned
    pdb = PartitionedDatabase.from_database(
        db, tmp_path / "parts", partitions=3
    )
    assert answer(pdb, "aprioriall", strategy, workers=workers) == oracle


@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_partitioned_algorithms_match_oracle(tmp_path, pinned, algorithm):
    db, oracle, _prefixspan = pinned
    pdb = PartitionedDatabase.from_database(
        db, tmp_path / "parts", partitions=2
    )
    assert answer(pdb, algorithm, "bitset") == oracle


@pytest.mark.parametrize("workers", [1, 2])
def test_prefixspan_engine_matches_oracle(pinned, workers):
    """The pattern-growth engine, serial and seed-sharded, in-memory."""
    db, oracle, _prefixspan = pinned
    assert answer(db, "prefixspan", workers=workers) == oracle


@pytest.mark.parametrize("workers", [1, 2])
def test_prefixspan_engine_partitioned_matches_oracle(
    tmp_path, pinned, workers
):
    """The engine's out-of-core streaming path joins the differential:
    the projection sweeps re-read binlog partitions instead of holding
    the database, and the answer must not change — serial or sharded."""
    db, oracle, _prefixspan = pinned
    pdb = PartitionedDatabase.from_database(
        db, tmp_path / "parts", partitions=3
    )
    assert answer(pdb, "prefixspan", workers=workers) == oracle


@given(
    customer_events=st.lists(
        my.event_lists(max_item=5, max_size=2, max_events=3),
        min_size=1,
        max_size=5,
    ),
    minsup=st.sampled_from([0.4, 0.6, 1.0]),
    strategy=st.sampled_from(COUNTING_STRATEGIES),
)
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_random_databases_match_oracle(
    customer_events, minsup, strategy
):
    """Random databases: every algorithm under a sampled strategy must
    reproduce the oracle — the Hypothesis layer over the pinned seeds.

    The shapes here are deliberately tighter than
    :func:`tests.strategies.databases` (which ``test_equivalence.py``
    explores): at a threshold of one customer a dense all-identical
    database snowballs AprioriSome's candidates-from-candidates
    generation into seconds per example, and this test mines every
    example three times.
    """
    db = SequenceDatabase.from_sequences(customer_events)
    oracle = brute_force_mine(db, minsup)
    for algorithm in ALL_ALGORITHM_NAMES:
        result = mine(
            db,
            MiningParams(
                minsup=minsup,
                algorithm=algorithm,
                counting=CountingOptions(
                    # Counting strategies only exist for the candidate
                    # family; the pattern-growth engine rejects any
                    # non-default value.
                    strategy="hashtree" if algorithm == "prefixspan"
                    else strategy,
                ),
            ),
        )
        assert [(p.sequence, p.count) for p in result.patterns] == oracle
