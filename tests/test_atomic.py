"""The atomic-replacement write protocol (:mod:`repro.io.atomic`).

The contract under test: a reader concurrent with (or after a crash
during) an atomic write sees either the complete old file or the
complete new file — never a prefix, never a mix — and in-process
failures leave no litter, while crash-like failures leave exactly the
``.tmp`` orphan fsck expects.
"""

import json
import os

import pytest

from repro.io.atomic import (
    TMP_SUFFIX,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    atomic_writer,
)
from repro.io.fsops import install_hook, remove_hook
from repro.testing import FaultInjector, SimulatedCrash, inject_faults


class TestHappyPath:
    def test_text_round_trip(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "hello\n")
        assert target.read_text(encoding="utf-8") == "hello\n"
        assert list(tmp_path.iterdir()) == [target]  # no temp litter

    def test_bytes_round_trip(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(target, b"\x00\x01\xff")
        assert target.read_bytes() == b"\x00\x01\xff"

    def test_json_preserves_insertion_order(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"z": 1, "a": 2})
        text = target.read_text(encoding="utf-8")
        assert text.index('"z"') < text.index('"a"')
        assert text.endswith("\n")
        assert json.loads(text) == {"z": 1, "a": 2}

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text(encoding="utf-8") == "new"

    def test_writer_streams_to_sibling_tmp(self, tmp_path):
        """The temp file lives in the target's directory (same
        filesystem — the rename cannot degrade to a copy)."""
        target = tmp_path / "out.txt"
        with atomic_writer(target) as handle:
            handle.write("data")
            assert (tmp_path / ("out.txt" + TMP_SUFFIX)).exists()
            assert not target.exists()
        assert target.read_text(encoding="utf-8") == "data"

    def test_rejects_read_modes(self, tmp_path):
        with pytest.raises(ValueError, match="mode must be 'w' or 'wb'"):
            with atomic_writer(tmp_path / "x", "r"):
                pass


class TestFailureModes:
    def test_exception_removes_tmp_and_keeps_target(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "old")
        with pytest.raises(RuntimeError):
            with atomic_writer(target) as handle:
                handle.write("half-written")
                raise RuntimeError("boom")
        assert target.read_text(encoding="utf-8") == "old"
        assert not (tmp_path / ("out.txt" + TMP_SUFFIX)).exists()

    def test_simulated_crash_leaves_tmp_orphan(self, tmp_path):
        """BaseException unwinding models a kill: the temp file stays on
        disk (as it would after a real crash) and the target is intact —
        the exact state ``seqmine fsck`` is built to clean up."""
        target = tmp_path / "out.txt"
        atomic_write_text(target, "old")
        # Fail the fsync of the temp file (op 1: open=0, fsync=1).
        with pytest.raises(SimulatedCrash):
            with inject_faults(FaultInjector(1, kind="kill")):
                atomic_write_text(target, "new")
        assert target.read_text(encoding="utf-8") == "old"
        assert (tmp_path / ("out.txt" + TMP_SUFFIX)).exists()

    def test_injected_oserror_cleans_up(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "old")
        with pytest.raises(OSError, match="injected fault"):
            with inject_faults(FaultInjector(1, kind="oserror")):
                atomic_write_text(target, "new")
        assert target.read_text(encoding="utf-8") == "old"
        assert not (tmp_path / ("out.txt" + TMP_SUFFIX)).exists()

    def test_crash_at_every_op_never_tears_target(self, tmp_path):
        """Sweep the kill point across all four protocol operations
        (open, fsync, replace, fsync_dir): after each crash the target
        is either fully old or fully new — never a prefix."""
        target = tmp_path / "out.json"
        old = {"value": "old", "pad": "x" * 4096}
        new = {"value": "new", "pad": "y" * 4096}
        for fail_at in range(4):
            atomic_write_json(target, old)
            try:
                with inject_faults(FaultInjector(fail_at, kind="kill")):
                    atomic_write_json(target, new)
            except SimulatedCrash:
                pass
            on_disk = json.loads(target.read_text(encoding="utf-8"))
            assert on_disk in (old, new), f"torn write at op {fail_at}"
            tmp = tmp_path / ("out.json" + TMP_SUFFIX)
            if tmp.exists():
                tmp.unlink()  # what fsck would do


class TestProtocolOrder:
    def test_fsync_before_replace_before_dir_sync(self, tmp_path):
        """The commit protocol's op order is the correctness argument:
        data fsync, then rename, then directory fsync."""
        ops = []

        def spy(op: str, path: str) -> None:
            ops.append(op)

        install_hook(spy)
        try:
            atomic_write_text(tmp_path / "out.txt", "data")
        finally:
            remove_hook(spy)
        assert ops == ["open", "fsync", "replace", "fsync_dir"]

    def test_replace_targets_final_path_not_tmp(self, tmp_path):
        seen = {}

        def spy(op: str, path: str) -> None:
            seen.setdefault(op, path)

        target = tmp_path / "out.txt"
        install_hook(spy)
        try:
            atomic_write_text(target, "data")
        finally:
            remove_hook(spy)
        assert seen["open"].endswith(TMP_SUFFIX)
        assert seen["replace"] == str(target)
        assert seen["fsync_dir"] == str(tmp_path)

    def test_tmp_suffix_is_stable(self):
        # fsck recognizes interrupted writes by this exact suffix.
        assert TMP_SUFFIX == ".tmp"


class TestOsReplaceAtomicity:
    def test_reader_with_open_handle_sees_complete_old_file(self, tmp_path):
        """POSIX rename semantics through the helper: a handle opened
        before the replace keeps reading the complete old content."""
        target = tmp_path / "out.txt"
        atomic_write_text(target, "old-content")
        with open(target, "r", encoding="utf-8") as reader:
            atomic_write_text(target, "new-content")
            assert reader.read() == "old-content"
        assert target.read_text(encoding="utf-8") == "new-content"
