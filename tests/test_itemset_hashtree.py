"""Tests for the itemset hash tree."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.itemsets.hashtree import ItemsetHashTree
from tests import strategies as my


def naive_subsets(stored, transaction):
    txn = frozenset(transaction)
    return {s for s in stored if txn.issuperset(s)}


class TestBasics:
    def test_empty_tree(self):
        tree = ItemsetHashTree()
        assert len(tree) == 0
        assert tree.subsets_of((1, 2, 3)) == set()

    def test_insert_and_lookup(self):
        tree = ItemsetHashTree([(1, 2), (2, 3), (4,)])
        assert tree.subsets_of((1, 2, 3)) == {(1, 2), (2, 3)}
        assert tree.subsets_of((4, 9)) == {(4,)}
        assert tree.subsets_of((9,)) == set()

    def test_empty_transaction(self):
        tree = ItemsetHashTree([(1,)])
        assert tree.subsets_of(()) == set()

    def test_accepts_frozenset_transactions(self):
        tree = ItemsetHashTree([(1, 2)])
        assert tree.subsets_of(frozenset({1, 2, 9})) == {(1, 2)}

    def test_rejects_empty_itemset(self):
        with pytest.raises(ValueError):
            ItemsetHashTree([()])

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ItemsetHashTree(leaf_capacity=0)
        with pytest.raises(ValueError):
            ItemsetHashTree(branch_factor=1)

    def test_iter_returns_all(self):
        itemsets = [(i, i + 1) for i in range(1, 50)]
        tree = ItemsetHashTree(itemsets, leaf_capacity=2)
        assert sorted(tree) == sorted(itemsets)
        assert len(tree) == len(itemsets)


class TestSplitting:
    def test_splits_keep_lookup_correct(self):
        itemsets = [(i,) for i in range(1, 40)] + [
            (i, j) for i in range(1, 10) for j in range(i + 1, 10)
        ]
        tree = ItemsetHashTree(itemsets, leaf_capacity=1, branch_factor=4)
        transaction = (1, 2, 3, 4, 5)
        assert tree.subsets_of(transaction) == naive_subsets(itemsets, transaction)

    def test_mixed_lengths_stored_here(self):
        # Prefix itemsets must stay findable when their node splits.
        itemsets = [(1,), (1, 2), (1, 2, 3), (1, 2, 3, 4), (1, 2, 3, 5)]
        tree = ItemsetHashTree(itemsets, leaf_capacity=1, branch_factor=2)
        assert tree.subsets_of((1, 2, 3, 4, 5)) == set(itemsets)
        assert tree.subsets_of((1, 2)) == {(1,), (1, 2)}

    def test_duplicate_length_collisions_stay_leaf(self):
        # Many equal itemsets of one length hashing identically cannot be
        # split; the leaf just grows.
        itemsets = [(i * 4,) for i in range(1, 10)]  # all hash to 0 (mod 4)
        tree = ItemsetHashTree(itemsets, leaf_capacity=2, branch_factor=4)
        assert tree.subsets_of((4, 8, 12)) == {(4,), (8,), (12,)}


class TestAgainstNaive:
    @given(
        st.lists(my.itemsets(max_item=8, max_size=4), min_size=0, max_size=30),
        my.itemsets(max_item=8, max_size=6),
        st.integers(1, 4),
        st.integers(2, 8),
    )
    def test_subsets_match_naive(self, stored, transaction, leaf_capacity, branch):
        stored = list(dict.fromkeys(stored))
        tree = ItemsetHashTree(
            stored, leaf_capacity=leaf_capacity, branch_factor=branch
        )
        assert tree.subsets_of(transaction) == naive_subsets(stored, transaction)
