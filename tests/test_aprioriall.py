"""Behavioral tests for AprioriAll (pass structure, stats, edge cases)."""

import pytest

from repro.core.aprioriall import apriori_all
from repro.db.database import SequenceDatabase
from repro.db.transform import transform_database
from repro.itemsets.apriori import find_litemsets
from repro.itemsets.litemsets import LitemsetCatalog


def transformed(db, minsup):
    catalog = LitemsetCatalog.from_result(find_litemsets(db, minsup))
    return transform_database(db, catalog), db.threshold(minsup)


def chain_db(length=5, customers=4):
    """Every customer buys items 1..length in order, one per transaction."""
    return SequenceDatabase.from_sequences(
        [[(i,) for i in range(1, length + 1)] for _ in range(customers)]
    )


class TestPassStructure:
    def test_counts_every_length_until_empty(self):
        tdb, threshold = transformed(chain_db(4), 1.0)
        result = apriori_all(tdb, threshold)
        assert sorted(result.large_by_length) == [1, 2, 3, 4]
        # Increasing id-subsequences of (1,2,3,4): C(4,k) large k-seqs.
        assert [len(result.large_by_length[k]) for k in (1, 2, 3, 4)] == [4, 6, 4, 1]

    def test_pass_stats_lengths_are_sequential(self):
        tdb, threshold = transformed(chain_db(4), 1.0)
        stats = apriori_all(tdb, threshold).stats
        lengths = [p.length for p in stats.passes]
        assert lengths == list(range(1, lengths[-1] + 1))

    def test_candidate_counts_bound_large_counts(self):
        tdb, threshold = transformed(chain_db(4), 1.0)
        stats = apriori_all(tdb, threshold).stats
        for p in stats.passes:
            assert p.num_candidates >= p.num_large
            assert 0.0 <= p.hit_ratio <= 1.0

    def test_length2_candidates_reported_analytically(self):
        tdb, threshold = transformed(chain_db(3), 1.0)
        stats = apriori_all(tdb, threshold).stats
        pass2 = next(p for p in stats.passes if p.length == 2)
        assert pass2.num_candidates == 9  # |L1|² = 3²

    def test_supports_are_exact_counts(self):
        db = SequenceDatabase.from_sequences(
            [[(1,), (2,)], [(1,), (2,)], [(2,), (1,)]]
        )
        tdb, threshold = transformed(db, 0.5)
        result = apriori_all(tdb, threshold)
        id1 = tdb.catalog.id_of((1,))
        id2 = tdb.catalog.id_of((2,))
        assert result.large_by_length[2][(id1, id2)] == 2

    def test_l1_comes_from_catalog(self):
        tdb, threshold = transformed(chain_db(3), 1.0)
        result = apriori_all(tdb, threshold)
        assert result.large_by_length[1] == tdb.catalog.one_sequence_supports()


class TestEdgeCases:
    def test_threshold_validation(self):
        tdb, _ = transformed(chain_db(3), 1.0)
        with pytest.raises(ValueError):
            apriori_all(tdb, 0)

    def test_no_litemsets(self):
        db = SequenceDatabase.from_sequences([[(1,)], [(2,)]])
        tdb, threshold = transformed(db, 1.0)
        result = apriori_all(tdb, threshold)
        assert result.large_by_length[1] == {}
        assert result.max_length == 0

    def test_max_length_stops_early(self):
        tdb, threshold = transformed(chain_db(5), 1.0)
        result = apriori_all(tdb, threshold, max_length=2)
        assert sorted(result.large_by_length) == [1, 2]

    def test_all_large_union(self):
        tdb, threshold = transformed(chain_db(3), 1.0)
        result = apriori_all(tdb, threshold)
        union = result.all_large()
        assert len(union) == result.num_large()
        assert result.max_length == 3
