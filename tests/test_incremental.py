"""Incremental mining subsystem: differential tests and edge cases.

The load-bearing property: for any base database, delta, algorithm,
counting strategy and worker count, ``mine(base, collect_state=True) →
append_delta → update_mining`` must report **byte-identical** patterns
and supports to a full re-mine of the grown database. Deltas here cover
all three shapes — new customers, overlay transactions onto existing
customers, and mixtures — plus the frontier-moving cases: border
candidates promoted above the threshold, large patterns demoted by a
rising threshold, and litemset ids that did not exist in the base
alphabet at all.
"""

import pytest

from repro.miner import MiningParams, mine
from repro.core.phase import CountingOptions
from repro.datagen.generator import generate_database
from repro.datagen.params import SyntheticParams
from repro.db.database import CustomerSequence, SequenceDatabase
from repro.db.partitioned import PartitionedDatabase
from repro.incremental import update_mining
from repro.io.patterns import format_pattern_line
from repro.io.state import read_mining_state, write_mining_state

SMALL_PARAMS = SyntheticParams(
    num_customers=60,
    num_pattern_sequences=6,
    num_pattern_itemsets=10,
    num_items=25,
    avg_transactions_per_customer=3.5,
    avg_items_per_transaction=1.8,
    avg_pattern_sequence_length=2.0,
    avg_pattern_itemset_size=1.4,
)
MINSUP = 0.2


def pattern_lines(result) -> list[str]:
    """The byte-exact serialized form the differential tests compare."""
    return [format_pattern_line(p) for p in result.patterns]


def split_with_overlays(seed: int, base_count: int = 45):
    """One pinned synthetic database split three ways: base customers,
    a delta of genuinely new customers, and overlay records produced by
    withholding the tail transactions of some base customers."""
    full = generate_database(SMALL_PARAMS, seed=seed)
    base, delta = [], []
    for customer in full:
        if customer.customer_id > base_count:
            delta.append(customer)
        elif customer.customer_id % 4 == 0 and len(customer.events) >= 2:
            cut = len(customer.events) // 2 or 1
            base.append(
                CustomerSequence(customer.customer_id, customer.events[:cut])
            )
            delta.append(
                CustomerSequence(customer.customer_id, customer.events[cut:])
            )
        else:
            base.append(customer)
    delta.sort(key=lambda c: c.customer_id)
    return full, base, delta


def mine_update_and_remine(
    tmp_path, base, delta, params: MiningParams, *, partitions: int = 3
):
    """The canonical pipeline under test; returns (update, full-re-mine)."""
    db = PartitionedDatabase.create(
        tmp_path / "db", base, partitions=partitions
    )
    base_result = mine(db, params, collect_state=True)
    assert base_result.state is not None
    db.append_delta(delta)
    reopened = PartitionedDatabase.open(tmp_path / "db")
    outcome = update_mining(
        reopened, base_result.state, counting=params.counting
    )
    full_result = mine(reopened, params)
    return outcome, full_result


class TestDifferential:
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("strategy", ["hashtree", "bitset"])
    @pytest.mark.parametrize("algorithm", ["aprioriall", "apriorisome"])
    def test_update_equals_full_remine(
        self, tmp_path, algorithm, strategy, workers
    ):
        params = MiningParams(
            minsup=MINSUP,
            algorithm=algorithm,
            counting=CountingOptions(strategy=strategy, workers=workers),
        )
        _full, base, delta = split_with_overlays(seed=11)
        outcome, full_result = mine_update_and_remine(
            tmp_path, base, delta, params
        )
        assert pattern_lines(outcome.result) == pattern_lines(full_result)

    @pytest.mark.parametrize("seed", [3, 29])
    @pytest.mark.parametrize(
        "algorithm", ["aprioriall", "apriorisome", "dynamicsome"]
    )
    def test_every_algorithm_snapshot_is_updatable(
        self, tmp_path, algorithm, seed
    ):
        params = MiningParams(minsup=MINSUP, algorithm=algorithm)
        _full, base, delta = split_with_overlays(seed=seed)
        outcome, full_result = mine_update_and_remine(
            tmp_path, base, delta, params
        )
        assert pattern_lines(outcome.result) == pattern_lines(full_result)

    @pytest.mark.parametrize("strategy", ["vertical", "naive"])
    def test_remaining_strategies(self, tmp_path, strategy):
        params = MiningParams(
            minsup=MINSUP, counting=CountingOptions(strategy=strategy)
        )
        _full, base, delta = split_with_overlays(seed=11)
        outcome, full_result = mine_update_and_remine(
            tmp_path, base, delta, params
        )
        assert pattern_lines(outcome.result) == pattern_lines(full_result)

    def test_update_matches_in_memory_mine_of_merged_data(self, tmp_path):
        """The appended database is the merged database: update output
        equals mining the equivalent in-memory merge."""
        full, base, delta = split_with_overlays(seed=7)
        params = MiningParams(minsup=MINSUP)
        outcome, _ = mine_update_and_remine(tmp_path, base, delta, params)
        in_memory = mine(SequenceDatabase(list(full)), params)
        assert pattern_lines(outcome.result) == pattern_lines(in_memory)

    def test_chained_generations(self, tmp_path):
        """append → update → append → update, state rolling forward
        through JSON round-trips at every step."""
        full = generate_database(SMALL_PARAMS, seed=23)
        chunks = [
            [c for c in full if lo < c.customer_id <= hi]
            for lo, hi in ((0, 40), (40, 50), (50, 60))
        ]
        params = MiningParams(minsup=MINSUP)
        db = PartitionedDatabase.create(
            tmp_path / "db", chunks[0], partitions=2
        )
        state = mine(db, params, collect_state=True).state
        state_path = tmp_path / "state.json"
        for chunk in chunks[1:]:
            db.append_delta(chunk)
            db = PartitionedDatabase.open(tmp_path / "db")
            write_mining_state(state, state_path)
            outcome = update_mining(db, read_mining_state(state_path))
            state = outcome.state
            assert state.generation == db.generation
            assert pattern_lines(outcome.result) == pattern_lines(
                mine(db, params)
            )


class TestEdgeCases:
    def test_empty_delta(self, tmp_path):
        """Updating without appending anything reproduces the snapshot's
        own answer (and performs no full scans)."""
        full = generate_database(SMALL_PARAMS, seed=5)
        db = PartitionedDatabase.create(
            tmp_path / "db", list(full), partitions=2
        )
        params = MiningParams(minsup=MINSUP)
        base_result = mine(db, params, collect_state=True)
        outcome = update_mining(db, base_result.state)
        assert pattern_lines(outcome.result) == pattern_lines(base_result)
        assert outcome.update_stats.full_scan_passes == 0
        assert outcome.update_stats.new_customers == 0

    def test_delta_demotes_previously_large_pattern(self, tmp_path):
        """New customers raise the integer threshold; a pattern whose
        count stands still falls off the large set."""
        base = [
            CustomerSequence(1, ((1,), (2,))),
            CustomerSequence(2, ((1,), (2,))),
            CustomerSequence(3, ((3,), (4,))),
            CustomerSequence(4, ((3,), (4,))),
        ]
        # minsup 0.5 over 4 customers: threshold 2, both patterns large.
        db = PartitionedDatabase.create(tmp_path / "db", base, partitions=2)
        params = MiningParams(minsup=0.5)
        base_result = mine(db, params, collect_state=True)
        assert "<(1)(2)>" in {str(p.sequence) for p in base_result.patterns}
        # Four new customers supporting only <(3)(4)>: threshold rises
        # to 4, demoting <(1)(2)> (count still 2) but not <(3)(4)>.
        delta = [
            CustomerSequence(cid, ((3,), (4,))) for cid in (5, 6, 7, 8)
        ]
        db.append_delta(delta)
        reopened = PartitionedDatabase.open(tmp_path / "db")
        outcome = update_mining(reopened, base_result.state)
        mined = {str(p.sequence) for p in outcome.result.patterns}
        assert "<(1)(2)>" not in mined
        assert "<(3)(4)>" in mined
        assert outcome.update_stats.demoted_from_large >= 1
        assert pattern_lines(outcome.result) == pattern_lines(
            mine(reopened, params)
        )

    def test_delta_with_only_brand_new_litemset_ids(self, tmp_path):
        """A delta whose items never appeared in the base: the new ids
        enter the catalog and their patterns fall out of the full-scan
        path, identical to a fresh mine."""
        base = [
            CustomerSequence(cid, ((1,), (2,))) for cid in (1, 2, 3)
        ]
        delta = [
            CustomerSequence(cid, ((99,), (100,))) for cid in (4, 5, 6)
        ]
        db = PartitionedDatabase.create(tmp_path / "db", base, partitions=1)
        params = MiningParams(minsup=0.5)
        base_result = mine(db, params, collect_state=True)
        db.append_delta(delta)
        reopened = PartitionedDatabase.open(tmp_path / "db")
        outcome = update_mining(reopened, base_result.state)
        mined = {str(p.sequence) for p in outcome.result.patterns}
        assert "<(99)(100)>" in mined
        assert "<(1)(2)>" in mined
        assert pattern_lines(outcome.result) == pattern_lines(
            mine(reopened, params)
        )

    def test_append_onto_single_partition_database(self, tmp_path):
        full, base, delta = split_with_overlays(seed=13)
        params = MiningParams(minsup=MINSUP)
        outcome, full_result = mine_update_and_remine(
            tmp_path, base, delta, params, partitions=1
        )
        assert pattern_lines(outcome.result) == pattern_lines(full_result)

    def test_overlay_only_delta_promotes_without_new_customers(
        self, tmp_path
    ):
        """Appending transactions to existing customers adds support
        without moving the threshold — a pure-promotion delta."""
        base = [CustomerSequence(cid, ((1,),)) for cid in (1, 2, 3, 4)]
        db = PartitionedDatabase.create(tmp_path / "db", base, partitions=2)
        params = MiningParams(minsup=0.5)
        base_result = mine(db, params, collect_state=True)
        assert {str(p.sequence) for p in base_result.patterns} == {"<(1)>"}
        delta = [CustomerSequence(cid, ((2,),)) for cid in (1, 2, 3)]
        db.append_delta(delta)
        reopened = PartitionedDatabase.open(tmp_path / "db")
        assert reopened.num_customers == 4  # overlays add no customers
        outcome = update_mining(reopened, base_result.state)
        assert "<(1)(2)>" in {str(p.sequence) for p in outcome.result.patterns}
        assert pattern_lines(outcome.result) == pattern_lines(
            mine(reopened, params)
        )

    def test_state_from_capped_run_stays_correct(self, tmp_path):
        """A snapshot from a max_pattern_length-capped run updates under
        the same cap and matches the capped full re-mine."""
        _full, base, delta = split_with_overlays(seed=11)
        params = MiningParams(minsup=MINSUP, max_pattern_length=2)
        outcome, full_result = mine_update_and_remine(
            tmp_path, base, delta, params
        )
        assert pattern_lines(outcome.result) == pattern_lines(full_result)


class TestAppendValidation:
    def test_append_rejects_descending_ids(self, tmp_path):
        db = PartitionedDatabase.create(
            tmp_path / "db",
            [CustomerSequence(1, ((1,),)), CustomerSequence(2, ((1,),))],
            partitions=1,
        )
        with pytest.raises(ValueError, match="ascending"):
            db.append_delta(
                [CustomerSequence(4, ((1,),)), CustomerSequence(3, ((1,),))]
            )

    def test_append_rejects_empty_record(self, tmp_path):
        db = PartitionedDatabase.create(
            tmp_path / "db", [CustomerSequence(1, ((1,),))], partitions=1
        )
        with pytest.raises(ValueError, match="no transactions"):
            db.append_delta([CustomerSequence(2, ())])

    def test_overlay_of_unknown_customer_rejected_at_append(self, tmp_path):
        """Ids in the overlay range must belong to existing customers: a
        dangling reference fails the whole append and records nothing."""
        db = PartitionedDatabase.create(
            tmp_path / "db",
            [CustomerSequence(2, ((1,),)), CustomerSequence(5, ((1,),))],
            partitions=1,
        )
        with pytest.raises(ValueError, match="do not exist"):
            # id 3 sits in the overlay range (<= max id 5) but no such
            # customer exists; id 9 would be a legitimate new customer.
            db.append_delta(
                [CustomerSequence(3, ((7,),)), CustomerSequence(9, ((7,),))]
            )
        reopened = PartitionedDatabase.open(tmp_path / "db")
        assert reopened.generation == 0
        assert reopened.num_customers == 2
        assert not list((tmp_path / "db").glob("delta-*"))

    def test_append_onto_legacy_manifest_recovers_watermarks(self, tmp_path):
        """A manifest written before appends existed has no
        max_customer_id/vocabulary keys: the first append recovers both
        with one scan and then persists them."""
        import json

        db = PartitionedDatabase.create(
            tmp_path / "db",
            [CustomerSequence(3, ((1, 5),)), CustomerSequence(7, ((2,),))],
            partitions=2,
        )
        manifest_path = tmp_path / "db" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        for key in ("max_customer_id", "vocabulary", "deltas"):
            del manifest[key]
        manifest_path.write_text(json.dumps(manifest))
        legacy = PartitionedDatabase.open(tmp_path / "db")
        assert legacy.max_customer_id() == 7
        legacy.append_delta(
            [CustomerSequence(7, ((9,),)), CustomerSequence(8, ((5,),))]
        )
        reopened = PartitionedDatabase.open(tmp_path / "db")
        assert reopened.max_customer_id() == 8
        assert reopened.stats().num_distinct_items == 4  # {1, 2, 5, 9}
        merged = {c.customer_id: c.events for c in reopened}
        assert merged[7] == ((2,), (9,))

    def test_failed_append_leaves_manifest_unchanged(self, tmp_path):
        db = PartitionedDatabase.create(
            tmp_path / "db", [CustomerSequence(1, ((1,),))], partitions=1
        )
        def bad_source():
            yield CustomerSequence(2, ((1,),))
            raise RuntimeError("source died")
        with pytest.raises(RuntimeError):
            db.append_delta(bad_source())
        reopened = PartitionedDatabase.open(tmp_path / "db")
        assert reopened.generation == 0
        assert reopened.num_customers == 1


class TestUpdateValidation:
    def test_update_rejects_foreign_state(self, tmp_path):
        db_a = PartitionedDatabase.create(
            tmp_path / "a",
            [CustomerSequence(i, ((1,), (2,))) for i in range(1, 5)],
            partitions=1,
        )
        db_b = PartitionedDatabase.create(
            tmp_path / "b",
            [CustomerSequence(i, ((1,), (2,))) for i in range(1, 8)],
            partitions=1,
        )
        state = mine(
            db_a, MiningParams(minsup=0.5), collect_state=True
        ).state
        with pytest.raises(ValueError, match="does not belong"):
            update_mining(db_b, state)

    def test_update_rejects_state_ahead_of_database(self, tmp_path):
        db = PartitionedDatabase.create(
            tmp_path / "db",
            [CustomerSequence(i, ((1,), (2,))) for i in range(1, 5)],
            partitions=1,
        )
        db.append_delta([CustomerSequence(9, ((1,),))])
        db = PartitionedDatabase.open(tmp_path / "db")
        state = mine(db, MiningParams(minsup=0.5), collect_state=True).state
        fresh = PartitionedDatabase.create(
            tmp_path / "fresh",
            [CustomerSequence(i, ((1,), (2,))) for i in range(1, 6)],
            partitions=1,
        )
        with pytest.raises(ValueError, match="generation"):
            update_mining(fresh, state)


class TestStateRoundTrip:
    def test_json_round_trip_preserves_every_field(self, tmp_path):
        _full, base, delta = split_with_overlays(seed=3)
        db = PartitionedDatabase.create(tmp_path / "db", base, partitions=2)
        result = mine(
            db,
            MiningParams(minsup=MINSUP, max_pattern_length=4),
            collect_state=True,
        )
        path = tmp_path / "state.json"
        write_mining_state(result.state, path)
        loaded = read_mining_state(path)
        assert loaded == result.state

    def test_counts_in_state_are_exact_supports(self, tmp_path):
        """Spot-check the contract everything rests on: every stored
        sequence count equals the database's direct support count."""
        _full, base, _delta = split_with_overlays(seed=3)
        db = PartitionedDatabase.create(tmp_path / "db", base, partitions=2)
        result = mine(db, MiningParams(minsup=MINSUP), collect_state=True)
        state = result.state
        from repro.core.sequence import Sequence

        checked = 0
        for sequence, count in sorted(state.sequence_counts.items())[:25]:
            assert db.support_count(Sequence(sequence)) == count
            checked += 1
        assert checked > 0
