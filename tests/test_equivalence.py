"""Property-based equivalence: all three algorithms ≡ the brute-force oracle.

This is the strongest correctness statement in the suite. For random small
databases and random thresholds, AprioriAll, AprioriSome (with assorted
next(k) policies) and DynamicSome (with assorted steps) must produce the
*identical* set of maximal sequential patterns, with identical support
counts, and that set must equal the answer of the exhaustive oracle.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro import MiningParams, NextLengthPolicy, mine
from repro.baselines.bruteforce import brute_force_mine
from repro.core.phase import CountingOptions
from tests import strategies as my

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

AGGRESSIVE_SKIP = NextLengthPolicy(breakpoints=((0.1, 2), (0.5, 3)), max_skip=4)
NEVER_SKIP = NextLengthPolicy(breakpoints=((2.0, 1),), max_skip=1)


def mined_answer(db, params):
    result = mine(db, params)
    return [(p.sequence, p.count) for p in result.patterns]


@given(my.databases(), my.minsups())
@RELAXED
def test_aprioriall_matches_oracle(db, minsup):
    expected = brute_force_mine(db, minsup)
    got = mined_answer(db, MiningParams(minsup=minsup, algorithm="aprioriall"))
    assert got == expected


@given(my.databases(), my.minsups())
@RELAXED
def test_apriorisome_matches_oracle(db, minsup):
    expected = brute_force_mine(db, minsup)
    got = mined_answer(db, MiningParams(minsup=minsup, algorithm="apriorisome"))
    assert got == expected


@pytest.mark.parametrize("policy", [AGGRESSIVE_SKIP, NEVER_SKIP], ids=["skip", "noskip"])
@given(db=my.databases(), minsup=my.minsups())
@RELAXED
def test_apriorisome_policy_independent(db, minsup, policy):
    expected = brute_force_mine(db, minsup)
    got = mined_answer(
        db,
        MiningParams(minsup=minsup, algorithm="apriorisome", next_policy=policy),
    )
    assert got == expected


@pytest.mark.parametrize("step", [1, 2, 3])
@given(db=my.databases(), minsup=my.minsups())
@RELAXED
def test_dynamicsome_matches_oracle(db, minsup, step):
    expected = brute_force_mine(db, minsup)
    got = mined_answer(
        db,
        MiningParams(minsup=minsup, algorithm="dynamicsome", dynamic_step=step),
    )
    assert got == expected


@given(my.databases(), my.minsups())
@RELAXED
def test_naive_counting_matches_oracle(db, minsup):
    expected = brute_force_mine(db, minsup)
    got = mined_answer(
        db,
        MiningParams(
            minsup=minsup,
            algorithm="aprioriall",
            counting=CountingOptions(strategy="naive"),
        ),
    )
    assert got == expected


@given(my.databases(), my.minsups())
@RELAXED
def test_tiny_hash_tree_parameters_match_oracle(db, minsup):
    """Degenerate tree shapes (capacity 1, branch 2) must not change answers."""
    expected = brute_force_mine(db, minsup)
    got = mined_answer(
        db,
        MiningParams(
            minsup=minsup,
            algorithm="apriorisome",
            counting=CountingOptions(leaf_capacity=1, branch_factor=2),
        ),
    )
    assert got == expected


@given(my.databases(max_customers=5), my.minsups())
@RELAXED
def test_max_pattern_length_consistency(db, minsup):
    """With a length cap, all algorithms agree with the capped oracle."""
    expected = brute_force_mine(db, minsup, max_pattern_length=2)
    for algorithm in ("aprioriall", "apriorisome", "dynamicsome"):
        got = mined_answer(
            db,
            MiningParams(minsup=minsup, algorithm=algorithm, max_pattern_length=2),
        )
        assert got == expected, algorithm
