"""Behavioral tests for DynamicSome and on-the-fly generation."""

from itertools import product

import pytest
from hypothesis import given, settings

from repro.core.dynamicsome import dynamic_some, otf_generate
from repro.core.sequence import id_sequence_contains
from repro.db.database import SequenceDatabase
from repro.db.transform import transform_database
from repro.itemsets.apriori import find_litemsets
from repro.itemsets.litemsets import LitemsetCatalog
from tests import strategies as my


def transformed(db, minsup):
    catalog = LitemsetCatalog.from_result(find_litemsets(db, minsup))
    return transform_database(db, catalog), db.threshold(minsup)


def chain_db(length=4, customers=3):
    return SequenceDatabase.from_sequences(
        [[(i,) for i in range(1, length + 1)] for _ in range(customers)]
    )


class TestOtfGenerate:
    def test_simple_join(self):
        events = (frozenset({1}), frozenset({2}), frozenset({3}))
        got = otf_generate([(1,)], [(2,), (3,)], events)
        assert got == {(1, 2), (1, 3)}

    def test_position_overlap_rejected(self):
        # head must END before tail STARTS.
        events = (frozenset({1}), frozenset({2}))
        assert otf_generate([(1, 2)], [(2,)], events) == set()
        assert otf_generate([(1,)], [(1, 2)], events) == set()
        three = (frozenset({1}), frozenset({1}), frozenset({2}))
        assert otf_generate([(1,)], [(1, 2)], three) == {(1, 1, 2)}

    def test_repeated_symbol(self):
        events = (frozenset({1}), frozenset({1}))
        assert otf_generate([(1,)], [(1,)], events) == {(1, 1)}

    def test_empty_inputs(self):
        events = (frozenset({1}),)
        assert otf_generate([], [(1,)], events) == set()
        assert otf_generate([(1,)], [], events) == set()

    @given(my.id_event_sequences(max_id=4, max_events=5))
    @settings(max_examples=100)
    def test_generates_exactly_contained_concatenations(self, events):
        """otf_generate(L_k, L_j, d) must equal the contained members of
        the cross-concatenation L_k × L_j — the paper's Lemma."""
        alphabet = sorted({i for ev in events for i in ev})
        if not alphabet:
            return
        heads = [(a,) for a in alphabet] + [
            (a, b) for a, b in product(alphabet, repeat=2)
        ]
        tails = [(a,) for a in alphabet]
        got = otf_generate(heads, tails, events)
        expected = {
            h + t
            for h in heads
            for t in tails
            if id_sequence_contains(h + t, events)
        }
        assert got == expected


class TestDynamicSome:
    def test_forward_counts_multiples_of_step(self):
        tdb, threshold = transformed(chain_db(6, 3), 1.0)
        result = dynamic_some(tdb, threshold, step=2)
        phases = {
            p.length: p.phase for p in result.stats.passes if p.length > 1
        }
        assert phases[2] == "initialization"
        assert phases[4] == "forward"
        assert phases[6] == "forward"
        assert phases[3] == "backward"  # skipped length counted backward?

    def test_backward_prunes_contained(self):
        tdb, threshold = transformed(chain_db(4, 3), 1.0)
        result = dynamic_some(tdb, threshold, step=2)
        # The large 4-sequence (1,2,3,4) dominates all 3-sequences, so the
        # backward pass at 3 counts nothing.
        backward = [p for p in result.stats.passes if p.phase == "backward"]
        assert [p.num_candidates for p in backward] == [0]
        assert result.stats.skipped_by_containment > 0

    def test_step_one_counts_everything(self):
        tdb, threshold = transformed(chain_db(4, 3), 1.0)
        result = dynamic_some(tdb, threshold, step=1)
        assert all(p.phase != "backward" for p in result.stats.passes)
        assert max(result.large_by_length) == 4

    def test_step_larger_than_longest_pattern(self):
        tdb, threshold = transformed(chain_db(3, 3), 1.0)
        result = dynamic_some(tdb, threshold, step=5)
        assert {k: len(v) for k, v in result.large_by_length.items()} == {
            1: 3,
            2: 3,
            3: 1,
        }

    def test_gap_between_multiple_and_max_length_found(self):
        """Regression: a pattern one longer than the last counted multiple
        must still be found (requires intermediate candidates past the
        final forward pass)."""
        db = SequenceDatabase.from_sequences([[(1,), (1,), (1,), (1,)]])
        tdb, threshold = transformed(db, 1.0)
        result = dynamic_some(tdb, threshold, step=3)
        assert max(result.large_by_length) == 4

    def test_threshold_validation(self):
        tdb, _ = transformed(chain_db(3, 2), 1.0)
        with pytest.raises(ValueError):
            dynamic_some(tdb, 0)

    def test_step_validation(self):
        tdb, threshold = transformed(chain_db(3, 2), 1.0)
        with pytest.raises(ValueError):
            dynamic_some(tdb, threshold, step=0)

    def test_no_litemsets(self):
        db = SequenceDatabase.from_sequences([[(1,)], [(2,)]])
        tdb, threshold = transformed(db, 1.0)
        result = dynamic_some(tdb, threshold)
        assert result.large_by_length == {}

    def test_max_length_cap(self):
        tdb, threshold = transformed(chain_db(5, 3), 1.0)
        result = dynamic_some(tdb, threshold, step=2, max_length=3)
        assert max(result.large_by_length) <= 3

    def test_supports_exact_on_counted_lengths(self):
        db = SequenceDatabase.from_sequences(
            [[(1,), (2,), (3,), (4,)], [(1,), (2,), (3,), (4,)], [(4,), (1,)]]
        )
        tdb, threshold = transformed(db, 0.5)
        result = dynamic_some(tdb, threshold, step=2)
        ids = tuple(tdb.catalog.id_of((i,)) for i in (1, 2, 3, 4))
        assert result.large_by_length[4][ids] == 2
