"""Tests for the litemset catalog and the transformation phase."""

import pytest
from hypothesis import given, settings

from repro.core.sequence import Sequence, id_sequence_contains, sequence_contains
from repro.db.database import SequenceDatabase
from repro.db.transform import transform_database
from repro.itemsets.apriori import find_litemsets
from repro.itemsets.litemsets import LitemsetCatalog
from tests import strategies as my
from tests.test_database import paper_db


def paper_catalog():
    return LitemsetCatalog.from_result(find_litemsets(paper_db(), minsup=0.25))


class TestCatalog:
    def test_ids_are_contiguous_and_ordered(self):
        catalog = paper_catalog()
        # (length, lex) order: (30) (40) (70) (90) (40 70)
        assert catalog.itemset_of(1) == (30,)
        assert catalog.itemset_of(2) == (40,)
        assert catalog.itemset_of(3) == (70,)
        assert catalog.itemset_of(4) == (90,)
        assert catalog.itemset_of(5) == (40, 70)
        assert list(catalog.ids) == [1, 2, 3, 4, 5]

    def test_id_roundtrip(self):
        catalog = paper_catalog()
        for itemset in catalog:
            assert catalog.itemset_of(catalog.id_of(itemset)) == itemset

    def test_support_of(self):
        catalog = paper_catalog()
        assert catalog.support_of(catalog.id_of((30,))) == 4
        assert catalog.support_of(catalog.id_of((40, 70))) == 2

    def test_one_sequence_supports(self):
        catalog = paper_catalog()
        supports = catalog.one_sequence_supports()
        assert supports[(catalog.id_of((90,)),)] == 3
        assert len(supports) == 5

    def test_unknown_itemset_raises(self):
        with pytest.raises(KeyError):
            paper_catalog().id_of((10,))

    def test_contained_ids_paper_transform(self):
        """Transformation of the paper's customer 2."""
        catalog = paper_catalog()
        assert catalog.contained_ids((10, 20)) == frozenset()
        assert catalog.contained_ids((30,)) == {catalog.id_of((30,))}
        assert catalog.contained_ids((40, 60, 70)) == {
            catalog.id_of((40,)),
            catalog.id_of((70,)),
            catalog.id_of((40, 70)),
        }

    def test_expand(self):
        catalog = paper_catalog()
        ids = (catalog.id_of((30,)), catalog.id_of((40, 70)))
        assert catalog.expand(ids) == Sequence([[30], [40, 70]])
        assert catalog.expand_events(ids) == (frozenset({30}), frozenset({40, 70}))

    def test_contains(self):
        catalog = paper_catalog()
        assert (30,) in catalog
        assert (10,) not in catalog
        assert len(catalog) == 5


class TestTransform:
    def test_paper_transformation(self):
        db = paper_db()
        catalog = paper_catalog()
        tdb = transform_database(db, catalog)
        id_of = catalog.id_of
        assert tdb.num_customers == 5
        assert len(tdb.sequences) == 5
        # Customer 2: (10 20) drops out entirely.
        assert tdb.sequences[1] == (
            frozenset({id_of((30,))}),
            frozenset({id_of((40,)), id_of((70,)), id_of((40, 70))}),
        )
        # Customer 5 keeps only (90).
        assert tdb.sequences[4] == (frozenset({id_of((90,))}),)

    def test_drops_empty_customers(self):
        db = SequenceDatabase.from_sequences([[(1,)], [(99,)], [(1,), (1,)]])
        catalog = LitemsetCatalog({(1,): 2})
        tdb = transform_database(db, catalog)
        assert len(tdb.sequences) == 2
        assert tdb.num_customers == 3  # denominator unchanged
        assert tdb.num_dropped_customers == 1
        assert tdb.customer_ids == (1, 3)

    def test_max_sequence_length(self):
        db = SequenceDatabase.from_sequences([[(1,), (1,), (1,)], [(1,)]])
        catalog = LitemsetCatalog({(1,): 2})
        tdb = transform_database(db, catalog)
        assert tdb.max_sequence_length == 3

    def test_empty_everything(self):
        tdb = transform_database(SequenceDatabase([]), LitemsetCatalog({}))
        assert tdb.max_sequence_length == 0
        assert len(tdb) == 0

    @given(my.databases(), my.minsups())
    @settings(max_examples=60, deadline=None)
    def test_transform_preserves_support(self, db, minsup):
        """Key invariant: for any sequence of litemsets, id-containment in
        the transformed DB equals itemset-containment in the raw DB."""
        result = find_litemsets(db, minsup)
        if not result.supports:
            return
        catalog = LitemsetCatalog.from_result(result)
        tdb = transform_database(db, catalog)
        transformed = {cid: seq for cid, seq in zip(tdb.customer_ids, tdb.sequences)}

        litemsets = list(catalog)
        # Probe single and double litemset sequences exhaustively.
        probes = [(catalog.id_of(a),) for a in litemsets]
        probes += [
            (catalog.id_of(a), catalog.id_of(b))
            for a in litemsets
            for b in litemsets
        ]
        for ids in probes:
            pattern = catalog.expand(ids)
            for customer in db:
                raw = sequence_contains(customer.events, pattern.events)
                cooked = id_sequence_contains(
                    ids, transformed.get(customer.customer_id, ())
                )
                assert raw == cooked, (ids, customer)
