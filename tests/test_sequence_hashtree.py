"""Tests for the sequence hash tree and the counting engines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counting import count_candidates, count_length2, filter_large
from repro.core.hashtree import SequenceHashTree
from repro.core.sequence import OccurrenceIndex, id_sequence_contains
from tests import strategies as my


def naive_contained(candidates, events):
    return {c for c in candidates if id_sequence_contains(c, events)}


class TestTreeBasics:
    def test_empty(self):
        tree = SequenceHashTree()
        assert len(tree) == 0
        assert tree.sequence_length is None
        events = (frozenset({1}),)
        assert tree.contained_in(OccurrenceIndex(events)) == set()

    def test_insert_and_lookup(self):
        tree = SequenceHashTree([(1, 2), (2, 1), (1, 1)])
        events = (frozenset({1}), frozenset({2}))
        assert tree.contained_in(OccurrenceIndex(events)) == {(1, 2)}

    def test_rejects_mixed_lengths(self):
        tree = SequenceHashTree([(1, 2)])
        with pytest.raises(ValueError):
            tree.insert((1, 2, 3))

    def test_rejects_empty_sequence(self):
        with pytest.raises(ValueError):
            SequenceHashTree([()])

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SequenceHashTree(leaf_capacity=0)
        with pytest.raises(ValueError):
            SequenceHashTree(branch_factor=1)

    def test_iter_returns_all(self):
        candidates = [(i, j) for i in range(1, 8) for j in range(1, 8)]
        tree = SequenceHashTree(candidates, leaf_capacity=2, branch_factor=3)
        assert sorted(tree) == sorted(candidates)

    def test_split_depth_capped_at_length(self):
        # Ten identical-hash 1-sequences cannot split below depth 1.
        tree = SequenceHashTree(
            [(i * 5,) for i in range(1, 11)], leaf_capacity=2, branch_factor=5
        )
        events = (frozenset({5, 10}),)
        assert tree.contained_in(OccurrenceIndex(events)) == {(5,), (10,)}

    def test_all_colliding_bucket_stays_one_leaf(self):
        # Every id ≡ 0 (mod 5) at every depth: no split can spread the
        # bucket, so the root must stay a single (over-full) leaf instead
        # of growing a chain of single-child nodes.
        candidates = [(5, 10), (10, 5), (15, 20), (20, 15)]
        tree = SequenceHashTree(candidates, leaf_capacity=2, branch_factor=5)
        assert tree._root.is_leaf
        assert sorted(tree._root.bucket) == sorted(candidates)
        events = (frozenset({5, 15}), frozenset({10, 20}))
        assert tree.contained_in(OccurrenceIndex(events)) == {(5, 10), (15, 20)}

    def test_bucket_spreading_only_at_deeper_depth_still_splits(self):
        # Colliding at depth 0 (all ≡ 0 mod 5) but spreading at depth 1:
        # the split must pass through the colliding level and separate
        # the bucket below it.
        candidates = [(5, 1), (10, 2), (15, 3), (20, 4)]
        tree = SequenceHashTree(candidates, leaf_capacity=2, branch_factor=5)
        assert not tree._root.is_leaf
        (child,) = tree._root.children.values()
        assert not child.is_leaf and len(child.children) == 4
        events = (frozenset({10}), frozenset({2}))
        assert tree.contained_in(OccurrenceIndex(events)) == {(10, 2)}

    def test_late_insert_can_unlock_a_split(self):
        # Three colliding candidates keep the root a leaf; a fourth that
        # hashes differently makes the bucket spreadable again.
        tree = SequenceHashTree(leaf_capacity=2, branch_factor=5)
        for candidate in [(5, 5), (10, 10), (15, 15)]:
            tree.insert(candidate)
        assert tree._root.is_leaf
        tree.insert((7, 5))
        assert not tree._root.is_leaf
        events = (frozenset({5, 7}), frozenset({5}))
        assert tree.contained_in(OccurrenceIndex(events)) == {(5, 5), (7, 5)}

    @given(
        st.sets(my.id_sequences(max_id=12, max_length=3), max_size=60),
        st.integers(1, 2),
        st.integers(2, 3),
    )
    @settings(max_examples=60)
    def test_over_capacity_leaves_only_where_unspreadable(self, candidates, leaf, branch):
        """Every over-capacity leaf holds a bucket no split could spread;
        iteration still returns every candidate exactly once."""
        candidates = {c for c in candidates if len(c) == 3}
        tree = SequenceHashTree(candidates, leaf_capacity=leaf, branch_factor=branch)
        assert sorted(tree) == sorted(candidates)

        def walk(node, depth):
            if node.is_leaf:
                if len(node.bucket) > leaf:
                    assert not tree._can_spread(node.bucket, depth)
                return
            for child in node.children.values():
                walk(child, depth + 1)

        walk(tree._root, 0)

    def test_hash_collisions_verified_exactly(self):
        # ids 1 and 4 collide mod 3; (4, 2) must not be reported for a
        # customer containing only 1-then-2.
        tree = SequenceHashTree([(1, 2), (4, 2)], branch_factor=3, leaf_capacity=1)
        events = (frozenset({1}), frozenset({2}))
        assert tree.contained_in(OccurrenceIndex(events)) == {(1, 2)}

    def test_position_constraint_respected(self):
        # (2, 1) requires a 1 strictly after a 2.
        tree = SequenceHashTree([(2, 1)])
        assert tree.contained_in(
            OccurrenceIndex((frozenset({1}), frozenset({2})))
        ) == set()
        assert tree.contained_in(
            OccurrenceIndex((frozenset({2}), frozenset({1}),))
        ) == {(2, 1)}

    @given(
        st.sets(my.id_sequences(max_id=6, max_length=3), max_size=40),
        my.id_event_sequences(max_id=6),
        st.integers(1, 3),
        st.integers(2, 5),
    )
    @settings(max_examples=100)
    def test_matches_naive_filtering(self, candidates, events, leaf, branch):
        candidates = {c for c in candidates if len(c) == 3}
        tree = SequenceHashTree(candidates, leaf_capacity=leaf, branch_factor=branch)
        index = OccurrenceIndex(events)
        assert tree.contained_in(index) == naive_contained(candidates, events)


class TestCounting:
    def test_counts_customers_once(self):
        sequences = [
            (frozenset({1}), frozenset({2}), frozenset({1}), frozenset({2})),
            (frozenset({1}),),
        ]
        counts = count_candidates(sequences, [(1, 2), (2, 2), (2, 1, 2)])
        assert counts == {(1, 2): 1, (2, 2): 1, (2, 1, 2): 1}

    def test_empty_candidates(self):
        assert count_candidates([], []) == {}

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            count_candidates([], [(1,)], strategy="bogus")

    def test_filter_large(self):
        counts = {(1,): 3, (2,): 1}
        assert filter_large(counts, 2) == {(1,): 3}

    @given(
        st.lists(my.id_event_sequences(max_id=5), max_size=6),
        st.sets(my.id_sequences(max_id=5, max_length=2), max_size=25),
    )
    @settings(max_examples=80)
    def test_strategies_agree(self, sequences, candidates):
        candidates = {c for c in candidates if len(c) == 2}
        fast = count_candidates(sequences, candidates, strategy="hashtree")
        slow = count_candidates(sequences, candidates, strategy="naive")
        assert fast == slow


class TestCountLength2:
    def test_simple(self):
        sequences = [
            (frozenset({1}), frozenset({2})),
            (frozenset({1, 2}), frozenset({2})),
        ]
        counts = count_length2(sequences)
        assert counts == {(1, 2): 2, (2, 2): 1}

    def test_within_event_pairs_not_counted(self):
        counts = count_length2([(frozenset({1, 2}),)])
        assert counts == {}

    def test_self_pairs(self):
        counts = count_length2([(frozenset({3}), frozenset({3}))])
        assert counts == {(3, 3): 1}

    @given(st.lists(my.id_event_sequences(max_id=5), max_size=6))
    @settings(max_examples=80)
    def test_matches_generic_engine_over_all_pairs(self, sequences):
        """The fast path must agree with the generic engine on the fully
        materialized C_2 (all ordered id pairs)."""
        alphabet = sorted({i for seq in sequences for ev in seq for i in ev})
        all_pairs = [(a, b) for a in alphabet for b in alphabet]
        generic = count_candidates(sequences, all_pairs, strategy="naive")
        fast = count_length2(sequences)
        for pair in all_pairs:
            assert fast.get(pair, 0) == generic[pair]
        assert set(fast) <= set(all_pairs)
