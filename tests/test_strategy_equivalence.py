"""Four-way counting-strategy equivalence:
hashtree ≡ naive ≡ bitset ≡ vertical.

The counting backends must be byte-identical in what they count — for
every algorithm, serially and sharded-parallel, at the raw engine level
and end-to-end through the miner, and for time-constrained counting. The
hashtree strategy is the anchor (its equivalence to the brute-force
oracle is established in test_equivalence.py); the other three must
match it exactly. The vertical backend is the strongest consumer of
these tests: it never scans the database, so agreement with the scanning
engines validates the whole parent-join/memoization machinery, including
AprioriSome's skipped passes and the backward-phase rebuild fallback.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.counting import COUNTING_STRATEGIES, count_candidates
from repro.miner import ALGORITHM_NAMES, MiningParams, mine
from repro.core.phase import CountingOptions
from repro.extensions.timeconstraints import TimeConstraints, mine_time_constrained
from repro.io.csvio import database_to_transactions
from tests import strategies as my

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def mined_counts(db, minsup, algorithm, **counting_kwargs):
    result = mine(
        db,
        MiningParams(
            minsup=minsup,
            algorithm=algorithm,
            counting=CountingOptions(**counting_kwargs),
        ),
    )
    return (
        [(p.sequence, p.count) for p in result.patterns],
        result.large_counts_by_length,
    )


@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
@given(db=my.databases(), minsup=my.minsups())
@RELAXED
def test_four_strategies_identical_serial(db, minsup, algorithm):
    anchor = mined_counts(db, minsup, algorithm, strategy="hashtree")
    for strategy in ("bitset", "naive", "vertical"):
        assert mined_counts(db, minsup, algorithm, strategy=strategy) == anchor, (
            strategy
        )


@pytest.mark.parametrize("strategy", ["bitset", "vertical"])
@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
@given(db=my.databases(), minsup=my.minsups())
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_prepared_strategies_identical_with_two_workers(
    db, minsup, algorithm, strategy
):
    """The once-per-run prepared backends (compiled bitset, inverted
    vertical) must count identically when the pass is sharded over two
    workers — customer shards for bitset, candidate shards for vertical."""
    serial = mined_counts(db, minsup, algorithm, strategy=strategy)
    parallel = mined_counts(
        db, minsup, algorithm, strategy=strategy, workers=2, chunk_size=2
    )
    assert parallel == serial


@given(
    sequences=st.lists(my.id_event_sequences(max_id=5), max_size=8),
    candidates=st.sets(my.id_sequences(max_id=5, max_length=3), max_size=12),
)
@RELAXED
def test_raw_engine_four_way_equivalence(sequences, candidates):
    """count_candidates itself (no miner, mixed candidate lengths): every
    strategy returns the same dict, zeros included."""
    anchor = count_candidates(sequences, candidates, strategy="hashtree")
    for strategy in COUNTING_STRATEGIES:
        assert count_candidates(sequences, candidates, strategy=strategy) == anchor


TIMED_CONSTRAINTS = [
    TimeConstraints(),
    TimeConstraints(min_gap=1),
    TimeConstraints(max_gap=3),
    TimeConstraints(window_size=1),
    TimeConstraints(min_gap=1, max_gap=4, window_size=1),
]


@pytest.mark.parametrize("constraints", TIMED_CONSTRAINTS)
@given(db=my.databases(max_customers=4, max_events=3))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_timed_bitset_equals_generic(db, constraints):
    rows = list(database_to_transactions(db))
    anchor = mine_time_constrained(rows, 0.4, constraints)
    assert mine_time_constrained(rows, 0.4, constraints, strategy="bitset") == anchor
    assert (
        mine_time_constrained(
            rows, 0.4, constraints, strategy="bitset", workers=2, chunk_size=1
        )
        == anchor
    )


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError, match="unknown counting strategy"):
        count_candidates([], [(1, 2)], strategy="bogus")
    with pytest.raises(ValueError, match="unknown counting strategy"):
        CountingOptions(strategy="bogus")
    with pytest.raises(ValueError, match="unknown counting strategy"):
        mine_time_constrained([], 0.5, strategy="bogus")
