"""The deterministic fault-injection layer (:mod:`repro.testing.faults`).

These tests pin the harness itself — single-shot firing, op counting,
match filtering, schedule determinism — because the crash-consistency
suite's guarantees are only as strong as the injector's.
"""

import pytest

from repro.io.fsops import fs_open, fsync_dir
from repro.testing import (
    FaultInjector,
    SimulatedCrash,
    count_io_ops,
    fault_schedule,
    inject_faults,
)


def _touch(path) -> None:
    with fs_open(path, "w", encoding="utf-8") as handle:
        handle.write("x")


class TestFaultInjector:
    def test_fires_at_exact_index_then_disarms(self, tmp_path):
        injector = FaultInjector(2, kind="oserror")
        with inject_faults(injector):
            _touch(tmp_path / "a")  # op 0
            _touch(tmp_path / "b")  # op 1
            with pytest.raises(OSError, match="injected fault at io op 2"):
                _touch(tmp_path / "c")  # op 2: fires
            _touch(tmp_path / "d")  # single-shot: proceeds normally
        assert injector.fired
        assert injector.ops_seen == 4

    def test_kill_kind_is_base_exception(self, tmp_path):
        injector = FaultInjector(0, kind="kill")
        with inject_faults(injector):
            caught_by_except_exception = False
            try:
                try:
                    _touch(tmp_path / "a")
                except Exception:  # must NOT see a simulated kill
                    caught_by_except_exception = True
            except SimulatedCrash:
                pass
        assert not caught_by_except_exception
        assert injector.fired

    def test_match_filter_counts_only_matching_paths(self, tmp_path):
        injector = FaultInjector(0, match="target")
        with inject_faults(injector):
            _touch(tmp_path / "other")  # not counted
            with pytest.raises(OSError):
                _touch(tmp_path / "target-file")
        assert injector.ops_seen == 1

    def test_disarmed_injector_never_fires(self, tmp_path):
        with inject_faults(FaultInjector(None)) as injector:
            _touch(tmp_path / "a")
            fsync_dir(tmp_path)
        assert not injector.fired
        assert injector.ops_seen == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind must be"):
            FaultInjector(0, kind="meteor")

    def test_hook_removed_after_context(self, tmp_path):
        with inject_faults(FaultInjector(None)) as injector:
            _touch(tmp_path / "a")
        before = injector.ops_seen
        _touch(tmp_path / "b")  # outside: not traced
        assert injector.ops_seen == before


class TestCountIoOps:
    def test_counts_without_failing(self, tmp_path):
        with count_io_ops() as counter:
            _touch(tmp_path / "a")
            _touch(tmp_path / "b")
        assert counter.ops_seen == 2
        assert not counter.fired


class TestFaultSchedule:
    def test_deterministic_for_a_seed(self):
        assert fault_schedule(7, 100, 10) == fault_schedule(7, 100, 10)

    def test_seeds_differ(self):
        schedules = {tuple(fault_schedule(s, 1000, 10)) for s in range(5)}
        assert len(schedules) > 1

    def test_always_includes_torn_edges(self):
        for seed in range(3):
            points = fault_schedule(seed, 50, 5)
            assert 0 in points and 49 in points

    def test_sorted_unique_within_bounds(self):
        points = fault_schedule(3, 40, 12)
        assert points == sorted(set(points))
        assert all(0 <= p < 40 for p in points)
        assert len(points) <= 12

    def test_degenerate_sizes(self):
        assert fault_schedule(0, 0, 5) == []
        assert fault_schedule(0, 1, 5) == [0]
        assert fault_schedule(0, 2, 5) == [0, 1]
