"""Worker-loss recovery in the sharded counting executor.

The contract (see :func:`repro.parallel.executor._run_sharded`): a
SIGKILLed pool worker no longer aborts the pass — the failed shards are
re-dispatched through a fresh pool with bounded, logged retries; a shard
that keeps failing degrades to in-process serial counting (logged, never
silent); and however many workers died along the way, the merged counts
are identical to a serial run.

The kill tests require the ``fork`` start method (the injected failure
state travels to workers via inherited module globals), so they are
Linux-only — exactly the platform where the executor prefers fork.
"""

import logging
import os
import signal
import sys
from pathlib import Path

import pytest

from repro.core.counting import count_candidates
from repro.miner import MiningParams, mine
from repro.core.phase import CountingOptions
from repro.db.database import SequenceDatabase
from repro.parallel import executor
from repro.parallel.executor import parallel_count_candidates

needs_fork = pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="kill-injection rides fork-inherited globals",
)


def events(*ids_per_event):
    return tuple(frozenset(ids) for ids in ids_per_event)


SEQUENCES = [
    events({1}, {2}, {1}),
    events({2, 3}, {1}),
    events({1, 2}),
    events({3}, {3}, {2}),
    events({1}, {1}, {1}),
    events({2}, {3}),
    events({4}, {1, 3}),
]
CANDIDATES = [(1, 2), (2, 1), (3, 3), (3, 2), (1, 1), (4, 3), (9, 9)]

#: Set at import, in the parent: workers (forked later) see a different
#: pid, which is how the injected tasks know they are in a child.
_PARENT_PID = os.getpid()

#: Directory for cross-process kill markers; monkeypatched per test.
_KILL_DIR = None

_ORIGINAL_COUNT_SHARD = executor._count_shard
_ORIGINAL_LENGTH2_SHARD = executor._count_length2_shard
_ORIGINAL_PREFIXSPAN_SHARD = executor._prefixspan_shard


def _mark_once(name: str) -> bool:
    """True for exactly one caller per marker name, across processes."""
    try:
        fd = os.open(Path(_KILL_DIR) / name, os.O_CREAT | os.O_EXCL)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _killing_count_shard(bounds):
    """Real shard counting, except each shard's first worker run dies by
    SIGKILL — the genuine article, not an exception."""
    if _KILL_DIR is not None and os.getpid() != _PARENT_PID:
        if _mark_once(f"killed-{bounds[0]}-{bounds[1]}"):
            os.kill(os.getpid(), signal.SIGKILL)
    return _ORIGINAL_COUNT_SHARD(bounds)


def _killing_length2_shard(bounds):
    """Same, for the length-2 pass — the pass every mine parallelizes."""
    if _KILL_DIR is not None and os.getpid() != _PARENT_PID:
        if _mark_once(f"killed-l2-{bounds[0]}-{bounds[1]}"):
            os.kill(os.getpid(), signal.SIGKILL)
    return _ORIGINAL_LENGTH2_SHARD(bounds)


def _killing_prefixspan_shard(bounds):
    """Same, for the pattern-growth engine's seed shards."""
    if _KILL_DIR is not None and os.getpid() != _PARENT_PID:
        if _mark_once(f"killed-ps-{bounds[0]}-{bounds[1]}"):
            os.kill(os.getpid(), signal.SIGKILL)
    return _ORIGINAL_PREFIXSPAN_SHARD(bounds)


def _child_hostile_task(bounds):
    """Fails deterministically in any worker, succeeds in the parent —
    the shape that must end in logged in-process degradation."""
    if os.getpid() != _PARENT_PID:
        raise OSError("this shard only works in the parent")
    return {bounds: bounds[1] - bounds[0]}


def _always_failing_task(bounds):
    raise ValueError(f"shard {bounds} is deterministically broken")


@pytest.fixture
def fast_retries(monkeypatch):
    monkeypatch.setattr(executor, "SHARD_BACKOFF_SECONDS", 0.0)


@needs_fork
class TestWorkerLossRecovery:
    @pytest.fixture
    def kill_dir(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            sys.modules[__name__], "_KILL_DIR", str(tmp_path)
        )
        return tmp_path

    def test_sigkilled_worker_counts_identical(
        self, fast_retries, kill_dir, monkeypatch, caplog
    ):
        monkeypatch.setattr(executor, "_count_shard", _killing_count_shard)
        serial = count_candidates(SEQUENCES, CANDIDATES)
        with caplog.at_level(logging.WARNING, logger="repro.parallel"):
            parallel = parallel_count_candidates(
                SEQUENCES, CANDIDATES, workers=2, chunk_size=2
            )
        assert parallel == serial
        assert list(parallel) == list(serial)
        messages = [record.getMessage() for record in caplog.records]
        assert any("worker lost during shard" in m for m in messages)

    def test_sigkilled_worker_mid_mine_run_completes(
        self, fast_retries, kill_dir, monkeypatch, caplog
    ):
        """The acceptance criterion end to end: SIGKILL a pool worker in
        the middle of a full mine; the run finishes with results
        identical to serial."""
        monkeypatch.setattr(executor, "_count_shard", _killing_count_shard)
        monkeypatch.setattr(
            executor, "_count_length2_shard", _killing_length2_shard
        )
        db = SequenceDatabase.from_sequences(
            [list(s) for s in SEQUENCES] * 3
        )
        serial = mine(
            db,
            MiningParams(minsup=0.3, counting=CountingOptions(workers=1)),
        )
        with caplog.at_level(logging.WARNING, logger="repro.parallel"):
            parallel = mine(
                db,
                MiningParams(
                    minsup=0.3,
                    counting=CountingOptions(workers=2, chunk_size=3),
                ),
            )
        assert [(p.sequence, p.count) for p in parallel.patterns] == [
            (p.sequence, p.count) for p in serial.patterns
        ]
        assert any(kill_dir.iterdir()), "no worker was actually killed"

    def test_sigkilled_worker_mid_prefixspan_run_completes(
        self, fast_retries, kill_dir, monkeypatch, caplog
    ):
        """The pattern-growth engine rides the same recovery contract:
        SIGKILL a seed-shard worker mid-run; the merged frequent set is
        identical to serial."""
        monkeypatch.setattr(
            executor, "_prefixspan_shard", _killing_prefixspan_shard
        )
        db = SequenceDatabase.from_sequences(
            [list(s) for s in SEQUENCES] * 3
        )
        serial = mine(
            db,
            MiningParams(
                minsup=0.3,
                algorithm="prefixspan",
                counting=CountingOptions(workers=1),
            ),
        )
        with caplog.at_level(logging.WARNING, logger="repro.parallel"):
            parallel = mine(
                db,
                MiningParams(
                    minsup=0.3,
                    algorithm="prefixspan",
                    counting=CountingOptions(workers=2, chunk_size=1),
                ),
            )
        assert [(p.sequence, p.count) for p in parallel.patterns] == [
            (p.sequence, p.count) for p in serial.patterns
        ]
        assert any(kill_dir.iterdir()), "no worker was actually killed"

    def test_repeated_failure_degrades_in_process_with_logs(
        self, fast_retries, caplog
    ):
        with caplog.at_level(logging.WARNING, logger="repro.parallel"):
            results = executor._run_sharded(
                list(range(6)), 2, 3, "test", (), _child_hostile_task
            )
        assert results == [{(0, 3): 3}, {(3, 6): 3}]
        messages = [record.getMessage() for record in caplog.records]
        warnings = [m for m in messages if "failed (attempt" in m]
        degradations = [
            m for m in messages
            if "degrading to in-process serial counting" in m
        ]
        # Each shard burned its full attempt budget, then degraded.
        assert len(warnings) == 2 * executor.SHARD_MAX_ATTEMPTS
        assert len(degradations) == 2

    def test_deterministic_error_propagates_with_real_traceback(
        self, fast_retries, caplog
    ):
        """A shard broken everywhere (including in-process) must raise
        its own exception after the retry budget, not be swallowed."""
        with caplog.at_level(logging.WARNING, logger="repro.parallel"):
            with pytest.raises(ValueError, match="deterministically broken"):
                executor._run_sharded(
                    list(range(4)), 2, 2, "test", (), _always_failing_task
                )
        assert any(
            "degrading" in record.getMessage() for record in caplog.records
        )

    def test_state_cleaned_up_after_failure(self, fast_retries):
        with pytest.raises(ValueError):
            executor._run_sharded(
                list(range(4)), 2, 2, "test", ("payload",),
                _always_failing_task,
            )
        assert executor._SEQUENCES is None
        assert "test" not in executor._STATE


class TestRetryKnobs:
    def test_constants_are_sane(self):
        # The retry budget and backoff base are part of the documented
        # recovery contract; changing them is an intentional act.
        assert executor.SHARD_MAX_ATTEMPTS == 3
        assert executor.SHARD_BACKOFF_SECONDS > 0
