"""Crash-consistency sweep: kill the process at sampled io operations
across a full mine → append → update lifecycle, then recover.

Each injection point simulates a hard kill (a :class:`SimulatedCrash`
``BaseException`` raised from inside the filesystem seam, before the
traced operation executes). Recovery is the documented operator
protocol — ``seqmine fsck`` then re-running the interrupted step — and
the invariant under test is that it always converges to a final state
byte-identical to an uninterrupted run:

* the partition manifest and mining-state snapshot match the baseline
  byte for byte;
* no temp-file litter, no quarantined files, and the same file set;
* steps that already committed (manifest replace, snapshot replace)
  are detected from disk and *not* re-run — appends are not idempotent,
  so this detection is what the sweep proves out.

The sampled injection points are drawn with
:func:`repro.testing.fault_schedule`, seeded by the ``CHAOS_SEED``
environment variable so CI can sweep disjoint samples across jobs
while any single failure stays exactly reproducible.
"""

import os
import random
import shutil
from pathlib import Path

from repro.core.phase import CountingOptions
from repro.db.database import CustomerSequence
from repro.db.fsck import QUARANTINE_SUFFIX, fsck_directory
from repro.db.partitioned import (
    MANIFEST_NAME,
    MINING_STATE_NAME,
    PartitionedDatabase,
)
from repro.incremental import update_mining
from repro.io.state import read_mining_state, write_mining_state
from repro.miner import MiningParams, mine
from repro.testing import (
    FaultInjector,
    SimulatedCrash,
    count_io_ops,
    fault_schedule,
    inject_faults,
)

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
CHAOS_SAMPLES = int(os.environ.get("CHAOS_SAMPLES", "12"))
MINSUP = 0.25


def _random_customers(seed, ids, items=8):
    rng = random.Random(seed)
    return [
        CustomerSequence(
            customer_id=cid,
            events=tuple(
                tuple(sorted(rng.sample(range(1, items + 1), rng.randint(1, 3))))
                for _ in range(rng.randint(1, 4))
            ),
        )
        for cid in ids
    ]


def base_customers():
    return _random_customers(97, range(1, 15))


def delta_customers():
    # Two overlay records (extra events for existing customers) followed
    # by six new customers — both delta shapes in one append.
    overlays = [
        CustomerSequence(customer_id=2, events=((1, 2),)),
        CustomerSequence(customer_id=5, events=((3,), (1, 4))),
    ]
    return overlays + _random_customers(131, range(15, 21))


def _mine_step(directory: Path) -> None:
    db = PartitionedDatabase.open(directory)
    result = mine(
        db,
        MiningParams(minsup=MINSUP, counting=CountingOptions()),
        collect_state=True,
    )
    write_mining_state(result.state, directory / MINING_STATE_NAME)


def _append_step(directory: Path) -> None:
    PartitionedDatabase.open(directory).append_delta(delta_customers())


def _update_step(directory: Path) -> None:
    db = PartitionedDatabase.open(directory)
    state = read_mining_state(directory / MINING_STATE_NAME)
    outcome = update_mining(db, state, counting=CountingOptions())
    write_mining_state(outcome.state, directory / MINING_STATE_NAME)


def run_lifecycle(directory: Path) -> None:
    PartitionedDatabase.create(directory, base_customers(), partitions=2)
    _mine_step(directory)
    _append_step(directory)
    _update_step(directory)


def recover_and_finish(directory: Path) -> None:
    """The operator protocol after a crash at an arbitrary point.

    Every decision is made from on-disk state alone — the recovering
    process knows nothing about where the dead one stopped.
    """
    if not (directory / MANIFEST_NAME).exists():
        # Crashed before the create committed: nothing durable exists.
        shutil.rmtree(directory, ignore_errors=True)
        PartitionedDatabase.create(directory, base_customers(), partitions=2)
    else:
        fsck_directory(directory)

    state_path = directory / MINING_STATE_NAME
    if (
        PartitionedDatabase.open(directory).generation == 0
        and not state_path.exists()
    ):
        _mine_step(directory)
    if PartitionedDatabase.open(directory).generation == 0:
        _append_step(directory)  # manifest never committed: safe to redo
    if (
        read_mining_state(state_path).generation
        < PartitionedDatabase.open(directory).generation
    ):
        _update_step(directory)


def fingerprint(directory: Path) -> dict:
    return {
        "manifest": (directory / MANIFEST_NAME).read_bytes(),
        "state": (directory / MINING_STATE_NAME).read_bytes(),
        "files": sorted(
            str(path.relative_to(directory))
            for path in directory.rglob("*")
            if path.is_file()
        ),
    }


class TestCrashSweep:
    def test_recovery_converges_from_every_sampled_injection_point(
        self, tmp_path
    ):
        baseline_dir = tmp_path / "baseline"
        with count_io_ops() as counter:
            run_lifecycle(baseline_dir)
        total_ops = counter.ops_seen
        assert total_ops > 20, "lifecycle too small to be worth sweeping"
        baseline = fingerprint(baseline_dir)

        points = fault_schedule(CHAOS_SEED, total_ops, CHAOS_SAMPLES)
        assert points, "empty schedule"
        for point in points:
            workdir = tmp_path / f"crash-{point:04d}"
            injector = FaultInjector(point, kind="kill")
            crashed = False
            try:
                with inject_faults(injector):
                    run_lifecycle(workdir)
            except SimulatedCrash:
                crashed = True
            assert crashed and injector.fired, (
                f"injection point {point} never fired ({injector.ops_seen} "
                f"ops seen)"
            )
            recover_and_finish(workdir)
            recovered = fingerprint(workdir)
            assert recovered["manifest"] == baseline["manifest"], (
                f"manifest diverged after crash at io op {point}"
            )
            assert recovered["state"] == baseline["state"], (
                f"mining state diverged after crash at io op {point}"
            )
            assert recovered["files"] == baseline["files"], (
                f"file set diverged after crash at io op {point}: "
                f"{sorted(set(recovered['files']) ^ set(baseline['files']))}"
            )
            assert not any(
                name.endswith(QUARANTINE_SUFFIX) or name.endswith(".tmp")
                for name in recovered["files"]
            )

    def test_recovery_protocol_is_idempotent(self, tmp_path):
        """Running recovery on an already-complete directory changes
        nothing — operators can always fsck-and-resume defensively."""
        directory = tmp_path / "db"
        run_lifecycle(directory)
        before = fingerprint(directory)
        recover_and_finish(directory)
        recover_and_finish(directory)
        assert fingerprint(directory) == before

    def test_double_crash_still_converges(self, tmp_path):
        """A crash during *recovery* (the second failure mode operators
        actually hit) must leave the directory recoverable again."""
        baseline_dir = tmp_path / "baseline"
        with count_io_ops() as counter:
            run_lifecycle(baseline_dir)
        baseline = fingerprint(baseline_dir)
        total_ops = counter.ops_seen

        first, second = total_ops // 3, 5
        workdir = tmp_path / "crash"
        try:
            with inject_faults(FaultInjector(first, kind="kill")):
                run_lifecycle(workdir)
        except SimulatedCrash:
            pass
        try:
            with inject_faults(FaultInjector(second, kind="kill")):
                recover_and_finish(workdir)
        except SimulatedCrash:
            pass
        recover_and_finish(workdir)
        recovered = fingerprint(workdir)
        assert recovered["manifest"] == baseline["manifest"]
        assert recovered["state"] == baseline["state"]
        assert recovered["files"] == baseline["files"]
