"""Concurrency and robustness tests for the pattern-serving HTTP tier.

The hot-swap contract under test: while snapshots are swapped in a loop
under concurrent client load, **every** response is wholly consistent
with exactly one snapshot generation (no mixed/torn results) and no
request errors; a failed reload — corrupt file, or a writer crashed
mid-rewrite by the :class:`~repro.testing.faults.FaultInjector` — keeps
the old index serving.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal

import pytest

from repro.io.patterns import write_patterns
from repro.miner import Pattern
from repro.core.sequence import Sequence
from repro.serving.index import PatternIndex, pattern_payload
from repro.serving.server import PatternServer, ServingError
from repro.testing.faults import (
    FaultInjector,
    SimulatedCrash,
    count_io_ops,
    inject_faults,
)

#: Two distinguishable snapshot contents; every pattern set below keeps
#: support = count / 10 so payloads are fully deterministic.
GEN_A = [
    Pattern(sequence=Sequence([(30,), (40, 70)]), count=2, support=0.2),
    Pattern(sequence=Sequence([(30,), (90,)]), count=4, support=0.4),
]
GEN_B = [
    Pattern(sequence=Sequence([(30,), (40, 70)]), count=3, support=0.3),
    Pattern(sequence=Sequence([(10, 20), (30,)]), count=5, support=0.5),
    Pattern(sequence=Sequence([(90,)]), count=6, support=0.6),
]

#: The query used by the load clients: matches patterns from both
#: generations, with different results in each.
QUERY_TEXT = "<(10 20)(30)(40 60 70)(90)>"
QUERY_EVENTS = [(10, 20), (30,), (40, 60, 70), (90,)]


def expected_match_payload(patterns: list[Pattern]) -> list[dict[str, object]]:
    index = PatternIndex(patterns)
    return [pattern_payload(p) for p in index.match(QUERY_EVENTS)]


async def http_request(
    port: int, target: str, *, method: str = "GET", body: bytes = b""
) -> tuple[int, dict[str, object]]:
    """One raw HTTP round trip on a fresh connection."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        head = (
            f"{method} {target} HTTP/1.1\r\n"
            f"Host: test\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        payload = json.loads((await reader.readexactly(length)).decode("utf-8"))
        return status, payload
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


@pytest.fixture()
def patterns_path(tmp_path):
    path = tmp_path / "patterns.txt"
    write_patterns(GEN_A, path)
    return path


def run(coro):
    return asyncio.run(coro)


class TestEndpoints:
    def test_match_predict_healthz_stats(self, patterns_path):
        async def scenario():
            server = PatternServer(patterns_path)
            await server.start()
            try:
                port = server.port
                status, payload = await http_request(
                    port, "/match?seq=%3C(30)(40%2070)%3E"
                )
                assert status == 200
                assert payload["generation"] == 1
                assert payload["num_matched"] == 1
                assert payload["patterns"][0]["pattern"] == "<(30)(40 70)>"

                status, payload = await http_request(
                    port, "/predict?seq=%3C(30)%3E&k=3"
                )
                assert status == 200
                # (30) re-opens with count 4, tying (90); label breaks it.
                events = [(p["event"], p["count"]) for p in payload["predictions"]]
                assert events == [([30], 4), ([90], 4), ([40, 70], 2)]

                body = json.dumps(
                    {"sequence": [[30], [40, 60, 70]], "k": 1}
                ).encode()
                status, payload = await http_request(
                    port, "/predict", method="POST", body=body
                )
                assert status == 200

                status, payload = await http_request(port, "/healthz")
                assert (status, payload["status"]) == (200, "ok")

                status, payload = await http_request(port, "/stats")
                assert status == 200
                assert payload["patterns"] == len(GEN_A)
                assert payload["requests"]["/match"] == 1
            finally:
                await server.close()

        run(scenario())

    def test_error_paths(self, patterns_path):
        async def scenario():
            server = PatternServer(patterns_path)
            await server.start()
            try:
                port = server.port
                for target, expect in [
                    ("/nope", 404),
                    ("/match", 400),              # missing seq
                    ("/match?seq=30", 400),       # unparsable
                    ("/predict?seq=%3C%3E&k=x", 400),
                    ("/predict?seq=%3C%3E&k=-1", 400),
                ]:
                    status, payload = await http_request(port, target)
                    assert status == expect
                    assert "error" in payload
                status, _ = await http_request(port, "/reload")  # GET
                assert status == 405
                status, _ = await http_request(port, "/stats", method="POST")
                assert status == 405
                body = b"{not json"
                status, _ = await http_request(
                    port, "/match", method="POST", body=body
                )
                assert status == 400
                # Empty query is legal, not an error.
                status, payload = await http_request(port, "/match?seq=%3C%3E")
                assert (status, payload["num_matched"]) == (200, 0)
            finally:
                await server.close()

        run(scenario())

    def test_missing_patterns_file_fails_startup(self, tmp_path):
        async def scenario():
            server = PatternServer(tmp_path / "absent.txt")
            with pytest.raises(OSError):
                await server.start()

        run(scenario())


class TestHotSwapConsistency:
    def test_concurrent_load_while_swapping(self, patterns_path):
        """Hammer /match from concurrent clients while snapshots swap in
        a loop; every response must be byte-consistent with exactly one
        generation and zero requests may error."""

        async def scenario():
            server = PatternServer(patterns_path)
            await server.start()
            expected = {1: expected_match_payload(GEN_A)}
            responses: list[tuple[int, dict[str, object]]] = []
            stop = asyncio.Event()

            async def client() -> None:
                while not stop.is_set():
                    status, payload = await http_request(
                        server.port, "/match?seq=" + QUERY_PARAM
                    )
                    responses.append((status, payload))

            async def swapper() -> None:
                for round_number in range(12):
                    content = GEN_B if round_number % 2 == 0 else GEN_A
                    write_patterns(content, patterns_path)
                    # Record before publishing: a response may carry the
                    # new generation the instant reload() publishes it.
                    next_generation = server.snapshot.generation + 1
                    expected[next_generation] = expected_match_payload(content)
                    await server.reload()
                    await asyncio.sleep(0)  # let clients interleave
                stop.set()

            from urllib.parse import quote

            QUERY_PARAM = quote(QUERY_TEXT)
            try:
                await asyncio.gather(
                    swapper(), *(client() for _ in range(4))
                )
            finally:
                await server.close()

            assert len(responses) > 0
            generations_seen = set()
            for status, payload in responses:
                assert status == 200, payload
                generation = payload["generation"]
                generations_seen.add(generation)
                assert payload["patterns"] == expected[generation], (
                    f"torn response: generation {generation} served a "
                    f"pattern set from another snapshot"
                )
            assert 13 in generations_seen  # the last swap was observed

        run(scenario())

    def test_inflight_requests_finish_on_their_snapshot(self, patterns_path):
        """A request that reads its snapshot before a swap completes on
        that snapshot — generation and patterns stay mutually consistent
        even when the reload commits mid-request."""

        async def scenario():
            server = PatternServer(patterns_path)
            await server.start()
            from urllib.parse import quote

            try:
                results = await asyncio.gather(
                    http_request(server.port, "/match?seq=" + quote(QUERY_TEXT)),
                    server.reload(),
                    http_request(server.port, "/match?seq=" + quote(QUERY_TEXT)),
                )
            finally:
                await server.close()
            for status, payload in (results[0], results[2]):
                assert status == 200
                expected = expected_match_payload(GEN_A)
                assert payload["patterns"] == expected
                assert payload["generation"] in (1, 2)

        run(scenario())


class TestFailedReload:
    def test_corrupt_file_keeps_old_index_serving(self, patterns_path):
        async def scenario():
            server = PatternServer(patterns_path)
            await server.start()
            try:
                port = server.port
                # Corrupt the pattern file (simulates a bad deploy).
                patterns_path.write_text("#! seqmine-patterns v1\ngarbage\n")
                status, payload = await http_request(
                    port, "/reload", method="POST"
                )
                assert status == 500
                assert "still serving generation 1" in payload["error"]
                # Old snapshot still answers, same generation.
                status, payload = await http_request(port, "/match?seq=%3C(30)(90)%3E")
                assert (status, payload["generation"]) == (200, 1)
                assert payload["num_matched"] == 1
                status, payload = await http_request(port, "/stats")
                assert payload["reloads"] == {
                    "ok": 0,
                    "failed": 1,
                    "last_error": payload["reloads"]["last_error"],
                }
                assert "garbage" in payload["reloads"]["last_error"]
                # Fix the file: the next reload succeeds.
                write_patterns(GEN_B, patterns_path)
                status, payload = await http_request(
                    port, "/reload", method="POST"
                )
                assert (status, payload["generation"]) == (200, 2)
            finally:
                await server.close()

        run(scenario())

    def test_truncated_file_rejected_by_reload(self, patterns_path):
        async def scenario():
            server = PatternServer(patterns_path)
            await server.start()
            try:
                data = patterns_path.read_bytes()
                patterns_path.write_bytes(data[: len(data) // 2])
                with pytest.raises(ServingError, match="still serving"):
                    await server.reload()
                assert server.snapshot.generation == 1
            finally:
                await server.close()

        run(scenario())

    def test_faultinjector_crashed_rewrite_keeps_serving(self, patterns_path):
        """Sweep a simulated crash over every I/O op of the snapshot
        rewrite: whatever the crash left on disk, a reload either serves
        the complete old or the complete new set — never a torn one —
        because the atomic-writer protocol plus the strict loader make
        partial states unreachable."""

        async def scenario():
            with count_io_ops(match="patterns.txt") as counter:
                write_patterns(GEN_B, patterns_path)
            total_ops = counter.ops_seen
            assert total_ops > 0
            for fail_at in range(total_ops):
                write_patterns(GEN_A, patterns_path)  # reset: old snapshot
                server = PatternServer(patterns_path)
                await server.start()
                try:
                    injector = FaultInjector(
                        fail_at, kind="kill", match="patterns.txt"
                    )
                    with inject_faults(injector):
                        try:
                            write_patterns(GEN_B, patterns_path)
                        except SimulatedCrash:
                            pass
                    assert injector.fired
                    await server.reload()  # file is old-or-new complete
                    served = server.snapshot.index.match(QUERY_EVENTS)
                    expected_old = PatternIndex(GEN_A).match(QUERY_EVENTS)
                    expected_new = PatternIndex(GEN_B).match(QUERY_EVENTS)
                    assert served in (expected_old, expected_new)
                finally:
                    await server.close()

        run(scenario())


class TestSighup:
    def test_sighup_triggers_hot_swap(self, patterns_path):
        async def scenario():
            server = PatternServer(patterns_path)
            await server.start()
            try:
                write_patterns(GEN_B, patterns_path)
                os.kill(os.getpid(), signal.SIGHUP)
                for _ in range(100):
                    await asyncio.sleep(0.01)
                    if server.snapshot.generation == 2:
                        break
                assert server.snapshot.generation == 2
                assert server.snapshot.num_patterns == len(GEN_B)
            finally:
                await server.close()

        run(scenario())
