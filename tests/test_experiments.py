"""Tests for the experiment harness (small scales so they stay fast)."""

import pytest

from repro.experiments import datasets as ds
from repro.experiments.figures import (
    EXPERIMENTS,
    ablation_counting,
    fig6_execution_times,
    fig8_scaleup_customers,
    pattern_length_summary,
    table1_parameters,
    table2_datasets,
)
from repro.experiments.harness import RunRecord, run_mining

TINY = dict(num_customers=120, seed=3)


@pytest.fixture(autouse=True)
def fresh_cache():
    ds.clear_cache()
    yield
    ds.clear_cache()


class TestDatasets:
    def test_paper_grid_names_parse(self):
        for name in ds.PAPER_DATASETS:
            params = ds.dataset_params(name, num_customers=10)
            assert params.name == name

    def test_load_dataset_cached(self):
        a = ds.load_dataset("C10-T2.5-S4-I1.25", **TINY)
        b = ds.load_dataset("C10-T2.5-S4-I1.25", **TINY)
        assert a is b
        ds.clear_cache()
        c = ds.load_dataset("C10-T2.5-S4-I1.25", **TINY)
        assert c is not a
        assert c == a  # deterministic regeneration

    def test_bench_minsups_density_adjusted(self):
        assert ds.bench_minsups("C10-T2.5-S4-I1.25") == ds.BENCH_MINSUPS
        assert ds.bench_minsups("C10-T5-S4-I1.25") == ds.BENCH_MINSUPS_DENSE
        assert ds.bench_minsups("C20-T2.5-S8-I1.25") == ds.BENCH_MINSUPS_DENSE

    def test_fast_mode_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FAST", "1")
        assert ds.fast_mode()
        assert len(ds.bench_minsups("C10-T2.5-S4-I1.25")) == 3
        assert ds.bench_customers() == 400

    def test_customers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CUSTOMERS", "123")
        assert ds.bench_customers() == 123
        monkeypatch.setenv("REPRO_BENCH_CUSTOMERS", "0")
        with pytest.raises(ValueError):
            ds.bench_customers()


class TestHarness:
    def test_run_record_shape(self):
        db = ds.load_dataset("C10-T2.5-S4-I1.25", **TINY)
        record, result = run_mining(
            db, dataset="C10-T2.5-S4-I1.25", algorithm="aprioriall", minsup=0.05
        )
        assert record.num_customers == 120
        assert record.num_patterns == result.num_patterns
        assert record.seconds > 0
        assert len(record.as_row()) == len(RunRecord.ROW_HEADERS)


class TestFigures:
    def test_table1_static(self):
        figure = table1_parameters()
        assert len(figure.rows) == 8
        assert "Table 1" in figure.render()

    def test_table2_small(self):
        figure = table2_datasets(
            datasets=("C10-T2.5-S4-I1.25",), **TINY
        )
        assert len(figure.rows) == 1
        assert figure.rows[0][1] == 120

    def test_fig6_structure(self):
        figure = fig6_execution_times(
            "C10-T2.5-S4-I1.25",
            minsups=(0.08, 0.05),
            algorithms=("aprioriall", "apriorisome"),
            **TINY,
        )
        assert len(figure.rows) == 4
        assert set(figure.series) == {"aprioriall", "apriorisome"}
        assert not any("DISAGREEMENT" in n for n in figure.notes)
        rendered = figure.render()
        assert "seconds vs minsup" in rendered

    def test_fig8_relative_baseline(self):
        figure = fig8_scaleup_customers(
            factors=(1.0, 2.0),
            minsup=0.06,
            algorithms=("aprioriall",),
            base_customers=80,
            seed=3,
        )
        relatives = [row[3] for row in figure.rows]
        assert relatives[0] == 1.0

    def test_ablation_counting_agreement(self):
        figure = ablation_counting(
            dataset="C10-T2.5-S4-I1.25", minsup=0.05, **TINY
        )
        assert len(figure.rows) == 2
        assert figure.rows[0][2] == figure.rows[1][2]

    def test_pattern_length_summary(self):
        figure = pattern_length_summary(
            dataset="C10-T2.5-S4-I1.25", minsup=0.05, **TINY
        )
        assert all(isinstance(row[0], int) for row in figure.rows)

    def test_registry_contains_all_panels(self):
        for name in ds.PAPER_DATASETS:
            assert f"fig6-{name}" in EXPERIMENTS
        for key in (
            "table1-params",
            "table2-datasets",
            "fig7-candidates",
            "fig8-scaleup-customers",
            "fig9-scaleup-density",
            "ablation-counting",
            "ablation-phases",
            "ablation-next-policy",
            "ablation-dynamic-step",
        ):
            assert key in EXPERIMENTS
