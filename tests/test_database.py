"""Tests for the sequence database and the sort phase."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.sequence import Sequence
from repro.db.database import (
    CustomerSequence,
    SequenceDatabase,
    support_threshold,
)
from repro.db.records import RecordError, Transaction
from tests import strategies as my


def paper_db() -> SequenceDatabase:
    """The running example database of the paper (Section 2)."""
    return SequenceDatabase.from_sequences(
        [
            [(30,), (90,)],
            [(10, 20), (30,), (40, 60, 70)],
            [(30, 50, 70)],
            [(30,), (40, 70), (90,)],
            [(90,)],
        ]
    )


class TestSortPhase:
    def test_orders_by_customer_then_time(self):
        db = SequenceDatabase.from_transactions(
            [
                Transaction(2, 10, (5,)),
                Transaction(1, 20, (2,)),
                Transaction(1, 10, (1,)),
                Transaction(2, 5, (4,)),
            ]
        )
        assert [c.customer_id for c in db] == [1, 2]
        assert db.customers[0].events == ((1,), (2,))
        assert db.customers[1].events == ((4,), (5,))

    def test_merges_same_time_transactions(self):
        db = SequenceDatabase.from_transactions(
            [
                Transaction(1, 10, (1,)),
                Transaction(1, 10, (2,)),
                Transaction(1, 20, (3,)),
            ]
        )
        assert db.customers[0].events == ((1, 2), (3,))

    def test_strict_mode_rejects_same_time(self):
        with pytest.raises(RecordError):
            SequenceDatabase.from_transactions(
                [Transaction(1, 10, (1,)), Transaction(1, 10, (2,))],
                merge_same_time=False,
            )

    def test_empty_database(self):
        db = SequenceDatabase.from_transactions([])
        assert db.num_customers == 0
        assert db.stats().num_transactions == 0

    def test_from_sequences_auto_ids(self):
        db = SequenceDatabase.from_sequences([[(1,)], [(2,)]])
        assert [c.customer_id for c in db] == [1, 2]

    def test_from_sequences_mapping(self):
        db = SequenceDatabase.from_sequences({7: [(1,)], 3: [(2,)]})
        assert [c.customer_id for c in db] == [3, 7]

    def test_duplicate_customer_ids_rejected(self):
        with pytest.raises(RecordError):
            SequenceDatabase(
                [
                    CustomerSequence(1, ((1,),)),
                    CustomerSequence(1, ((2,),)),
                ]
            )

    @given(st.lists(st.tuples(st.integers(1, 3), st.integers(1, 5)), max_size=10))
    def test_sort_phase_is_input_order_independent(self, keys):
        rows = [
            Transaction(cid, t, (cid * 10 + t,)) for cid, t in dict.fromkeys(keys)
        ]
        import random

        shuffled = rows[:]
        random.Random(0).shuffle(shuffled)
        assert SequenceDatabase.from_transactions(
            rows
        ) == SequenceDatabase.from_transactions(shuffled)


class TestSupportThreshold:
    @pytest.mark.parametrize(
        "minsup,customers,expected",
        [
            (0.25, 5, 2),   # paper example: 25% of 5 customers → 2
            (0.25, 8, 2),   # exact integral product stays, not rounded up
            (0.25, 9, 3),
            (1.0, 5, 5),
            (0.01, 10, 1),  # threshold never drops below 1
            (0.5, 0, 1),
        ],
    )
    def test_values(self, minsup, customers, expected):
        assert support_threshold(minsup, customers) == expected

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5])
    def test_invalid_minsup(self, bad):
        with pytest.raises(ValueError):
            support_threshold(bad, 10)

    def test_negative_customers(self):
        with pytest.raises(ValueError):
            support_threshold(0.5, -1)

    @given(st.floats(0.001, 1.0), st.integers(0, 1000))
    def test_threshold_is_minimal_satisfying_count(self, minsup, customers):
        t = support_threshold(minsup, customers)
        assert t >= 1
        if customers:
            # t customers satisfy minsup; t-1 do not (unless t == 1).
            assert t / customers >= minsup - 1e-9
            if t > 1:
                assert (t - 1) / customers < minsup


class TestSupportCounting:
    def test_paper_supports(self):
        db = paper_db()
        assert db.support_count(Sequence([[30]])) == 4
        assert db.support_count(Sequence([[90]])) == 3
        assert db.support_count(Sequence([[30], [90]])) == 2
        assert db.support_count(Sequence([[30], [40, 70]])) == 2
        # (40 70) as one event vs two events
        assert db.support_count(Sequence([[40, 70]])) == 2
        assert db.support_count(Sequence([[40], [70]])) == 0

    def test_customer_counted_once(self):
        db = SequenceDatabase.from_sequences([[(1,), (1,), (1,)]])
        assert db.support_count(Sequence([[1]])) == 1

    def test_support_fraction(self):
        db = paper_db()
        assert db.support(Sequence([[30]])) == pytest.approx(0.8)

    def test_support_of_absent_pattern(self):
        assert paper_db().support_count(Sequence([[999]])) == 0

    def test_support_on_empty_db(self):
        db = SequenceDatabase([])
        assert db.support(Sequence([[1]])) == 0.0


class TestStats:
    def test_paper_example_stats(self):
        stats = paper_db().stats()
        assert stats.num_customers == 5
        assert stats.num_transactions == 10
        assert stats.num_items_total == 16
        assert stats.num_distinct_items == 8
        assert stats.avg_transactions_per_customer == pytest.approx(2.0)
        assert stats.avg_items_per_transaction == pytest.approx(1.6)

    def test_as_row_keys(self):
        row = paper_db().stats().as_row()
        assert set(row) == {
            "customers",
            "transactions",
            "avg_trans_per_cust",
            "avg_items_per_trans",
            "distinct_items",
            "size_mb",
        }

    def test_item_vocabulary(self):
        assert paper_db().item_vocabulary() == frozenset(
            {10, 20, 30, 40, 50, 60, 70, 90}
        )


class TestCustomerSequence:
    def test_as_sequence(self):
        cust = CustomerSequence(1, ((1, 2), (3,)))
        assert cust.as_sequence() == Sequence([[1, 2], [3]])

    def test_contains(self):
        cust = CustomerSequence(1, ((1, 2), (3,)))
        assert cust.contains(Sequence([[1], [3]]))
        assert not cust.contains(Sequence([[3], [1]]))

    def test_counts(self):
        cust = CustomerSequence(1, ((1, 2), (3,)))
        assert cust.num_transactions == 2
        assert cust.num_items == 3

    @given(my.databases())
    def test_iteration_matches_len(self, db):
        assert len(list(db)) == len(db) == db.num_customers
