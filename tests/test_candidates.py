"""Tests for sequence-phase candidate generation."""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import (
    apriori_generate,
    delete_one_subsequences,
    has_all_subsequences,
    join_parents,
)


class TestJoin:
    def test_paper_style_example(self):
        # Sequence analogue of the VLDB'94 example: join on overlap.
        large = [(1, 2, 3), (1, 2, 4), (1, 3, 4), (1, 3, 5), (2, 3, 4)]
        assert apriori_generate(large) == [(1, 2, 3, 4)]

    def test_pairs_include_both_orders_and_self(self):
        assert apriori_generate([(1,), (2,)]) == [
            (1, 1),
            (1, 2),
            (2, 1),
            (2, 2),
        ]

    def test_order_sensitive_join(self):
        # (1,2) and (2,3) join to (1,2,3); (2,3) and (1,2) do not join.
        got = apriori_generate([(1, 2), (2, 3), (1, 3)])
        assert (1, 2, 3) in got
        # (3,1,2)-style rotations need (3,1) which is absent.
        assert all(c[0] != 3 for c in got)

    def test_prune_removes_missing_subsequence(self):
        # The join of (1,2) with (2,1) yields (1,2,1), whose delete-one
        # subsequence (1,1) is not large → pruned. Likewise (2,1,2) needs
        # (2,2). With both missing, nothing survives.
        assert apriori_generate([(1, 2), (2, 1)]) == []
        # Adding (1,1) rescues (1,2,1) (and creates (1,1,?) joins that
        # themselves survive only with (1,1) prefixes/suffixes available).
        got = apriori_generate([(1, 2), (2, 1), (1, 1)])
        assert (1, 2, 1) in got

    def test_empty(self):
        assert apriori_generate([]) == []

    def test_mixed_lengths_rejected(self):
        with pytest.raises(ValueError):
            apriori_generate([(1,), (1, 2)])

    def test_explicit_prune_universe(self):
        prev = [(1, 2), (2, 3)]
        # Without (1,3) in the universe, (1,2,3) must be pruned.
        assert apriori_generate(prev, prune_universe=prev) == []
        universe = prev + [(1, 3)]
        assert apriori_generate(prev, prune_universe=universe) == [(1, 2, 3)]


class TestPruneLogic:
    def test_delete_one_subsequences(self):
        assert list(delete_one_subsequences((1, 2, 3))) == [
            (2, 3),
            (1, 3),
            (1, 2),
        ]

    def test_has_all_subsequences(self):
        universe = {(1, 2), (1, 3), (2, 3)}
        assert has_all_subsequences((1, 2, 3), universe)
        assert not has_all_subsequences((1, 2, 4), universe)

    def test_repeated_symbol_candidate(self):
        # (1,2,1) has subsequences (2,1), (1,1), (1,2).
        assert has_all_subsequences((1, 2, 1), {(2, 1), (1, 1), (1, 2)})
        assert not has_all_subsequences((1, 2, 1), {(2, 1), (1, 2)})


def reference_generate(prev, universe):
    """Join + full delete-one prune, with no join-parent skip — the
    specification apriori_generate's optimized prune must match."""
    prev = sorted(set(prev))
    out = []
    for seq in prev:
        for extender in prev:
            if seq[1:] == extender[:-1]:
                candidate = seq + (extender[-1],)
                if has_all_subsequences(candidate, set(universe)):
                    out.append(candidate)
    return sorted(set(out))


class TestJoinParentSkip:
    """The prune probe skips the two join parents (they are in the
    universe by construction); output must be identical to the full
    check."""

    @given(
        st.sets(
            st.lists(st.integers(1, 4), min_size=2, max_size=2).map(tuple),
            max_size=12,
        )
    )
    @settings(max_examples=80)
    def test_identical_output_default_universe(self, large_prev):
        prev = sorted(large_prev)
        assert apriori_generate(prev) == reference_generate(prev, prev)

    @given(
        st.sets(
            st.lists(st.integers(1, 4), min_size=2, max_size=2).map(tuple),
            max_size=10,
        ),
        st.sets(
            st.lists(st.integers(1, 4), min_size=2, max_size=2).map(tuple),
            max_size=10,
        ),
    )
    @settings(max_examples=80)
    def test_identical_output_explicit_universe(self, large_prev, extra):
        """Both superset universes (skip engages) and universes missing
        some of ``prev`` (skip must stand down) match the full check."""
        prev = sorted(large_prev)
        for universe in (set(prev) | extra, extra):
            assert apriori_generate(
                prev, prune_universe=universe
            ) == reference_generate(prev, universe)

    def test_universe_missing_a_parent_still_prunes(self):
        # (1,2,3)'s parents are (1,2) and (2,3); with (1,2) absent from
        # the universe the candidate must be pruned — the skip only
        # applies when the parents are provably in the universe.
        prev = [(1, 2), (2, 3), (1, 3)]
        universe = {(2, 3), (1, 3)}
        assert apriori_generate(prev, prune_universe=universe) == []

    def test_skip_join_parents_flag(self):
        # Interior deletions still probed; the two join slices are not.
        assert has_all_subsequences(
            (1, 2, 3), {(1, 3)}, skip_join_parents=True
        )
        assert not has_all_subsequences(
            (1, 2, 3), {(1, 2)}, skip_join_parents=True
        )
        # Length-2 candidates have no interior deletions.
        assert has_all_subsequences((1, 2), set(), skip_join_parents=True)


class TestWithParents:
    def test_parents_are_the_join_slices(self):
        large = [(1, 2, 3), (1, 2, 4), (1, 3, 4), (1, 3, 5), (2, 3, 4)]
        candidates, parents = apriori_generate(large, with_parents=True)
        assert candidates == [(1, 2, 3, 4)]
        assert parents == {(1, 2, 3, 4): ((1, 2, 3), (2, 3, 4))}
        assert parents[(1, 2, 3, 4)] == join_parents((1, 2, 3, 4))

    @given(
        st.sets(
            st.lists(st.integers(1, 3), min_size=2, max_size=2).map(tuple),
            max_size=9,
        )
    )
    @settings(max_examples=60)
    def test_every_candidate_reported_with_its_slices(self, large_prev):
        candidates, parents = apriori_generate(
            sorted(large_prev), with_parents=True
        )
        assert apriori_generate(sorted(large_prev)) == candidates
        assert set(parents) == set(candidates)
        for candidate, (prefix, suffix) in parents.items():
            assert (prefix, suffix) == (candidate[:-1], candidate[1:])
            assert prefix in large_prev and suffix in large_prev

    def test_empty(self):
        assert apriori_generate([], with_parents=True) == ([], {})


class TestCompleteness:
    @given(
        st.sets(
            st.lists(st.integers(1, 4), min_size=2, max_size=2).map(tuple),
            max_size=12,
        )
    )
    @settings(max_examples=80)
    def test_generates_exactly_downward_closed_extensions(self, large_prev):
        """C_k must equal {k-sequences whose every (k−1)-subsequence is in
        L_{k-1}} when pruning against L_{k-1} itself."""
        large_prev = sorted(large_prev)
        got = set(apriori_generate(large_prev))
        alphabet = sorted({x for seq in large_prev for x in seq})
        expected = set()
        for combo in product(alphabet, repeat=3):
            if has_all_subsequences(combo, set(large_prev)):
                expected.add(combo)
        assert got == expected

    @given(
        st.sets(
            st.lists(st.integers(1, 3), min_size=3, max_size=3).map(tuple),
            max_size=10,
        )
    )
    @settings(max_examples=60)
    def test_sorted_and_unique(self, large_prev):
        got = apriori_generate(sorted(large_prev))
        assert got == sorted(set(got))
