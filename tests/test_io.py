"""Tests for the I/O layer: SPMF, CSV, pattern files."""

import io

import pytest
from hypothesis import given, settings

from repro.miner import Pattern
from repro.core.sequence import Sequence
from repro.db.database import SequenceDatabase
from repro.db.records import Transaction
from repro.io.csvio import (
    CsvFormatError,
    database_to_transactions,
    read_database_csv,
    read_transactions_csv,
    write_transactions_csv,
)
from repro.io.patterns import (
    FORMAT_VERSION,
    PatternFormatError,
    TruncatedPatternsError,
    format_pattern_line,
    parse_pattern_line,
    patterns_from_json,
    patterns_to_json,
    read_patterns,
    write_patterns,
)
from repro.io.spmf import (
    SpmfFormatError,
    format_spmf_line,
    iter_spmf_lines,
    read_spmf,
    write_spmf,
)
from tests import strategies as my
from tests.test_database import paper_db


class TestSpmf:
    def test_format_line(self):
        assert format_spmf_line(((1, 2), (3,))) == "1 2 -1 3 -1 -2"

    def test_read_simple(self):
        db = read_spmf(io.StringIO("1 2 -1 3 -1 -2\n3 -1 -2\n"))
        assert db.num_customers == 2
        assert db.customers[0].events == ((1, 2), (3,))
        assert db.customers[1].events == ((3,),)

    def test_read_skips_blank_and_comment_lines(self):
        text = "# comment\n\n%meta\n@converted\n1 -1 -2\n"
        db = read_spmf(io.StringIO(text))
        assert db.num_customers == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "1 2 -2",          # itemset not closed by -1
            "1 -1",            # missing -2
            "-1 -2",           # empty itemset
            "1 -1 -2 5",       # tokens after -2
            "1 x -1 -2",       # non-integer
            "-3 -1 -2",        # invalid negative
        ],
    )
    def test_read_rejects_malformed(self, bad):
        with pytest.raises(SpmfFormatError):
            read_spmf(io.StringIO(bad + "\n"))

    def test_error_reports_physical_line_number(self):
        # Comment and blank lines are skipped but still advance the line
        # counter, so the reported number matches the source file.
        text = "# comment\n\n%meta\n1 -1 -2\n\n1 2 -2\n"
        with pytest.raises(SpmfFormatError, match=r"line 6: itemset not closed"):
            read_spmf(io.StringIO(text))

    def test_trailing_line_without_terminator_reports_last_line(self):
        text = "1 -1 -2\n# tail comment\n2 -1\n"
        with pytest.raises(SpmfFormatError, match=r"line 3: missing -2"):
            read_spmf(io.StringIO(text))

    def test_trailing_line_without_newline_reports_last_line(self):
        with pytest.raises(SpmfFormatError, match=r"line 2: missing -2"):
            read_spmf(io.StringIO("1 -1 -2\n2 -1"))

    def test_error_from_path_names_the_file(self, tmp_path):
        path = tmp_path / "bad.spmf"
        path.write_text("# header\n1 -1 -2\nx -1 -2\n", encoding="utf-8")
        with pytest.raises(SpmfFormatError, match=r"bad\.spmf: line 3: non-integer"):
            read_spmf(path)

    def test_write_read_file_roundtrip(self, tmp_path):
        db = paper_db()
        path = tmp_path / "paper.spmf"
        assert write_spmf(db, path) == 5
        again = read_spmf(path)
        assert [c.events for c in again] == [c.events for c in db]

    def test_iter_lines_matches_write(self):
        db = paper_db()
        buffer = io.StringIO()
        write_spmf(db, buffer)
        assert buffer.getvalue() == "".join(
            line + "\n" for line in iter_spmf_lines(db)
        )

    @given(my.databases(max_item=50))
    @settings(max_examples=40)
    def test_roundtrip_property(self, db):
        buffer = io.StringIO()
        write_spmf(db, buffer)
        buffer.seek(0)
        again = read_spmf(buffer)
        assert [c.events for c in again] == [c.events for c in db]


class TestCsv:
    def test_roundtrip(self, tmp_path):
        rows = [
            Transaction(1, 1, (30,)),
            Transaction(1, 2, (90,)),
            Transaction(2, 1, (10, 20)),
        ]
        path = tmp_path / "txns.csv"
        assert write_transactions_csv(rows, path) == 3
        again = read_transactions_csv(path)
        assert again == rows

    def test_read_database_csv(self):
        text = (
            "customer_id,transaction_time,items\n"
            "1,2,90\n"
            "1,1,30\n"
        )
        db = read_database_csv(io.StringIO(text))
        assert db.customers[0].events == ((30,), (90,))

    def test_blank_rows_skipped(self):
        text = "customer_id,transaction_time,items\n\n1,1,5\n"
        assert len(read_transactions_csv(io.StringIO(text))) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "",                                        # no header
            "customer,when,what\n1,1,5\n",             # wrong header
            "customer_id,transaction_time,items\n1,1\n",   # short row
            "customer_id,transaction_time,items\nx,1,5\n",  # bad int
            "customer_id,transaction_time,items\n1,1,\n",   # empty items
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(CsvFormatError):
            read_transactions_csv(io.StringIO(bad))

    def test_database_to_transactions_roundtrip(self):
        db = paper_db()
        rebuilt = SequenceDatabase.from_transactions(database_to_transactions(db))
        assert rebuilt == db


class TestPatternFiles:
    PATTERN = Pattern(sequence=Sequence([[30], [40, 70]]), count=2, support=0.4)

    def test_format_line(self):
        line = format_pattern_line(self.PATTERN)
        assert line == "<(30)(40 70)> #SUP: 2 #FREQ: 0.400000"

    def test_parse_line(self):
        parsed = parse_pattern_line("<(30)(40 70)> #SUP: 2 #FREQ: 0.400000")
        assert parsed == self.PATTERN

    def test_parse_line_without_freq(self):
        parsed = parse_pattern_line("<(1)> #SUP: 7")
        assert parsed.count == 7
        assert parsed.support == 0.0

    @pytest.mark.parametrize(
        "bad", ["<(1)>", "<(1)> #SUP: x", "junk #SUP: 1", "<(1)> #SUP: 1 #FREQ: ?"]
    )
    def test_parse_rejects(self, bad):
        with pytest.raises((PatternFormatError, Exception)):
            parse_pattern_line(bad)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "patterns.txt"
        patterns = [
            self.PATTERN,
            Pattern(sequence=Sequence([[90]]), count=3, support=0.6),
        ]
        assert write_patterns(patterns, path) == 2
        assert read_patterns(path) == patterns

    def test_read_skips_comments(self):
        text = "# header\n<(1)> #SUP: 2 #FREQ: 0.5\n"
        assert len(read_patterns(io.StringIO(text))) == 1

    def test_json_roundtrip(self):
        patterns = [self.PATTERN]
        assert patterns_from_json(patterns_to_json(patterns)) == patterns

    @pytest.mark.parametrize("bad", ["{", "{}", '[{"events": []}]'])
    def test_json_rejects(self, bad):
        with pytest.raises(PatternFormatError):
            patterns_from_json(bad)


class TestVersionedPatternFormat:
    """The truncation-evident header/footer protocol (PR 10)."""

    PATTERNS = [
        Pattern(sequence=Sequence([[30], [40, 70]]), count=2, support=0.4),
        Pattern(sequence=Sequence([[30], [90]]), count=2, support=0.4),
        Pattern(sequence=Sequence([[90]]), count=3, support=0.6),
    ]

    def write(self, tmp_path):
        path = tmp_path / "patterns.txt"
        write_patterns(self.PATTERNS, path)
        return path

    def test_written_file_is_versioned(self, tmp_path):
        lines = self.write(tmp_path).read_text().splitlines()
        assert lines[0] == f"#! seqmine-patterns v{FORMAT_VERSION}"
        assert lines[-1] == f"#! end {len(self.PATTERNS)}"

    def test_roundtrip_strict(self, tmp_path):
        path = self.write(tmp_path)
        assert read_patterns(path, strict=True) == self.PATTERNS

    def test_empty_set_roundtrips(self, tmp_path):
        path = tmp_path / "empty.txt"
        assert write_patterns([], path) == 0
        assert read_patterns(path, strict=True) == []

    def test_legacy_headerless_still_reads_leniently(self):
        text = "<(1)> #SUP: 2 #FREQ: 0.5\n"
        assert len(read_patterns(io.StringIO(text))) == 1
        with pytest.raises(PatternFormatError, match="header"):
            read_patterns(io.StringIO(text), strict=True)

    def test_unknown_version_rejected(self):
        text = "#! seqmine-patterns v99\n#! end 0\n"
        with pytest.raises(PatternFormatError, match="unsupported"):
            read_patterns(io.StringIO(text))

    def test_unknown_directive_rejected(self):
        text = (
            "#! seqmine-patterns v1\n"
            "#! frobnicate\n"
            "#! end 0\n"
        )
        with pytest.raises(PatternFormatError, match="unexpected directive"):
            read_patterns(io.StringIO(text))

    def test_footer_count_mismatch_is_truncation(self):
        text = (
            "#! seqmine-patterns v1\n"
            "<(1)> #SUP: 2 #FREQ: 0.5\n"
            "#! end 2\n"
        )
        with pytest.raises(TruncatedPatternsError):
            read_patterns(io.StringIO(text))

    def test_pattern_line_after_footer_rejected(self):
        text = (
            "#! seqmine-patterns v1\n"
            "#! end 0\n"
            "<(1)> #SUP: 2 #FREQ: 0.5\n"
        )
        with pytest.raises(PatternFormatError, match="after"):
            read_patterns(io.StringIO(text))

    def test_every_byte_truncation_is_rejected_in_strict_mode(self, tmp_path):
        """No proper prefix of a versioned file passes a strict read.

        This is exactly the artifact an interrupted ``atomic_writer``
        leaves behind as its ``*.tmp`` orphan: the head of the file
        without the tail. Whatever byte the crash landed on, the loader
        must refuse to serve the prefix as a smaller pattern set.
        """
        data = self.write(tmp_path).read_bytes()
        torn = tmp_path / "torn.txt"
        # Up to len-1: dropping only the final newline leaves the footer
        # (and therefore the content) complete, which legitimately reads.
        for cut in range(len(data) - 1):
            torn.write_bytes(data[:cut])
            with pytest.raises(PatternFormatError):
                read_patterns(torn, strict=True)

    def test_binary_garbage_rejected(self, tmp_path):
        path = tmp_path / "garbage.bin"
        path.write_bytes(b"\x00\xff\xfe garbage \x80\x81")
        with pytest.raises(PatternFormatError):
            read_patterns(path, strict=True)

    def test_crash_during_rewrite_never_tears_published_file(self, tmp_path):
        """Sweep a simulated crash across every traced I/O op of a
        pattern-file rewrite: the published path always holds either the
        complete old or the complete new pattern set, and any ``*.tmp``
        orphan never strict-parses as a smaller valid set."""
        from repro.testing.faults import (
            FaultInjector,
            SimulatedCrash,
            count_io_ops,
            inject_faults,
        )

        path = tmp_path / "patterns.txt"
        old = self.PATTERNS[:1]
        new = self.PATTERNS
        write_patterns(old, path)
        with count_io_ops(match="patterns.txt") as counter:
            write_patterns(new, path)
        total_ops = counter.ops_seen
        assert total_ops > 0
        for fail_at in range(total_ops):
            write_patterns(old, path)  # reset to the old generation
            injector = FaultInjector(fail_at, kind="kill", match="patterns.txt")
            with inject_faults(injector):
                try:
                    write_patterns(new, path)
                except SimulatedCrash:
                    pass
            assert injector.fired
            published = read_patterns(path, strict=True)
            assert published in (old, new)
            for orphan in tmp_path.glob("*.tmp*"):
                content = orphan.read_bytes()
                orphan.unlink()
                if not content:
                    continue
                restored = tmp_path / "orphan-copy.txt"
                restored.write_bytes(content)
                try:
                    recovered = read_patterns(restored, strict=True)
                except PatternFormatError:
                    continue  # torn orphan correctly rejected
                assert recovered == new  # complete orphan is fine
