"""End-to-end differential test: every mining algorithm feeds serving.

Mines the same generated dataset with each ``--algorithm`` through the
real CLI, builds a :class:`PatternIndex` from each mined file, and
asserts the serving answers — match and predict payloads — are
identical across algorithms for a battery of queries. This pins the
whole chain generate → mine → patterns file → index → response to one
ground truth regardless of which miner produced the snapshot.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.miner import ALL_ALGORITHM_NAMES
from repro.serving.index import (
    PatternIndex,
    pattern_payload,
    prediction_payload,
)

@pytest.fixture(scope="module")
def indexes(tmp_path_factory):
    root = tmp_path_factory.mktemp("differential")
    data = root / "data.spmf"
    assert main([
        "generate", "--dataset", "C10-T2.5-S4-I1.25",
        "--customers", "40", "--seed", "11", "--output", str(data),
    ]) == 0
    built: dict[str, PatternIndex] = {}
    for algorithm in ALL_ALGORITHM_NAMES:
        mined = root / f"patterns-{algorithm}.txt"
        assert main([
            "mine", "--input", str(data), "--minsup", "0.05",
            "--algorithm", algorithm, "--output", str(mined),
        ]) == 0
        built[algorithm] = PatternIndex.from_file(mined)
    return built


@pytest.fixture(scope="module")
def query_battery(indexes):
    """Queries derived from the mined patterns themselves (guaranteed
    hits) plus empty and never-matching histories, so the differential
    exercises both populated and empty responses."""
    reference = next(iter(indexes.values()))
    mined = sorted(reference.patterns(), key=lambda p: p.sequence.sort_key())
    battery: list[tuple[tuple[int, ...], ...]] = [(), ((1, 2),)]
    for pattern in mined[:: max(1, len(mined) // 8)]:
        events = pattern.sequence.events
        battery.append(events)            # full container: must match
        battery.append(events[:1])        # prefix: predict fodder
    # Prefer at least one multi-event pattern for strictly-later checks.
    multi = [p for p in mined if len(p.sequence.events) >= 2]
    assert multi, "dataset/minsup produced no multi-event patterns"
    battery.append(multi[0].sequence.events)
    return battery


class TestAlgorithmDifferential:
    def test_battery_is_nontrivial(self, indexes, query_battery):
        reference = next(iter(indexes.values()))
        assert reference.num_patterns > 0
        # At least one query in the battery must actually match, or the
        # differential below would vacuously compare empty lists.
        assert any(reference.match(query) for query in query_battery)
        assert any(
            reference.predict_next(query, 3) for query in query_battery
        )

    def test_all_algorithms_serve_identical_matches(self, indexes, query_battery):
        names = list(indexes)
        reference = indexes[names[0]]
        for query in query_battery:
            expected = [pattern_payload(p) for p in reference.match(query)]
            for name in names[1:]:
                got = [pattern_payload(p) for p in indexes[name].match(query)]
                assert got == expected, (
                    f"algorithm {name!r} diverges from {names[0]!r} "
                    f"on match({query})"
                )

    def test_all_algorithms_serve_identical_predictions(
        self, indexes, query_battery
    ):
        names = list(indexes)
        reference = indexes[names[0]]
        for query in query_battery:
            for k in (1, 3, 10):
                expected = [
                    prediction_payload(p)
                    for p in reference.predict_next(query, k)
                ]
                for name in names[1:]:
                    got = [
                        prediction_payload(p)
                        for p in indexes[name].predict_next(query, k)
                    ]
                    assert got == expected, (
                        f"algorithm {name!r} diverges from {names[0]!r} "
                        f"on predict({query}, k={k})"
                    )

    def test_index_shapes_agree(self, indexes):
        shapes = {
            name: (index.num_patterns, index.num_nodes, index.max_pattern_length)
            for name, index in indexes.items()
        }
        assert len(set(shapes.values())) == 1, shapes
