"""Edge cases and degenerate inputs across the pipeline.

Each test here exercises a path no other test reaches: single-item
universes, all-identical customers, threshold boundaries, zero-correlation
and zero-variance generator settings, combined time constraints, and the
public API's behavior at the extremes.
"""

import numpy as np
import pytest

from repro import (
    MiningParams,
    SequenceDatabase,
    SyntheticParams,
    Transaction,
    generate_database,
    mine,
    mine_sequential_patterns,
)
from repro.baselines.prefixspan import prefixspan_mine
from repro.core.apriorisome import NextLengthPolicy
from repro.core.counting import COUNTING_STRATEGIES
from repro.core.phase import CountingOptions
from repro.datagen.tables import generate_pattern_tables
from repro.db.partitioned import PartitionedDatabase
from repro.db.records import Transaction as Txn
from repro.extensions.timeconstraints import (
    TimeConstraints,
    mine_time_constrained,
)


class TestDegenerateDatabases:
    def test_single_item_universe(self):
        db = SequenceDatabase.from_sequences([[(1,)] * 4] * 3)
        result = mine_sequential_patterns(db, 1.0)
        assert [str(p.sequence) for p in result.patterns] == ["<(1)(1)(1)(1)>"]

    def test_one_customer_one_transaction(self):
        db = SequenceDatabase.from_sequences([[(5, 7)]])
        result = mine_sequential_patterns(db, 1.0)
        assert [str(p.sequence) for p in result.patterns] == ["<(5 7)>"]

    def test_threshold_exactly_all_customers(self):
        db = SequenceDatabase.from_sequences([[(1,)], [(1,)], [(1,), (2,)]])
        result = mine_sequential_patterns(db, 1.0)
        assert [str(p.sequence) for p in result.patterns] == ["<(1)>"]

    def test_threshold_just_below_two_customers(self):
        # 0.5 of 3 customers → threshold 2.
        db = SequenceDatabase.from_sequences([[(1,)], [(1,)], [(2,)]])
        result = mine_sequential_patterns(db, 0.5)
        assert [str(p.sequence) for p in result.patterns] == ["<(1)>"]

    def test_long_single_customer_chain(self):
        # Every subsequence of the chain is frequent at threshold 1, so the
        # large-sequence count is 2^n; n=10 keeps that tractable while
        # still exercising ten counting passes.
        events = [(i,) for i in range(1, 11)]
        db = SequenceDatabase.from_sequences([events])
        result = mine_sequential_patterns(db, 1.0)
        assert result.patterns[0].sequence.length == 10
        assert result.num_patterns == 1

    def test_all_customers_identical_multi_item_events(self):
        db = SequenceDatabase.from_sequences([[(1, 2, 3), (1, 2, 3)]] * 2)
        result = mine_sequential_patterns(db, 1.0)
        assert [str(p.sequence) for p in result.patterns] == [
            "<(1 2 3)(1 2 3)>"
        ]

    @pytest.mark.parametrize("algorithm", ["apriorisome", "dynamicsome"])
    def test_some_variants_on_single_event_customers(self, algorithm):
        db = SequenceDatabase.from_sequences([[(1,)], [(1,)]])
        result = mine_sequential_patterns(db, 1.0, algorithm=algorithm)
        assert [str(p.sequence) for p in result.patterns] == ["<(1)>"]


@pytest.mark.parametrize("strategy", COUNTING_STRATEGIES)
@pytest.mark.parametrize("partitioned", [False, True], ids=["memory", "disk"])
class TestDegenerateSweepAllBackends:
    """The degenerate-input sweep, across every counting strategy and
    both storage paths (in-memory and disk-partitioned). Each case is a
    boundary some backend could plausibly get wrong on its own: an empty
    scan, a single customer, the all-customers threshold, the
    one-customer threshold, and an all-identical database where every
    candidate has full support."""

    def _db(self, sequences, tmp_path, partitioned):
        db = SequenceDatabase.from_sequences(sequences)
        if partitioned:
            return PartitionedDatabase.from_database(
                db, tmp_path / "parts", partitions=2
            )
        return db

    def _mine(self, db, minsup, strategy):
        result = mine(
            db,
            MiningParams(
                minsup=minsup, counting=CountingOptions(strategy=strategy)
            ),
        )
        return [str(p.sequence) for p in result.patterns]

    def test_empty_database(self, tmp_path, strategy, partitioned):
        db = self._db([], tmp_path, partitioned)
        assert self._mine(db, 1.0, strategy) == []
        assert self._mine(db, 0.5, strategy) == []

    def test_single_customer_database(self, tmp_path, strategy, partitioned):
        db = self._db([[(2, 4), (1,)]], tmp_path, partitioned)
        assert self._mine(db, 1.0, strategy) == ["<(2 4)(1)>"]

    def test_minsup_all_customers(self, tmp_path, strategy, partitioned):
        # Threshold = every customer: only the common prefix survives.
        db = self._db(
            [[(1,), (2,)], [(1,), (2,), (3,)], [(1,), (2,)]],
            tmp_path,
            partitioned,
        )
        assert self._mine(db, 1.0, strategy) == ["<(1)(2)>"]

    def test_minsup_of_one_customer(self, tmp_path, strategy, partitioned):
        # 0.25 of 4 customers → threshold exactly 1: every contained
        # sequence is large, so each customer's full history is maximal.
        db = self._db(
            [[(1,), (2,)], [(3,)], [(4,)], [(5,)]], tmp_path, partitioned
        )
        assert self._mine(db, 0.25, strategy) == [
            "<(3)>",
            "<(4)>",
            "<(5)>",
            "<(1)(2)>",
        ]

    def test_all_identical_customers(self, tmp_path, strategy, partitioned):
        db = self._db([[(1, 2), (3,)]] * 4, tmp_path, partitioned)
        assert self._mine(db, 1.0, strategy) == ["<(1 2)(3)>"]
        assert self._mine(db, 0.25, strategy) == ["<(1 2)(3)>"]


class TestMinerParamInteractions:
    def test_max_pattern_length_one(self):
        db = SequenceDatabase.from_sequences([[(1,), (2,)]] * 2)
        result = mine_sequential_patterns(db, 1.0, max_pattern_length=1)
        assert {str(p.sequence) for p in result.patterns} == {"<(1)>", "<(2)>"}

    def test_max_litemset_size_one_forbids_multi_item_events(self):
        db = SequenceDatabase.from_sequences([[(1, 2)]] * 3)
        result = mine_sequential_patterns(db, 1.0, max_litemset_size=1)
        assert {str(p.sequence) for p in result.patterns} == {"<(1)>", "<(2)>"}

    def test_dynamic_step_larger_than_any_pattern(self):
        db = SequenceDatabase.from_sequences([[(1,), (2,)]] * 2)
        result = mine_sequential_patterns(
            db, 1.0, algorithm="dynamicsome", dynamic_step=10
        )
        assert [str(p.sequence) for p in result.patterns] == ["<(1)(2)>"]

    def test_next_policy_single_breakpoint(self):
        db = SequenceDatabase.from_sequences([[(1,), (2,), (3,)]] * 2)
        policy = NextLengthPolicy(breakpoints=((0.9, 3),), max_skip=3)
        result = mine(
            db,
            MiningParams(minsup=1.0, algorithm="apriorisome", next_policy=policy),
        )
        assert [str(p.sequence) for p in result.patterns] == ["<(1)(2)(3)>"]

    def test_sort_seconds_recorded(self):
        db = SequenceDatabase.from_sequences([[(1,)]])
        result = mine(db, MiningParams(minsup=1.0), sort_seconds=1.5)
        assert result.timings.sort_seconds == 1.5


class TestGeneratorDegenerateKnobs:
    BASE = SyntheticParams(
        num_customers=20,
        avg_transactions_per_customer=3.0,
        avg_items_per_transaction=2.0,
        avg_pattern_sequence_length=2.0,
        avg_pattern_itemset_size=1.0,
        num_pattern_sequences=5,
        num_pattern_itemsets=10,
        num_items=30,
    )

    def test_zero_correlation(self):
        db = generate_database(self.BASE.with_(correlation_level=0.0), seed=1)
        assert db.num_customers == 20

    def test_zero_corruption_variance(self):
        params = self.BASE.with_(corruption_sd=0.0, corruption_mean=0.0)
        db = generate_database(params, seed=2)
        assert db.num_customers == 20

    def test_full_corruption_still_yields_customers(self):
        # corruption 1.0 drops (almost) everything; the generator must
        # fall back to a random item rather than emit empty customers.
        params = self.BASE.with_(corruption_mean=1.0, corruption_sd=0.0)
        db = generate_database(params, seed=3)
        assert all(c.num_items >= 1 for c in db)

    def test_tiny_item_universe(self):
        params = self.BASE.with_(num_items=2, avg_pattern_itemset_size=1.0)
        db = generate_database(params, seed=4)
        assert db.item_vocabulary() <= {1, 2}

    def test_tables_with_itemset_size_capped_by_universe(self):
        params = self.BASE.with_(num_items=3, avg_pattern_itemset_size=3.0)
        tables = generate_pattern_tables(params, np.random.default_rng(5))
        assert all(len(itemset) <= 3 for itemset in tables.itemsets)


class TestTimeConstraintCombinations:
    LOG = [
        Txn(1, 10, (1,)), Txn(1, 12, (2,)), Txn(1, 20, (3,)),
        Txn(2, 10, (1,)), Txn(2, 12, (2,)), Txn(2, 40, (3,)),
    ]

    def test_window_and_max_gap_together(self):
        # (1 2) via window; (3) within max_gap of the window START.
        got = mine_time_constrained(
            self.LOG, 1.0, TimeConstraints(window_size=2, max_gap=10)
        )
        names = {str(p.sequence) for p in got}
        assert "<(1 2)>" in names
        # Customer 2's (3) at t=40 violates max_gap → only 1 customer has
        # <(1 2)(3)> under the gap, so it is not frequent at 100%.
        assert "<(1 2)(3)>" not in names

    def test_min_gap_with_window(self):
        got = mine_time_constrained(
            self.LOG, 0.5, TimeConstraints(window_size=2, min_gap=7)
        )
        names = {str(p.sequence) for p in got}
        assert "<(1 2)(3)>" in names  # customer 1: window ends 12, 3 at 20

    def test_constraints_only_shrink_with_tightening_max_gap(self):
        loose = {
            str(p.sequence)
            for p in mine_time_constrained(self.LOG, 0.5, TimeConstraints(max_gap=50))
        }
        tight = {
            str(p.sequence)
            for p in mine_time_constrained(self.LOG, 0.5, TimeConstraints(max_gap=5))
        }
        assert tight <= loose


class TestCrossFamilyOnRealisticData:
    def test_generated_data_three_way_agreement(self):
        """Full pipeline × PrefixSpan on actual generator output."""
        params = SyntheticParams(
            num_customers=80,
            num_pattern_sequences=10,
            num_pattern_itemsets=40,
            num_items=60,
            avg_transactions_per_customer=4.0,
            avg_items_per_transaction=2.0,
            avg_pattern_sequence_length=2.5,
            avg_pattern_itemset_size=1.2,
        )
        db = generate_database(params, seed=77)
        answers = []
        for algorithm in ("aprioriall", "apriorisome", "dynamicsome"):
            result = mine_sequential_patterns(db, 0.1, algorithm=algorithm)
            answers.append([(p.sequence, p.count) for p in result.patterns])
        ps = prefixspan_mine(db, 0.1, maximal=True)
        answers.append([(p.sequence, p.count) for p in ps])
        assert all(a == answers[0] for a in answers[1:])
        assert answers[0], "expected at least one pattern in generated data"


class TestTransactionTimeSemantics:
    def test_negative_times_sort_correctly(self):
        db = SequenceDatabase.from_transactions(
            [Transaction(1, -5, (2,)), Transaction(1, -10, (1,))]
        )
        assert db.customers[0].events == ((1,), (2,))

    def test_widely_spaced_times_irrelevant_to_core(self):
        a = SequenceDatabase.from_transactions(
            [Transaction(1, 1, (1,)), Transaction(1, 2, (2,))]
        )
        b = SequenceDatabase.from_transactions(
            [Transaction(1, 1, (1,)), Transaction(1, 1_000_000, (2,))]
        )
        pa = mine_sequential_patterns(a, 1.0).sequences()
        pb = mine_sequential_patterns(b, 1.0).sequences()
        assert pa == pb
