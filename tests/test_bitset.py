"""Unit and property tests for the bitset-compiled database layer.

Covers the bitmask primitives against their reference implementations
(``first_after`` via bit-ops must equal the occurrence-index probe on
empty and edge masks, and on >64-event sequences crossing machine-word
boundaries), the compiled database container (slicing, pickling), and the
once-per-mining-run compilation contract via the module compile counters.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitset
from repro.core.bitset import CompiledDatabase, CompiledSequence, ensure_compiled
from repro.core.counting import count_candidates, count_length2
from repro.miner import MiningParams, mine
from repro.core.phase import CountingOptions
from repro.core.sequence import (
    OccurrenceIndex,
    earliest_end_index,
    id_sequence_contains,
    latest_start_index,
)
from repro.db.database import SequenceDatabase
from tests import strategies as my


def events(*ids_per_event):
    return tuple(frozenset(ids) for ids in ids_per_event)


class TestFirstAfter:
    def test_unknown_id_is_none(self):
        cs = CompiledSequence.from_events(events({1}, {2}))
        assert cs.first_after(99, -1) is None

    def test_empty_sequence(self):
        cs = CompiledSequence.from_events(())
        assert cs.num_events == 0
        assert cs.first_after(1, -1) is None
        assert cs.contains((1,)) is False

    def test_from_start(self):
        cs = CompiledSequence.from_events(events({1}, {2}, {1}))
        assert cs.first_after(1, -1) == 0
        assert cs.first_after(2, -1) == 1

    def test_strictly_after(self):
        cs = CompiledSequence.from_events(events({1}, {2}, {1}))
        assert cs.first_after(1, 0) == 2
        assert cs.first_after(1, 2) is None  # after the last occurrence
        assert cs.first_after(2, 1) is None

    def test_beyond_end(self):
        cs = CompiledSequence.from_events(events({1}))
        assert cs.first_after(1, 5) is None

    def test_matches_occurrence_index_past_word_boundary(self):
        # 70 events: occurrences straddle the 64-bit machine-word boundary,
        # which arbitrary-precision masks must not care about.
        seq = events(*[{1} if i % 7 == 0 else {2} for i in range(70)])
        cs = CompiledSequence.from_events(seq)
        index = OccurrenceIndex(seq)
        for after in range(-1, 70):
            assert cs.first_after(1, after) == index.first_after(1, after)
            assert cs.first_after(2, after) == index.first_after(2, after)

    @given(my.id_event_sequences(), st.integers(1, 8), st.integers(-1, 7))
    @settings(max_examples=120)
    def test_property_matches_occurrence_index(self, seq, litemset_id, after):
        cs = CompiledSequence.from_events(seq)
        index = OccurrenceIndex(seq)
        assert cs.first_after(litemset_id, after) == index.first_after(
            litemset_id, after
        )


class TestWholePatternPrimitives:
    @given(my.id_event_sequences(), my.id_sequences())
    @settings(max_examples=150)
    def test_contains_matches_greedy_reference(self, seq, pattern):
        cs = CompiledSequence.from_events(seq)
        assert cs.contains(pattern) == id_sequence_contains(pattern, seq)

    @given(my.id_event_sequences(), my.id_sequences())
    @settings(max_examples=150)
    def test_earliest_end_matches_reference(self, seq, pattern):
        cs = CompiledSequence.from_events(seq)
        assert cs.earliest_end_index(pattern) == earliest_end_index(pattern, seq)

    @given(my.id_event_sequences(), my.id_sequences())
    @settings(max_examples=150)
    def test_latest_start_matches_reference(self, seq, pattern):
        cs = CompiledSequence.from_events(seq)
        assert cs.latest_start_index(pattern) == latest_start_index(pattern, seq)

    def test_long_pattern_across_word_boundary(self):
        seq = events(*[{i % 5} for i in range(130)])
        cs = CompiledSequence.from_events(seq)
        pattern = (0, 1, 2, 3, 4) * 5
        assert cs.contains(pattern)
        assert cs.earliest_end_index(pattern) == earliest_end_index(pattern, seq)
        assert cs.latest_start_index(pattern) == latest_start_index(pattern, seq)

    @given(my.id_event_sequences())
    @settings(max_examples=100)
    def test_occurring_pairs_match_sweep(self, seq):
        cs = CompiledSequence.from_events(seq)
        assert set(cs.occurring_pairs()) == set(count_length2([seq]))

    def test_ids(self):
        cs = CompiledSequence.from_events(events({1, 3}, {2}))
        assert set(cs.ids()) == {1, 2, 3}


class TestCompiledDatabase:
    SEQS = [
        events({1}, {2}, {1}),
        events({2, 3}, {1}),
        events({3}, {3}, {2}),
    ]

    def test_len_iter_index(self):
        db = CompiledDatabase.compile(self.SEQS)
        assert len(db) == 3
        assert all(isinstance(c, CompiledSequence) for c in db)
        assert db[1].contains((2, 1))

    def test_slice_is_compiled_shard(self):
        db = CompiledDatabase.compile(self.SEQS)
        shard = db[1:3]
        assert isinstance(shard, CompiledDatabase)
        assert len(shard) == 2
        assert shard[0] is db[1]  # no recompilation, same objects

    def test_ensure_compiled_passthrough(self):
        db = CompiledDatabase.compile(self.SEQS)
        before = bitset.COMPILE_CALLS
        assert ensure_compiled(db) is db
        assert bitset.COMPILE_CALLS == before

    def test_pickle_roundtrip(self):
        # The spawn start method ships compiled shards through the pool
        # initializer, so the compiled forms must pickle faithfully.
        db = CompiledDatabase.compile(self.SEQS)
        clone = pickle.loads(pickle.dumps(db))
        assert len(clone) == len(db)
        for original, copied in zip(db, clone):
            assert copied.masks == original.masks
            assert copied.num_events == original.num_events

    def test_counting_accepts_compiled_input(self):
        db = CompiledDatabase.compile(self.SEQS)
        candidates = [(1, 2), (2, 1), (3, 2), (9, 9)]
        raw = count_candidates(self.SEQS, candidates)
        for strategy in ("bitset", "naive", "hashtree"):
            assert count_candidates(db, candidates, strategy=strategy) == raw
        assert count_length2(db) == count_length2(self.SEQS)


class TestCompileOncePerRun:
    """The acceptance contract: one compile call per mining run, no
    per-pass index reconstruction on the bitset path."""

    @staticmethod
    def _multi_pass_db():
        # Long shared prefixes force several counting passes (k >= 4).
        return SequenceDatabase.from_sequences([
            [(1,), (2,), (3,), (4,), (5,)],
            [(1,), (2,), (3,), (4,)],
            [(1,), (2,), (3,), (4,), (5,)],
        ])

    def test_one_compile_for_multi_pass_mine(self):
        db = self._multi_pass_db()
        for algorithm in ("aprioriall", "apriorisome", "dynamicsome"):
            before = bitset.COMPILE_CALLS
            result = mine(
                db,
                MiningParams(
                    minsup=0.6,
                    algorithm=algorithm,
                    counting=CountingOptions(strategy="bitset"),
                ),
            )
            assert max(result.large_counts_by_length) >= 4  # really multi-pass
            assert bitset.COMPILE_CALLS - before == 1, algorithm

    def test_one_compile_with_parallel_workers(self):
        # The parent compiles once; shards are slices of the compiled
        # database, so forked/spawned workers never recompile in-parent.
        db = self._multi_pass_db()
        before = bitset.COMPILE_CALLS
        mine(
            db,
            MiningParams(
                minsup=0.6,
                counting=CountingOptions(
                    strategy="bitset", workers=2, chunk_size=1
                ),
            ),
        )
        assert bitset.COMPILE_CALLS - before == 1

    def test_non_bitset_strategies_never_compile(self):
        db = self._multi_pass_db()
        before = bitset.COMPILE_CALLS
        mine(db, MiningParams(minsup=0.6))
        mine(db, MiningParams(minsup=0.6, counting=CountingOptions(strategy="naive")))
        assert bitset.COMPILE_CALLS == before

    def test_timed_empty_element_matches_raw_path(self):
        # An empty pattern element matches every transaction in the raw
        # window sweep; the compiled mask path must agree instead of
        # walking bits past the end of the history.
        from repro.extensions.timeconstraints import (
            CompiledTimedSequence,
            TimeConstraints,
            contains_timed,
            window_matches,
        )

        events = ((1, frozenset({1})), (3, frozenset({2})))
        compiled = CompiledTimedSequence.from_events(events)
        empty = frozenset()
        assert compiled.element_windows(empty, 0) == window_matches(events, empty, 0)
        assert contains_timed(compiled, (empty,), TimeConstraints()) == contains_timed(
            events, (empty,), TimeConstraints()
        )

    def test_timed_mining_compiles_once(self):
        from repro.db.records import Transaction
        from repro.extensions import timeconstraints as tc

        rows = [
            Transaction(customer_id=cid, transaction_time=when, items=items)
            for cid, history in enumerate([
                [(1, (1,)), (2, (2,)), (3, (3,)), (4, (4,))],
                [(1, (1,)), (3, (2,)), (5, (3,)), (7, (4,))],
            ])
            for when, items in history
        ]
        before = tc.TIMED_COMPILE_CALLS
        tc.mine_time_constrained(rows, 0.5, strategy="bitset")
        assert tc.TIMED_COMPILE_CALLS - before == 1
        # Non-bitset strategies never touch the timed compiler.
        tc.mine_time_constrained(rows, 0.5)
        assert tc.TIMED_COMPILE_CALLS - before == 1
