"""Tests for the litemset phase (customer-support Apriori)."""

from itertools import chain, combinations

import pytest
from hypothesis import given, settings

from repro.db.database import SequenceDatabase
from repro.itemsets.apriori import (
    count_itemset_supports,
    find_litemsets,
    generate_candidate_itemsets,
)
from tests import strategies as my
from tests.test_database import paper_db


def brute_force_litemsets(db, minsup):
    """Oracle: enumerate all subsets of all transactions, count customers."""
    threshold = db.threshold(minsup)
    universe = set()
    for customer in db:
        for event in customer.events:
            for size in range(1, len(event) + 1):
                universe.update(combinations(event, size))
    supports = {}
    for itemset in universe:
        needed = set(itemset)
        count = sum(
            1
            for customer in db
            if any(needed.issubset(event) for event in customer.events)
        )
        if count >= threshold:
            supports[itemset] = count
    return supports


class TestCandidateGeneration:
    def test_vldb94_example(self):
        # L3 = {123,124,134,135,234} → join {1234,1345}, prune 1345.
        large = [(1, 2, 3), (1, 2, 4), (1, 3, 4), (1, 3, 5), (2, 3, 4)]
        assert generate_candidate_itemsets(large) == [(1, 2, 3, 4)]

    def test_pairs_from_singletons(self):
        assert generate_candidate_itemsets([(1,), (2,), (3,)]) == [
            (1, 2),
            (1, 3),
            (2, 3),
        ]

    def test_empty_input(self):
        assert generate_candidate_itemsets([]) == []

    def test_mixed_lengths_rejected(self):
        with pytest.raises(ValueError):
            generate_candidate_itemsets([(1,), (1, 2)])

    @given(my.databases())
    @settings(max_examples=50)
    def test_candidates_cover_all_large(self, db):
        """Every large k-itemset appears among candidates from L_{k-1}."""
        supports = brute_force_litemsets(db, minsup=0.3)
        by_len = {}
        for itemset in supports:
            by_len.setdefault(len(itemset), set()).add(itemset)
        for k in sorted(by_len):
            if k == 1:
                continue
            candidates = set(generate_candidate_itemsets(sorted(by_len[k - 1])))
            assert by_len[k] <= candidates


class TestCounting:
    def test_counts_per_customer_not_per_transaction(self):
        db = SequenceDatabase.from_sequences([[(1, 2), (1, 2), (1, 2)]])
        counts = count_itemset_supports(db, [(1, 2)])
        assert counts[(1, 2)] == 1

    def test_counts_across_customers(self):
        db = SequenceDatabase.from_sequences([[(1, 2)], [(1,), (2,)], [(1, 2, 3)]])
        counts = count_itemset_supports(db, [(1, 2)])
        assert counts[(1, 2)] == 2  # customer 2 never has both together

    def test_empty_candidates(self):
        assert count_itemset_supports(paper_db(), []) == {}


class TestFindLitemsets:
    def test_paper_example(self):
        """The paper's Figure: litemsets at 25% are (30),(40),(70),(40 70),(90)."""
        result = find_litemsets(paper_db(), minsup=0.25)
        assert set(result.itemsets()) == {(30,), (40,), (70,), (40, 70), (90,)}
        assert result.supports[(30,)] == 4
        assert result.supports[(40,)] == 2
        assert result.supports[(70,)] == 3
        assert result.supports[(40, 70)] == 2
        assert result.supports[(90,)] == 3

    def test_itemsets_sorted_deterministically(self):
        result = find_litemsets(paper_db(), minsup=0.25)
        ordered = result.itemsets()
        assert ordered == sorted(ordered, key=lambda s: (len(s), s))

    def test_full_support_threshold(self):
        db = SequenceDatabase.from_sequences([[(1, 2)], [(1, 2)], [(1, 3)]])
        result = find_litemsets(db, minsup=1.0)
        assert set(result.itemsets()) == {(1,)}

    def test_max_length_cap(self):
        db = SequenceDatabase.from_sequences([[(1, 2, 3)], [(1, 2, 3)]])
        result = find_litemsets(db, minsup=0.5, max_length=2)
        assert max(len(s) for s in result.itemsets()) == 2

    def test_empty_database(self):
        result = find_litemsets(SequenceDatabase([]), minsup=0.5)
        assert len(result) == 0

    def test_pass_stats_recorded(self):
        result = find_litemsets(paper_db(), minsup=0.25)
        assert result.passes[0].length == 1
        assert result.passes[0].num_large == 5 - 1  # (30),(40),(70),(90)
        assert any(p.length == 2 for p in result.passes)

    @given(my.databases(), my.minsups())
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce(self, db, minsup):
        result = find_litemsets(db, minsup)
        assert dict(result.supports) == brute_force_litemsets(db, minsup)
