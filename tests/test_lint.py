"""The invariant linter: framework, fixture corpus, and the real tree.

Three layers:

* **framework** — import classification, module naming, the rule
  registry, and the ``python -m tools.lint`` CLI surface;
* **fixture corpus** — one minimal violating snippet per rule, asserting
  the rule fires *exactly there* (right rule, right module, right line)
  and stays quiet on the adjacent compliant twin;
* **the real tree** — the meta-test that the repository itself is clean,
  and the counterfactual that restoring the pre-PR-5 eager ``repro.io``
  re-exports makes ``import-cycles`` fail naming the cycle (the
  regression this rule exists to catch).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:  # `tools` lives at the repo root
    sys.path.insert(0, str(REPO_ROOT))

from tools.lint import (  # noqa: E402
    LintContext,
    LintError,
    Violation,
    all_rules,
    get_rule,
    run_rules,
)
from tools.lint.__main__ import main as lint_main  # noqa: E402

EXPECTED_RULES = [
    "all-consistency",
    "annotations-complete",
    "cli-error-policy",
    "core-layering",
    "deterministic-core",
    "durable-writes",
    "import-cycles",
    "serving-layering",
]


def run_rule(name: str, sources: dict[str, str]) -> list[Violation]:
    ctx = LintContext.from_sources(sources)
    return run_rules(ctx, [get_rule(name)])


# --------------------------------------------------------------------- #
# Framework
# --------------------------------------------------------------------- #


class TestFramework:
    def test_registry_is_complete_and_sorted(self):
        assert [rule.name for rule in all_rules()] == EXPECTED_RULES

    def test_unknown_rule_raises(self):
        with pytest.raises(LintError, match="unknown rule 'bogus'"):
            get_rule("bogus")

    def test_import_kind_classification(self):
        ctx = LintContext.from_sources(
            {
                "m": (
                    "from typing import TYPE_CHECKING\n"
                    "import json\n"
                    "if TYPE_CHECKING:\n"
                    "    import os\n"
                    "def f() -> None:\n"
                    "    import csv\n"
                )
            }
        )
        kinds = {imp.target: imp.kind for imp in ctx.imports_of("m")}
        assert kinds == {
            "typing": "eager",
            "json": "eager",
            "os": "type_checking",
            "csv": "lazy",
        }

    def test_relative_import_resolution(self):
        ctx = LintContext.from_sources(
            {
                "pkg.__init__": "",
                "pkg.a": "from . import b\nfrom .b import thing\n",
                "pkg.b": "thing = 1\n",
            }
        )
        targets = set()
        for imp in ctx.imports_of("pkg.a"):
            targets |= ctx.resolve_targets(imp)
        assert targets == {"pkg.b"}

    def test_module_names_strip_src_prefix(self):
        ctx = LintContext.from_root(REPO_ROOT, scan_roots=("src/repro/core",))
        assert "repro.core.counting" in ctx.files
        assert ctx.files["repro.core.counting"].path == (
            "src/repro/core/counting.py"
        )

    def test_unknown_override_path_is_an_error(self):
        with pytest.raises(LintError, match="override paths"):
            LintContext.from_root(
                REPO_ROOT,
                scan_roots=("src/repro/core",),
                overrides={"no/such/file.py": ""},
            )


# --------------------------------------------------------------------- #
# Fixture corpus: one violating snippet per rule, firing exactly there
# --------------------------------------------------------------------- #


class TestImportCyclesRule:
    def test_two_module_cycle_fires(self):
        violations = run_rule(
            "import-cycles",
            {
                "repro.__init__": "",
                "repro.a": "import repro.b\n",
                "repro.b": "import repro.a\n",
            },
        )
        assert len(violations) == 1
        v = violations[0]
        assert v.rule == "import-cycles"
        assert "repro.a -> repro.b -> repro.a" in v.message or (
            "repro.b -> repro.a -> repro.b" in v.message
        )

    def test_lazy_backedge_breaks_the_cycle(self):
        violations = run_rule(
            "import-cycles",
            {
                "repro.__init__": "",
                "repro.a": "import repro.b\n",
                "repro.b": "def f() -> None:\n    import repro.a\n",
            },
        )
        assert violations == []

    def test_package_init_import_creates_ancestor_edge(self):
        # a imports pkg.b; executing that initializes pkg, whose
        # __init__ imports a back — a real interpreter-level cycle even
        # though no module names `a` and `pkg/__init__` name each other
        # symmetrically.
        violations = run_rule(
            "import-cycles",
            {
                "repro.__init__": "",
                "repro.a": "from repro.pkg.b import thing\n",
                "repro.pkg.__init__": "import repro.a\n",
                "repro.pkg.b": "thing = 1\n",
            },
        )
        assert len(violations) == 1
        assert "repro.a" in violations[0].message
        assert "repro.pkg" in violations[0].message


class TestCoreLayeringRule:
    def test_eager_db_import_from_core_fires(self):
        violations = run_rule(
            "core-layering",
            {
                "repro.core.__init__": "",
                "repro.core.thing": "from repro.db.database import X\n",
            },
        )
        assert len(violations) == 1
        v = violations[0]
        assert v.path == "repro/core/thing.py"
        assert v.line == 1
        assert "repro.db.database" in v.message

    def test_lazy_import_also_fires(self):
        violations = run_rule(
            "core-layering",
            {
                "repro.core.__init__": "",
                "repro.core.thing": (
                    "def f() -> None:\n    from repro.io.binlog import Y\n"
                ),
            },
        )
        assert len(violations) == 1
        assert "lazy import" in violations[0].message

    def test_type_checking_import_is_exempt(self):
        violations = run_rule(
            "core-layering",
            {
                "repro.core.__init__": "",
                "repro.core.thing": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from repro.db.database import X\n"
                ),
            },
        )
        assert violations == []


class TestServingLayeringRule:
    def test_db_import_from_serving_fires(self):
        violations = run_rule(
            "serving-layering",
            {
                "repro.serving.__init__": "",
                "repro.serving.index": "from repro.db.database import X\n",
            },
        )
        assert len(violations) == 1
        v = violations[0]
        assert v.path == "repro/serving/index.py"
        assert "repro.db.database" in v.message

    def test_lazy_cli_and_parallel_imports_fire(self):
        violations = run_rule(
            "serving-layering",
            {
                "repro.serving.__init__": "",
                "repro.serving.server": (
                    "def f() -> None:\n    from repro.cli import main\n"
                    "def g() -> None:\n    import repro.parallel.pool\n"
                ),
            },
        )
        assert len(violations) == 2
        assert all("lazy import" in v.message for v in violations)

    def test_io_core_and_miner_imports_are_allowed(self):
        violations = run_rule(
            "serving-layering",
            {
                "repro.serving.__init__": "",
                "repro.serving.index": (
                    "from repro.core.sequence import Sequence\n"
                    "from repro.io.patterns import read_patterns\n"
                    "from repro.miner import Pattern\n"
                ),
            },
        )
        assert violations == []

    def test_type_checking_import_is_exempt(self):
        violations = run_rule(
            "serving-layering",
            {
                "repro.serving.__init__": "",
                "repro.serving.server": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from repro.db.database import X\n"
                ),
            },
        )
        assert violations == []

    def test_real_serving_package_is_clean(self):
        # The rule must hold on the actual tree, not just fixtures.
        from pathlib import Path

        from tools.lint import LintContext

        repo_root = Path(__file__).resolve().parent.parent
        ctx = LintContext.from_root(repo_root, scan_roots=("src/repro",))
        assert run_rules(ctx, [get_rule("serving-layering")]) == []


class TestAllConsistencyRule:
    def test_unsorted_all_fires(self):
        violations = run_rule(
            "all-consistency",
            {"m": '__all__ = ["b", "a"]\na = 1\nb = 2\n'},
        )
        assert len(violations) == 1
        assert "sorted order" in violations[0].message
        assert violations[0].line == 1

    def test_unbound_name_fires(self):
        violations = run_rule(
            "all-consistency",
            {"m": '__all__ = ["a", "ghost"]\na = 1\n'},
        )
        assert len(violations) == 1
        assert "ghost" in violations[0].message

    def test_non_literal_all_fires(self):
        violations = run_rule(
            "all-consistency",
            {"m": "__all__ = [n for n in dir()]\n"},
        )
        assert len(violations) == 1
        assert "literal" in violations[0].message

    def test_pep562_dict_pattern_is_accepted(self):
        source = (
            '_EXPORTS = {"a": "pkg.x", "b": "pkg.y"}\n'
            "__all__ = sorted(_EXPORTS)\n"
            "def __getattr__(name: str) -> object:\n"
            "    raise AttributeError(name)\n"
        )
        assert run_rule("all-consistency", {"m": source}) == []


class TestDeterminismRule:
    def test_module_level_random_call_fires(self):
        violations = run_rule(
            "deterministic-core",
            {
                "repro.core.x": (
                    "import random\n"
                    "def f() -> float:\n"
                    "    return random.random()\n"
                )
            },
        )
        assert len(violations) == 1
        assert violations[0].line == 3
        assert "random.random" in violations[0].message

    def test_unseeded_rng_fires_seeded_does_not(self):
        bad = run_rule(
            "deterministic-core",
            {"repro.itemsets.x": "import random\nrng = random.Random()\n"},
        )
        good = run_rule(
            "deterministic-core",
            {"repro.itemsets.x": "import random\nrng = random.Random(1995)\n"},
        )
        assert len(bad) == 1 and "OS-entropy" in bad[0].message
        assert good == []

    def test_wall_clock_fires_perf_counter_does_not(self):
        bad = run_rule(
            "deterministic-core",
            {
                "repro.incremental.x": (
                    "import time\n"
                    "def f() -> float:\n"
                    "    return time.time()\n"
                )
            },
        )
        good = run_rule(
            "deterministic-core",
            {
                "repro.incremental.x": (
                    "import time\n"
                    "def f() -> float:\n"
                    "    return time.perf_counter()\n"
                )
            },
        )
        assert len(bad) == 1 and "wall-clock" in bad[0].message
        assert good == []

    def test_outside_scope_is_ignored(self):
        violations = run_rule(
            "deterministic-core",
            {"repro.datagen.x": "import random\nr = random.random()\n"},
        )
        assert violations == []


class TestCliPolicyRule:
    def test_sys_exit_and_error_print_and_code_return_fire(self):
        source = (
            "import sys\n"
            "def _cmd_bad(args: object) -> int:\n"
            '    print("error: nope", file=sys.stderr)\n'
            "    sys.exit(3)\n"
            "    return 2\n"
        )
        violations = run_rule("cli-error-policy", {"repro.cli": source})
        messages = "\n".join(v.message for v in violations)
        assert len(violations) == 3
        assert "sys.exit" in messages
        assert "_fail" in messages
        assert "_cmd_bad returns constant exit code 2" in messages

    def test_fail_helper_itself_is_allowed(self):
        source = (
            "import sys\n"
            "def _fail(message: str) -> int:\n"
            '    print(f"error: {message}", file=sys.stderr)\n'
            "    return 1\n"
            'if __name__ == "__main__":\n'
            "    raise SystemExit(0)\n"
        )
        assert run_rule("cli-error-policy", {"repro.cli": source}) == []

    def test_bare_except_fires(self):
        source = (
            "def _cmd_x(args: object) -> int:\n"
            "    try:\n"
            "        return 0\n"
            "    except:\n"
            "        return 0\n"
        )
        violations = run_rule("cli-error-policy", {"repro.cli": source})
        assert len(violations) == 1
        assert "bare except" in violations[0].message


class TestAnnotationsRule:
    def test_unannotated_def_fires_twice(self):
        violations = run_rule(
            "annotations-complete",
            {"repro.x": "def f(a):\n    return a\n"},
        )
        assert len(violations) == 2
        assert {v.line for v in violations} == {1}
        messages = {v.message for v in violations}
        assert any("unannotated parameter a" in m for m in messages)
        assert any("missing return annotation" in m for m in messages)

    def test_self_and_cls_are_exempt_but_static_first_arg_is_not(self):
        source = (
            "class C:\n"
            "    def m(self, x: int) -> int:\n"
            "        return x\n"
            "    @classmethod\n"
            "    def c(cls) -> None: ...\n"
            "    @staticmethod\n"
            "    def s(x) -> None: ...\n"
        )
        violations = run_rule("annotations-complete", {"repro.x": source})
        assert len(violations) == 1
        assert "def s" in violations[0].message

    def test_star_args_and_init_are_covered(self):
        source = (
            "class C:\n"
            "    def __init__(self):\n"
            "        pass\n"
            "def g(*args, **kw) -> None: ...\n"
        )
        violations = run_rule("annotations-complete", {"repro.x": source})
        messages = "\n".join(v.message for v in violations)
        assert "__init__ declares -> None" in messages
        assert "*args" in messages and "**kw" in messages


class TestDurableWritesRule:
    def test_write_mode_open_fires_read_does_not(self):
        bad = run_rule(
            "durable-writes",
            {
                "repro.x": (
                    "def f(path: str) -> None:\n"
                    '    with open(path, "w") as h:\n'
                    '        h.write("x")\n'
                )
            },
        )
        good = run_rule(
            "durable-writes",
            {
                "repro.x": (
                    "def f(path: str) -> str:\n"
                    '    with open(path, "r", encoding="utf-8") as h:\n'
                    "        return h.read()\n"
                )
            },
        )
        assert len(bad) == 1
        assert bad[0].line == 2
        assert "repro.io.atomic" in bad[0].message
        assert good == []

    def test_mode_keyword_and_append_mode_fire(self):
        violations = run_rule(
            "durable-writes",
            {
                "benchmarks.x": (
                    "from pathlib import Path\n"
                    "def f(p: Path) -> None:\n"
                    '    p.open(mode="ab").close()\n'
                )
            },
        )
        assert len(violations) == 1
        assert "'ab'" in violations[0].message

    def test_non_literal_mode_on_builtin_open_fires(self):
        violations = run_rule(
            "durable-writes",
            {
                "repro.x": (
                    "def f(path: str, mode: str) -> None:\n"
                    "    open(path, mode).close()\n"
                )
            },
        )
        assert len(violations) == 1
        assert "non-literal mode" in violations[0].message

    def test_raw_os_primitives_fire(self):
        violations = run_rule(
            "durable-writes",
            {
                "repro.x": (
                    "import os\n"
                    "def f(a: str, b: str) -> None:\n"
                    "    os.replace(a, b)\n"
                    "    os.fsync(3)\n"
                )
            },
        )
        assert len(violations) == 2
        messages = "\n".join(v.message for v in violations)
        assert "fsops seam" in messages

    def test_path_write_text_fires(self):
        violations = run_rule(
            "durable-writes",
            {
                "repro.x": (
                    "from pathlib import Path\n"
                    "def f(p: Path) -> None:\n"
                    '    p.write_text("data")\n'
                )
            },
        )
        assert len(violations) == 1
        assert "torn write" in violations[0].message

    def test_sanctioned_modules_and_classmethod_open_are_exempt(self):
        clean = run_rule(
            "durable-writes",
            {
                # The atomic module itself may use the raw primitives...
                "repro.io.atomic": (
                    "import os\n"
                    "def commit(a: str, b: str) -> None:\n"
                    "    os.replace(a, b)\n"
                ),
                # ...and `Thing.open(path)` classmethods take a *path*
                # first, not a mode — they must not be flagged.
                "repro.y": (
                    "from repro.db.partitioned import PartitionedDatabase\n"
                    "def f(d: str) -> PartitionedDatabase:\n"
                    "    return PartitionedDatabase.open(d)\n"
                ),
            },
        )
        assert clean == []


# --------------------------------------------------------------------- #
# The real tree
# --------------------------------------------------------------------- #


class TestRealTree:
    @pytest.fixture(scope="class")
    def real_context(self) -> LintContext:
        return LintContext.from_root(REPO_ROOT)

    def test_repository_is_clean(self, real_context: LintContext):
        violations = run_rules(real_context)
        assert violations == [], "\n" + "\n".join(
            v.render() for v in violations
        )

    def test_eager_io_reexports_reintroduce_the_pr5_cycle(self):
        """The acceptance criterion: deleting the PEP 562 lazy re-export
        shim in ``repro/io/__init__.py`` (i.e. binding the re-exports
        eagerly, as before PR 5) must make the cycle rule fail, naming
        the cycle."""
        eager = (
            "from repro.io.binlog import BinlogReader, BinlogWriter\n"
            "from repro.io.patterns import read_patterns, write_patterns\n"
            "from repro.io.state import read_mining_state\n"
        )
        ctx = LintContext.from_root(
            REPO_ROOT, overrides={"src/repro/io/__init__.py": eager}
        )
        violations = run_rules(ctx, [get_rule("import-cycles")])
        assert violations, "eager io re-exports must close an import cycle"
        message = violations[0].message
        assert "import cycle" in message
        assert "repro.io" in message

    def test_core_db_import_would_fire_layering(self, real_context):
        """Counterfactual via overrides: core reaching into db trips the
        layering rule on the real tree, so the rule is live, not vacuous."""
        mf = real_context.files["repro.core.counting"]
        patched = mf.source.replace(
            "from repro.core.protocols import",
            "from repro.db.database import SequenceDatabase  # noqa: F401\n"
            "from repro.core.protocols import",
            1,
        )
        ctx = LintContext.from_root(
            REPO_ROOT, overrides={"src/repro/core/counting.py": patched}
        )
        violations = run_rules(ctx, [get_rule("core-layering")])
        assert any(
            "repro.db.database" in v.message
            and v.path == "src/repro/core/counting.py"
            for v in violations
        )


# --------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------- #


class TestCli:
    def test_clean_run_exits_zero(self, capsys):
        assert lint_main(["--root", str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_list_names_every_rule(self, capsys):
        assert lint_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPECTED_RULES:
            assert name in out

    def test_explain_prints_the_invariant(self, capsys):
        assert lint_main(["--explain", "import-cycles"]) == 0
        out = capsys.readouterr().out
        assert "acyclic" in out
        assert "PR 5" in out

    def test_unknown_rule_exits_two(self, capsys):
        assert lint_main(["--explain", "bogus"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_single_rule_selection(self, capsys):
        assert lint_main(["--root", str(REPO_ROOT), "--rule", "core-layering"]) == 0
        assert "1 rule(s)" in capsys.readouterr().out
