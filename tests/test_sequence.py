"""Unit and property tests for the sequence algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.sequence import (
    OccurrenceIndex,
    Sequence,
    SequenceFormatError,
    earliest_end_index,
    format_sequence,
    id_sequence_contains,
    is_proper_subsequence,
    itemset_contains,
    latest_start_index,
    make_itemset,
    parse_sequence,
    sequence_contains,
)
from tests import strategies as my


class TestMakeItemset:
    def test_sorts_and_dedupes(self):
        assert make_itemset([3, 1, 2, 1]) == (1, 2, 3)

    def test_singleton(self):
        assert make_itemset([5]) == (5,)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            make_itemset([])

    def test_non_int_rejected(self):
        with pytest.raises(ValueError):
            make_itemset(["a"])

    def test_bool_rejected(self):
        with pytest.raises(ValueError):
            make_itemset([True])


class TestItemsetContains:
    def test_subset(self):
        assert itemset_contains((1, 2, 3), (1, 3))

    def test_not_subset(self):
        assert not itemset_contains((1, 2), (1, 3))

    def test_empty_subset_always_contained(self):
        assert itemset_contains((1,), ())

    def test_accepts_sets(self):
        assert itemset_contains(frozenset({1, 2}), (2,))


class TestSequenceType:
    def test_events_canonicalized(self):
        seq = Sequence([[3, 1], [2]])
        assert seq.events == ((1, 3), (2,))

    def test_length_counts_itemsets(self):
        assert Sequence([[1, 2], [3]]).length == 2

    def test_size_counts_items(self):
        assert Sequence([[1, 2], [3]]).size == 3

    def test_items_flattened(self):
        assert Sequence([[1, 2], [2, 3]]).items() == frozenset({1, 2, 3})

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            Sequence([])

    def test_empty_event_rejected(self):
        with pytest.raises(ValueError):
            Sequence([[1], []])

    def test_equality_and_hash(self):
        assert Sequence([[1, 2]]) == Sequence([[2, 1]])
        assert hash(Sequence([[1, 2]])) == hash(Sequence([[2, 1]]))
        assert Sequence([[1], [2]]) != Sequence([[1, 2]])

    def test_ordering_by_length_then_lex(self):
        assert Sequence([[9]]) < Sequence([[1], [1]])
        assert Sequence([[1], [2]]) < Sequence([[1], [3]])

    def test_concat(self):
        assert Sequence([[1]]).concat(Sequence([[2]])) == Sequence([[1], [2]])

    def test_drop_event(self):
        assert Sequence([[1], [2], [3]]).drop_event(1) == Sequence([[1], [3]])

    def test_drop_only_event_rejected(self):
        with pytest.raises(ValueError):
            Sequence([[1]]).drop_event(0)

    def test_indexing_and_iter(self):
        seq = Sequence([[1], [2, 3]])
        assert seq[1] == (2, 3)
        assert list(seq) == [(1,), (2, 3)]
        assert len(seq) == 2


class TestSequenceContains:
    """Examples straight from the paper's Section 2 discussion."""

    def test_paper_example_positive(self):
        # <(3)(4 5)(8)> is contained in <(7)(3 8)(9)(4 5 6)(8)>
        container = [(7,), (3, 8), (9,), (4, 5, 6), (8,)]
        pattern = [(3,), (4, 5), (8,)]
        assert sequence_contains(container, pattern)

    def test_paper_example_negative(self):
        # <(3)(5)> is NOT contained in <(3 5)> — order needs two events.
        assert not sequence_contains([(3, 5)], [(3,), (5,)])

    def test_event_subset_matching(self):
        assert sequence_contains([(1, 2), (3, 4)], [(1,), (3,)])

    def test_same_length_strict_containment(self):
        # Containment between equal-length sequences via event subsets.
        assert sequence_contains([(1, 2), (3,)], [(1,), (3,)])

    def test_order_matters(self):
        assert not sequence_contains([(2,), (1,)], [(1,), (2,)])

    def test_repeated_events_consume_positions(self):
        assert sequence_contains([(1,), (1,)], [(1,), (1,)])
        assert not sequence_contains([(1,)], [(1,), (1,)])

    def test_empty_pattern_trivially_contained(self):
        assert sequence_contains([(1,)], [])

    def test_pattern_longer_than_container(self):
        assert not sequence_contains([(1,)], [(1,), (1,), (1,)])

    def test_is_proper_subsequence_excludes_equal(self):
        assert not is_proper_subsequence([(1,), (2,)], [(1,), (2,)])
        assert is_proper_subsequence([(1,)], [(1,), (2,)])

    @given(my.sequences())
    def test_reflexive(self, seq):
        assert sequence_contains(seq.events, seq.events)

    @given(my.sequences(), st.data())
    def test_dropping_an_event_gives_subsequence(self, seq, data):
        if seq.length < 2:
            return
        index = data.draw(st.integers(0, seq.length - 1))
        smaller = seq.drop_event(index)
        assert sequence_contains(seq.events, smaller.events)

    @given(my.sequences(), my.sequences(), my.sequences())
    def test_transitive(self, a, b, c):
        if sequence_contains(b.events, a.events) and sequence_contains(
            c.events, b.events
        ):
            assert sequence_contains(c.events, a.events)

    @given(my.sequences(), my.sequences())
    def test_antisymmetric(self, a, b):
        if sequence_contains(a.events, b.events) and sequence_contains(
            b.events, a.events
        ):
            assert a == b

    @given(my.sequences(), my.sequences())
    def test_concat_contains_both_parts_in_order(self, a, b):
        combined = a.concat(b)
        assert sequence_contains(combined.events, a.events)
        assert sequence_contains(combined.events, b.events)


class TestIdSequenceContains:
    def test_membership_matching(self):
        events = (frozenset({1, 2}), frozenset({3}))
        assert id_sequence_contains((1, 3), events)
        assert id_sequence_contains((2, 3), events)
        assert not id_sequence_contains((3, 1), events)

    def test_needs_distinct_events(self):
        events = (frozenset({1, 2}),)
        assert not id_sequence_contains((1, 2), events)

    def test_repeated_ids(self):
        events = (frozenset({1}), frozenset({1}))
        assert id_sequence_contains((1, 1), events)
        assert not id_sequence_contains((1, 1, 1), events)

    @given(my.id_sequences(), my.id_event_sequences())
    def test_greedy_matches_bruteforce(self, pattern, events):
        from itertools import combinations

        def brute(pattern, events):
            for positions in combinations(range(len(events)), len(pattern)):
                if all(p in events[i] for p, i in zip(pattern, positions)):
                    return True
            return False

        assert id_sequence_contains(pattern, events) == brute(pattern, events)


class TestEndpointMatchers:
    def test_earliest_end(self):
        events = (frozenset({1}), frozenset({2}), frozenset({2}))
        assert earliest_end_index((1, 2), events) == 1

    def test_latest_start(self):
        events = (frozenset({1}), frozenset({1}), frozenset({2}))
        assert latest_start_index((1, 2), events) == 1

    def test_not_contained_returns_none(self):
        events = (frozenset({1}),)
        assert earliest_end_index((2,), events) is None
        assert latest_start_index((2,), events) is None

    @given(my.id_sequences(max_length=3), my.id_event_sequences())
    def test_endpoints_bound_each_other(self, pattern, events):
        end = earliest_end_index(pattern, events)
        start = latest_start_index(pattern, events)
        assert (end is None) == (start is None)
        if end is not None:
            # earliest match ends no later than the latest match ends;
            # both matches span at least len(pattern) - 1 events.
            assert end >= len(pattern) - 1
            assert start <= len(events) - len(pattern) + 1
            assert id_sequence_contains(pattern, events)

    @given(my.id_sequences(max_length=2), my.id_sequences(max_length=2),
           my.id_event_sequences())
    def test_concatenation_criterion(self, head, tail, events):
        """x.y ⊆ d  ⇔  earliest_end(x) < latest_start(y)."""
        end = earliest_end_index(head, events)
        start = latest_start_index(tail, events)
        joined = id_sequence_contains(head + tail, events)
        criterion = end is not None and start is not None and end < start
        assert joined == criterion


class TestOccurrenceIndex:
    def test_positions(self):
        events = (frozenset({1, 2}), frozenset({2}), frozenset({1}))
        index = OccurrenceIndex(events)
        assert index.positions[1] == [0, 2]
        assert index.positions[2] == [0, 1]
        assert index.num_events == 3

    def test_first_after(self):
        events = (frozenset({1}), frozenset({2}), frozenset({1}))
        index = OccurrenceIndex(events)
        assert index.first_after(1, -1) == 0
        assert index.first_after(1, 0) == 2
        assert index.first_after(1, 2) is None
        assert index.first_after(99, -1) is None

    @given(my.id_sequences(), my.id_event_sequences())
    def test_index_walk_equals_direct_containment(self, pattern, events):
        index = OccurrenceIndex(events)
        pos = -1
        contained = True
        for wanted in pattern:
            pos = index.first_after(wanted, pos)
            if pos is None:
                contained = False
                break
        assert contained == id_sequence_contains(pattern, events)


class TestParsingAndFormatting:
    def test_format(self):
        assert format_sequence(Sequence([[30], [40, 70]])) == "<(30)(40 70)>"

    def test_parse(self):
        assert parse_sequence("<(30) (40 70)>") == Sequence([[30], [40, 70]])

    def test_parse_commas(self):
        assert parse_sequence("<(1,2)(3)>") == Sequence([[1, 2], [3]])

    @pytest.mark.parametrize(
        "bad",
        ["", "30", "<>", "<()>", "<(a)>", "<(1) junk (2)>", "(1)(2)"],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(SequenceFormatError):
            parse_sequence(bad)

    @given(my.sequences(max_item=99))
    def test_roundtrip(self, seq):
        assert parse_sequence(format_sequence(seq)) == seq
