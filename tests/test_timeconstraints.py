"""Tests for the time-constraints extension (the paper's future work)."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.baselines.bruteforce import enumerate_contained_sequences
from repro.core.sequence import Sequence, sequence_contains
from repro.db.records import Transaction
from repro.extensions.timeconstraints import (
    TimeConstraints,
    build_timed_sequences,
    contains_timed,
    find_windowed_litemsets,
    mine_time_constrained,
    window_matches,
)
from tests import strategies as my


def rows(*triples):
    return [Transaction(c, t, items) for c, t, items in triples]


def timed(*pairs):
    return tuple((t, frozenset(items)) for t, items in pairs)


class TestConstraintsValidation:
    def test_defaults_unconstrained(self):
        assert TimeConstraints().unconstrained

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_gap": -1},
            {"window_size": -1},
            {"max_gap": 0},
            {"max_gap": -5},
            {"min_gap": 3, "max_gap": 3},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            TimeConstraints(**kwargs)


class TestBuildTimedSequences:
    def test_sorts_and_merges(self):
        sequences = build_timed_sequences(
            rows((1, 20, (3,)), (1, 10, (1,)), (1, 10, (2,)), (2, 5, (9,)))
        )
        assert sequences == [
            timed((10, {1, 2}), (20, {3})),
            timed((5, {9})),
        ]


class TestWindowMatches:
    def test_single_transaction(self):
        events = timed((10, {1, 2}), (20, {3}))
        assert window_matches(events, frozenset({1}), 0) == [(10, 10)]
        assert window_matches(events, frozenset({3}), 0) == [(20, 20)]
        assert window_matches(events, frozenset({1, 3}), 0) == []

    def test_window_unions_split_itemset(self):
        events = timed((10, {1}), (12, {2}), (30, {1, 2}))
        # window 2: {1,2} matched by transactions 10+12 or alone at 30.
        assert window_matches(events, frozenset({1, 2}), 2) == [(10, 12), (30, 30)]
        # window 1: only the single transaction at 30 works.
        assert window_matches(events, frozenset({1, 2}), 1) == [(30, 30)]

    def test_minimal_end_reported(self):
        events = timed((10, {1}), (11, {2}), (12, {2}))
        assert window_matches(events, frozenset({1, 2}), 5) == [(10, 11)]


class TestContainsTimed:
    EVENTS = timed((10, {1}), (20, {2}), (50, {3}))

    def test_plain_order(self):
        assert contains_timed(self.EVENTS, [frozenset({1}), frozenset({2})],
                              TimeConstraints())
        assert not contains_timed(self.EVENTS, [frozenset({2}), frozenset({1})],
                                  TimeConstraints())

    def test_min_gap(self):
        pattern = [frozenset({1}), frozenset({2})]
        assert contains_timed(self.EVENTS, pattern, TimeConstraints(min_gap=9))
        assert not contains_timed(self.EVENTS, pattern, TimeConstraints(min_gap=10))

    def test_max_gap(self):
        pattern = [frozenset({2}), frozenset({3})]
        assert contains_timed(self.EVENTS, pattern, TimeConstraints(max_gap=30))
        assert not contains_timed(self.EVENTS, pattern, TimeConstraints(max_gap=29))

    def test_max_gap_requires_backtracking(self):
        # Greedy would match {1} at t=10 and then fail max_gap for {2} at
        # t=40; the correct match starts at t=35.
        events = timed((10, {1}), (35, {1}), (40, {2}))
        pattern = [frozenset({1}), frozenset({2})]
        assert contains_timed(events, pattern, TimeConstraints(max_gap=10))

    def test_window_spans_element(self):
        events = timed((10, {1}), (12, {2}), (40, {3}))
        pattern = [frozenset({1, 2}), frozenset({3})]
        assert not contains_timed(events, pattern, TimeConstraints())
        assert contains_timed(events, pattern, TimeConstraints(window_size=2))

    def test_window_with_min_gap_uses_window_end(self):
        events = timed((10, {1}), (12, {2}), (20, {3}))
        pattern = [frozenset({1, 2}), frozenset({3})]
        # Element 1 occupies [10,12]; min_gap counts from its end (12).
        assert contains_timed(events, pattern,
                              TimeConstraints(window_size=2, min_gap=7))
        assert not contains_timed(events, pattern,
                                  TimeConstraints(window_size=2, min_gap=8))

    def test_empty_pattern(self):
        assert contains_timed(self.EVENTS, [], TimeConstraints())


class TestWindowedLitemsets:
    def test_window_zero_is_plain_litemsets(self):
        sequences = [timed((1, {1, 2})), timed((1, {1, 2})), timed((1, {3}))]
        supports = find_windowed_litemsets(sequences, threshold=2, window_size=0)
        assert supports == {(1,): 2, (2,): 2, (1, 2): 2}

    def test_window_recovers_split_itemsets(self):
        sequences = [
            timed((10, {1}), (11, {2})),
            timed((10, {1}), (11, {2})),
        ]
        plain = find_windowed_litemsets(sequences, threshold=2, window_size=0)
        assert (1, 2) not in plain
        windowed = find_windowed_litemsets(sequences, threshold=2, window_size=1)
        assert windowed[(1, 2)] == 2


class TestMineTimeConstrained:
    def test_unconstrained_equals_all_frequent_sequences(self):
        transactions = rows(
            (1, 1, (30,)), (1, 2, (90,)),
            (2, 1, (30,)), (2, 2, (90,)),
            (3, 1, (30,)),
        )
        patterns = mine_time_constrained(transactions, minsup=0.5)
        assert [(str(p.sequence), p.count) for p in patterns] == [
            ("<(30)>", 3),
            ("<(90)>", 2),
            ("<(30)(90)>", 2),
        ]

    def test_max_gap_prunes_slow_customers(self):
        transactions = rows(
            (1, 1, (1,)), (1, 2, (2,)),      # gap 1
            (2, 1, (1,)), (2, 50, (2,)),     # gap 49
        )
        loose = mine_time_constrained(transactions, 0.5)
        tight = mine_time_constrained(transactions, 0.5, TimeConstraints(max_gap=5))
        loose_map = {str(p.sequence): p.count for p in loose}
        tight_map = {str(p.sequence): p.count for p in tight}
        assert loose_map["<(1)(2)>"] == 2
        assert tight_map["<(1)(2)>"] == 1

    def test_min_gap_drops_rapid_rebuys(self):
        transactions = rows(
            (1, 1, (1,)), (1, 2, (1,)),
            (2, 1, (1,)), (2, 10, (1,)),
        )
        constrained = mine_time_constrained(
            transactions, 1.0, TimeConstraints(min_gap=5)
        )
        assert {str(p.sequence) for p in constrained} == {"<(1)>"}

    def test_window_finds_cross_transaction_pattern(self):
        transactions = rows(
            (1, 10, (1,)), (1, 11, (2,)), (1, 30, (9,)),
            (2, 10, (1,)), (2, 11, (2,)), (2, 30, (9,)),
        )
        plain = mine_time_constrained(transactions, 1.0)
        windowed = mine_time_constrained(
            transactions, 1.0, TimeConstraints(window_size=1)
        )
        assert "<(1 2)>" not in {str(p.sequence) for p in plain}
        windowed_map = {str(p.sequence): p.count for p in windowed}
        assert windowed_map["<(1 2)>"] == 2
        assert windowed_map["<(1 2)(9)>"] == 2

    def test_max_pattern_length(self):
        transactions = rows(*[(1, t, (t,)) for t in (1, 2, 3)])
        patterns = mine_time_constrained(
            transactions, 1.0, max_pattern_length=2
        )
        assert max(p.sequence.length for p in patterns) == 2

    def test_empty(self):
        assert mine_time_constrained([], 0.5) == []

    def test_regression_pinned_fixture(self):
        # Pins the exact output (sequences, counts, order) on a small
        # fixture with every constraint kind active, guarding refactors
        # of the mining loop (e.g. the sharded counting path).
        transactions = rows(
            (1, 1, (30,)), (1, 2, (40,)), (1, 4, (70,)), (1, 9, (90,)),
            (2, 1, (30,)), (2, 5, (40, 70)), (2, 6, (90,)),
            (3, 2, (30,)), (3, 3, (70,)), (3, 4, (40,)), (3, 20, (90,)),
        )
        patterns = mine_time_constrained(
            transactions,
            minsup=0.6,
            constraints=TimeConstraints(min_gap=0, max_gap=6, window_size=2),
        )
        # Spot-checks of the pinned values: <(30 40)> needs 30 and 40
        # within one window (customers 1 and 3 only — customer 2 has them
        # 4 time units apart); <(40)(90)> is *absent* because max_gap=6
        # rules out customers 1 (40@2 → 90@9) and 3 (40@4 → 90@20).
        assert [(str(p.sequence), p.count) for p in patterns] == [
            ("<(30)>", 3),
            ("<(30 40)>", 2),
            ("<(40)>", 3),
            ("<(40 70)>", 3),
            ("<(70)>", 3),
            ("<(90)>", 3),
            ("<(30)(40)>", 3),
            ("<(30)(40 70)>", 3),
            ("<(30)(70)>", 3),
            ("<(70)(90)>", 2),
            ("<(30)(70)(90)>", 2),
        ]

    @pytest.mark.parametrize(
        "constraints",
        [
            TimeConstraints(),
            TimeConstraints(max_gap=6),
            TimeConstraints(min_gap=1, window_size=2),
        ],
    )
    def test_parallel_equals_serial(self, constraints):
        transactions = rows(
            (1, 1, (30,)), (1, 2, (40,)), (1, 4, (70,)), (1, 9, (90,)),
            (2, 1, (30,)), (2, 5, (40, 70)), (2, 6, (90,)),
            (3, 2, (30,)), (3, 3, (70,)), (3, 4, (40,)), (3, 20, (90,)),
            (4, 1, (90,)), (4, 2, (30,)),
        )
        serial = mine_time_constrained(transactions, 0.5, constraints)
        parallel = mine_time_constrained(transactions, 0.5, constraints, workers=2)
        chunked = mine_time_constrained(
            transactions, 0.5, constraints, workers=3, chunk_size=1
        )
        assert parallel == serial
        assert chunked == serial

    @given(my.databases(max_customers=4, max_events=3, max_item=4))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_unconstrained_matches_bruteforce_frequent_set(self, db):
        """With default constraints the miner must return every frequent
        sequence (not only maximal) with exact supports."""
        from repro.io.csvio import database_to_transactions

        minsup = 0.5
        threshold = db.threshold(minsup)
        candidates = set()
        for customer in db:
            candidates |= enumerate_contained_sequences(customer.events)
        expected = {}
        for pattern in candidates:
            count = sum(
                1 for c in db if sequence_contains(c.events, pattern)
            )
            if count >= threshold:
                sequence = Sequence(tuple(sorted(e)) for e in pattern)
                expected[sequence] = count

        mined = mine_time_constrained(
            list(database_to_transactions(db)), minsup
        )
        got = {p.sequence: p.count for p in mined}
        assert got == expected
