"""Tests for the sharded parallel counting engine.

The contract under test: for any database, candidate set, worker count,
chunk size, and strategy, parallel counts are *identical* to serial
counts — same keys, same values, same insertion order where the serial
engine defines one. Plus: ``workers=1`` never spawns a pool, and the
sharding helpers partition and merge exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counting import count_candidates, count_length2
from repro.miner import MiningParams, mine
from repro.core.phase import CountingOptions
from repro.db.database import SequenceDatabase
from repro.parallel import executor
from repro.parallel.executor import (
    parallel_count_candidates,
    parallel_count_length2,
    resolve_workers,
)
from repro.parallel.sharding import merge_counts, partition, shard_bounds
from tests import strategies as my


def events(*ids_per_event):
    return tuple(frozenset(ids) for ids in ids_per_event)


SEQUENCES = [
    events({1}, {2}, {1}),
    events({2, 3}, {1}),
    events({1, 2}),
    events({3}, {3}, {2}),
    events({1}, {1}, {1}),
    events({2}, {3}),
    events({4}, {1, 3}),
]
CANDIDATES = [(1, 2), (2, 1), (3, 3), (3, 2), (1, 1), (4, 3), (9, 9)]


class TestShardBounds:
    def test_even_split(self):
        assert shard_bounds(10, 2) == [(0, 5), (5, 10)]

    def test_uneven_split_spreads_remainder(self):
        assert shard_bounds(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_more_shards_than_items(self):
        assert shard_bounds(3, 8) == [(0, 1), (1, 2), (2, 3)]

    def test_chunk_size_overrides_num_shards(self):
        assert shard_bounds(10, 2, chunk_size=4) == [(0, 4), (4, 8), (8, 10)]

    def test_empty(self):
        assert shard_bounds(0, 4) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            shard_bounds(-1, 2)
        with pytest.raises(ValueError):
            shard_bounds(5, 0)
        with pytest.raises(ValueError):
            shard_bounds(5, 2, chunk_size=0)

    @given(
        num_items=st.integers(0, 200),
        num_shards=st.integers(1, 12),
        chunk_size=st.one_of(st.none(), st.integers(1, 50)),
    )
    @settings(max_examples=60)
    def test_bounds_are_disjoint_and_covering(
        self, num_items, num_shards, chunk_size
    ):
        bounds = shard_bounds(num_items, num_shards, chunk_size)
        assert all(start < stop for start, stop in bounds)
        flattened = [i for start, stop in bounds for i in range(start, stop)]
        assert flattened == list(range(num_items))


class TestPartitionAndMerge:
    def test_partition_preserves_items(self):
        shards = partition(SEQUENCES, 3)
        assert [s for shard in shards for s in shard] == SEQUENCES

    def test_merge_sums_and_keeps_base_order(self):
        base = {"a": 0, "b": 0, "c": 0}
        merged = merge_counts([{"b": 2}, {"a": 1, "b": 1}], base=base)
        assert merged == {"a": 1, "b": 3, "c": 0}
        assert list(merged) == ["a", "b", "c"]
        assert base == {"a": 0, "b": 0, "c": 0}  # base not mutated

    def test_merge_without_base(self):
        assert merge_counts([{"x": 1}, {"x": 2, "y": 5}]) == {"x": 3, "y": 5}


class TestResolveWorkers:
    def test_passthrough(self):
        assert resolve_workers(3) == 3

    def test_zero_and_none_mean_all_cpus(self):
        assert resolve_workers(0) >= 1
        assert resolve_workers(None) == resolve_workers(0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("strategy", ["hashtree", "naive"])
    @pytest.mark.parametrize("workers,chunk_size", [(2, None), (3, 2), (2, 1)])
    def test_count_candidates(self, strategy, workers, chunk_size):
        serial = count_candidates(SEQUENCES, CANDIDATES, strategy=strategy)
        parallel = count_candidates(
            SEQUENCES,
            CANDIDATES,
            strategy=strategy,
            workers=workers,
            chunk_size=chunk_size,
        )
        assert parallel == serial
        assert list(parallel) == list(serial)

    def test_zero_count_candidates_survive_merge(self):
        counts = count_candidates(SEQUENCES, [(9, 9), (8, 8)], workers=2)
        assert counts == {(9, 9): 0, (8, 8): 0}

    def test_count_length2(self):
        serial = count_length2(SEQUENCES)
        assert count_length2(SEQUENCES, workers=2) == serial
        assert count_length2(SEQUENCES, workers=3, chunk_size=2) == serial

    def test_empty_inputs(self):
        assert parallel_count_candidates([], CANDIDATES, workers=2) == {
            c: 0 for c in CANDIDATES
        }
        assert parallel_count_candidates(SEQUENCES, [], workers=2) == {}
        assert parallel_count_length2([], workers=2) == {}

    @given(
        sequences=st.lists(my.id_event_sequences(max_id=5), max_size=8),
        candidates=st.sets(my.id_sequences(max_id=5, max_length=3), max_size=12),
        workers=st.integers(1, 3),
        chunk_size=st.one_of(st.none(), st.integers(1, 4)),
        strategy=st.sampled_from(["hashtree", "naive"]),
    )
    @settings(max_examples=10, deadline=None)
    def test_property_equivalence(
        self, sequences, candidates, workers, chunk_size, strategy
    ):
        candidates = {c for c in candidates if len(c) == 3}
        serial = count_candidates(sequences, candidates, strategy=strategy)
        parallel = count_candidates(
            sequences,
            candidates,
            strategy=strategy,
            workers=workers,
            chunk_size=chunk_size,
        )
        assert parallel == serial

    @given(sequences=st.lists(my.id_event_sequences(max_id=5), max_size=8))
    @settings(max_examples=10, deadline=None)
    def test_property_length2_equivalence(self, sequences):
        assert count_length2(sequences, workers=2) == count_length2(sequences)


class TestNoPoolWhenSerial:
    @pytest.fixture
    def forbid_pool(self, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("a worker pool was spawned")

        monkeypatch.setattr(executor, "_pool", boom)

    def test_workers_1_count_candidates(self, forbid_pool):
        count_candidates(SEQUENCES, CANDIDATES, workers=1)
        parallel_count_candidates(SEQUENCES, CANDIDATES, workers=1)

    def test_workers_1_count_length2(self, forbid_pool):
        count_length2(SEQUENCES, workers=1)
        parallel_count_length2(SEQUENCES, workers=1)

    def test_single_shard_short_circuits(self, forbid_pool):
        # One customer ⇒ one shard ⇒ no pool, whatever `workers` says.
        parallel_count_candidates(SEQUENCES[:1], CANDIDATES, workers=4)

    def test_workers_1_full_mine(self, forbid_pool):
        db = SequenceDatabase.from_sequences([[(1,), (2,)], [(1, 2)], [(2,)]])
        mine(db, MiningParams(minsup=0.3, counting=CountingOptions(workers=1)))

    def test_pool_actually_used_when_parallel(self, forbid_pool):
        with pytest.raises(AssertionError, match="pool was spawned"):
            parallel_count_candidates(SEQUENCES, CANDIDATES, workers=2)


class TestFullPipelineParallel:
    """End-to-end: every algorithm yields identical results with workers>1."""

    @pytest.fixture(scope="class")
    def db(self):
        from repro.datagen.generator import generate_database
        from repro.datagen.params import SyntheticParams

        params = SyntheticParams.from_name(
            "C10-T2.5-S4-I1.25", num_customers=60
        )
        return generate_database(params, seed=7)

    @pytest.mark.parametrize(
        "algorithm", ["aprioriall", "apriorisome", "dynamicsome"]
    )
    def test_algorithms_agree_with_serial(self, db, algorithm):
        serial = mine(
            db,
            MiningParams(
                minsup=0.2,
                algorithm=algorithm,
                counting=CountingOptions(workers=1),
            ),
        )
        parallel = mine(
            db,
            MiningParams(
                minsup=0.2,
                algorithm=algorithm,
                counting=CountingOptions(workers=2, chunk_size=17),
            ),
        )
        assert parallel.patterns == serial.patterns
        assert parallel.large_counts_by_length == serial.large_counts_by_length
