"""Focused tests for the shared backward phase."""

from repro.core.backward import backward_phase
from repro.core.phase import SequencePhaseResult
from repro.core.stats import AlgorithmStats
from repro.db.database import SequenceDatabase
from repro.db.transform import transform_database
from repro.itemsets.apriori import find_litemsets
from repro.itemsets.litemsets import LitemsetCatalog


def make_tdb(sequences, minsup=1.0):
    db = SequenceDatabase.from_sequences(sequences)
    catalog = LitemsetCatalog.from_result(find_litemsets(db, minsup))
    return transform_database(db, catalog), db.threshold(minsup)


def fresh_result(l1):
    result = SequencePhaseResult(stats=AlgorithmStats("test"))
    result.large_by_length[1] = l1
    return result


class TestBackwardPhase:
    def test_counts_skipped_lengths_descending(self):
        tdb, threshold = make_tdb([[(1,), (2,), (3,)]] * 2)
        l1 = tdb.catalog.one_sequence_supports()
        result = fresh_result(l1)
        ids = sorted(i for (i,) in l1)
        a, b, c = ids
        candidates = {
            2: [(a, b), (b, c), (a, c)],
            3: [(a, b, c)],
        }
        backward_phase(tdb, threshold, result, candidates, counted_lengths={1})
        # Length 3 counted first (1 candidate), then every 2-candidate is
        # contained in it → all pruned.
        assert result.large_by_length[3] == {(a, b, c): 2}
        assert 2 not in result.large_by_length
        assert result.stats.skipped_by_containment == 3
        phases = [(p.length, p.num_candidates) for p in result.stats.passes]
        assert phases == [(3, 1), (2, 0)]

    def test_counted_lengths_feed_the_index(self):
        tdb, threshold = make_tdb([[(1,), (2,), (3,)]] * 2)
        l1 = tdb.catalog.one_sequence_supports()
        a, b, c = sorted(i for (i,) in l1)
        result = fresh_result(l1)
        # Pretend length 3 was counted in a forward phase.
        result.large_by_length[3] = {(a, b, c): 2}
        candidates = {2: [(a, b)], 3: [(a, b, c)]}
        backward_phase(
            tdb, threshold, result, candidates, counted_lengths={1, 3}
        )
        # (a,b) is contained in the already-known 3-sequence → pruned.
        assert 2 not in result.large_by_length
        assert result.stats.skipped_by_containment == 1

    def test_itemset_aware_pruning(self):
        """Pruning must see through the id alphabet: <(1)(3)> is contained
        in <(1 2)(3)> even though the litemset ids differ."""
        tdb, threshold = make_tdb([[(1, 2), (3,)]] * 2)
        catalog = tdb.catalog
        l1 = catalog.one_sequence_supports()
        result = fresh_result(l1)
        id_single_1 = catalog.id_of((1,))
        id_pair = catalog.id_of((1, 2))
        id_3 = catalog.id_of((3,))
        result.large_by_length[2] = {(id_pair, id_3): 2}
        candidates = {2: [(id_single_1, id_3), (id_pair, id_3)]}
        backward_phase(
            tdb, threshold, result, candidates, counted_lengths={1, 2}
        )
        # Length 2 was marked counted, so nothing recounted — but the
        # same-length containment case is covered by the maximal filter;
        # here we verify the index-feeding path didn't crash and state is
        # unchanged.
        assert result.large_by_length[2] == {(id_pair, id_3): 2}

    def test_empty_candidates_noop(self):
        tdb, threshold = make_tdb([[(1,)]])
        result = fresh_result(tdb.catalog.one_sequence_supports())
        backward_phase(tdb, threshold, result, {}, counted_lengths={1})
        assert result.stats.passes == []

    def test_unpruned_infrequent_candidates_rejected_by_count(self):
        tdb, threshold = make_tdb([[(1,), (2,)], [(2,), (1,)]], minsup=1.0)
        l1 = tdb.catalog.one_sequence_supports()
        a, b = sorted(i for (i,) in l1)
        result = fresh_result(l1)
        candidates = {2: [(a, b), (b, a)]}
        backward_phase(tdb, threshold, result, candidates, counted_lengths={1})
        # Each order occurs in only one customer; threshold is 2.
        assert 2 not in result.large_by_length
        assert result.stats.passes[0].num_candidates == 2
        assert result.stats.passes[0].num_large == 0
