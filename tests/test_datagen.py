"""Tests for the synthetic data generator (params, tables, assembly)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.generator import generate_database, generate_transactions
from repro.datagen.params import SyntheticParams
from repro.datagen.tables import (
    generate_itemset_table,
    generate_pattern_tables,
    generate_sequence_table,
)
from repro.db.database import SequenceDatabase

SMALL = SyntheticParams(
    num_customers=60,
    avg_transactions_per_customer=5.0,
    avg_items_per_transaction=2.0,
    avg_pattern_sequence_length=3.0,
    avg_pattern_itemset_size=1.5,
    num_pattern_sequences=20,
    num_pattern_itemsets=50,
    num_items=100,
)


class TestParams:
    def test_name_formatting(self):
        assert SMALL.name == "C5-T2-S3-I1.5"
        assert SyntheticParams().name == "C10-T2.5-S4-I1.25"

    def test_from_name_roundtrip(self):
        parsed = SyntheticParams.from_name("C20-T2.5-S8-I1.25")
        assert parsed.avg_transactions_per_customer == 20
        assert parsed.avg_items_per_transaction == 2.5
        assert parsed.avg_pattern_sequence_length == 8
        assert parsed.avg_pattern_itemset_size == 1.25
        assert parsed.name == "C20-T2.5-S8-I1.25"

    def test_from_name_with_overrides(self):
        parsed = SyntheticParams.from_name("C10-T5-S4-I2.5", num_customers=77)
        assert parsed.num_customers == 77

    @pytest.mark.parametrize("bad", ["", "C10", "C10-T5", "T5-C10-S4-I1", "C10-T5-S4-I1.25-X9"])
    def test_from_name_rejects(self, bad):
        with pytest.raises(ValueError):
            SyntheticParams.from_name(bad)

    def test_paper_scale(self):
        full = SMALL.paper_scale()
        assert full.num_customers == 250_000
        assert full.num_items == 10_000
        assert full.num_pattern_sequences == 5_000
        assert full.num_pattern_itemsets == 25_000
        # Name-defining knobs are preserved.
        assert full.name == SMALL.name

    def test_scaled(self):
        assert SMALL.scaled(2.0).num_customers == 120
        assert SMALL.scaled(0.5).num_customers == 30
        with pytest.raises(ValueError):
            SMALL.scaled(0)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_customers", -1),
            ("avg_transactions_per_customer", 0),
            ("avg_items_per_transaction", -2.0),
            ("num_items", 0),
            ("num_pattern_sequences", 0),
            ("num_pattern_itemsets", 0),
            ("correlation_level", 1.5),
            ("corruption_mean", -0.1),
            ("corruption_sd", -1.0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            SMALL.with_(**{field: value})


class TestTables:
    def test_itemset_table_shape(self):
        rng = np.random.default_rng(1)
        itemsets, probs, corruption = generate_itemset_table(SMALL, rng)
        assert len(itemsets) == SMALL.num_pattern_itemsets
        assert probs.shape == (50,)
        assert corruption.shape == (50,)
        assert abs(probs.sum() - 1.0) < 1e-9
        assert ((corruption >= 0) & (corruption <= 1)).all()

    def test_itemsets_are_canonical_and_in_range(self):
        rng = np.random.default_rng(2)
        itemsets, _, _ = generate_itemset_table(SMALL, rng)
        for itemset in itemsets:
            assert itemset == tuple(sorted(set(itemset)))
            assert all(1 <= item <= SMALL.num_items for item in itemset)
            assert len(itemset) >= 1

    def test_sequence_table_shape(self):
        rng = np.random.default_rng(3)
        itemsets, probs, _ = generate_itemset_table(SMALL, rng)
        sequences, seq_probs, corr = generate_sequence_table(
            SMALL, rng, len(itemsets), probs
        )
        assert len(sequences) == SMALL.num_pattern_sequences
        assert abs(seq_probs.sum() - 1.0) < 1e-9
        for seq in sequences:
            assert len(seq) >= 1
            assert all(0 <= idx < len(itemsets) for idx in seq)

    def test_mean_sizes_near_targets(self):
        params = SMALL.with_(
            num_pattern_itemsets=2000,
            num_pattern_sequences=800,
            avg_pattern_itemset_size=2.5,
            avg_pattern_sequence_length=4.0,
        )
        tables = generate_pattern_tables(params, np.random.default_rng(4))
        mean_size = np.mean([len(i) for i in tables.itemsets])
        mean_len = np.mean([len(s) for s in tables.sequences])
        # Poisson clipped at 1 biases slightly high; allow a loose band.
        assert 2.2 < mean_size < 3.0
        assert 3.5 < mean_len < 4.7

    def test_sequence_events_view(self):
        tables = generate_pattern_tables(SMALL, np.random.default_rng(5))
        events = tables.sequence_events(0)
        assert len(events) == len(tables.sequences[0])
        assert all(isinstance(e, tuple) for e in events)


class TestGenerator:
    def test_deterministic_under_seed(self):
        a = generate_database(SMALL, seed=11)
        b = generate_database(SMALL, seed=11)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_database(SMALL, seed=11)
        b = generate_database(SMALL, seed=12)
        assert a != b

    def test_customer_count(self):
        db = generate_database(SMALL, seed=1)
        assert db.num_customers == SMALL.num_customers
        assert [c.customer_id for c in db] == list(range(1, 61))

    def test_no_degenerate_customers(self):
        db = generate_database(SMALL, seed=2)
        for customer in db:
            assert customer.num_transactions >= 1
            assert all(len(event) >= 1 for event in customer.events)

    def test_items_in_range(self):
        db = generate_database(SMALL, seed=3)
        assert all(1 <= i <= SMALL.num_items for i in db.item_vocabulary())

    def test_sizes_near_targets(self):
        params = SMALL.with_(num_customers=300)
        db = generate_database(params, seed=4)
        stats = db.stats()
        assert 3.5 < stats.avg_transactions_per_customer < 6.5
        # Transactions can exceed their Poisson target via the 50% overflow
        # rule, and lose items to event merging; keep a generous band.
        assert 1.2 < stats.avg_items_per_transaction < 4.0

    def test_zero_customers(self):
        db = generate_database(SMALL.with_(num_customers=0), seed=5)
        assert db.num_customers == 0

    def test_embedded_patterns_are_frequent(self):
        """The point of the generator: data must contain mineable
        multi-event patterns well above noise."""
        from repro import mine_sequential_patterns

        params = SMALL.with_(num_customers=250)
        db = generate_database(params, seed=6)
        result = mine_sequential_patterns(db, minsup=0.05)
        multi = [p for p in result.patterns if p.sequence.length >= 2]
        assert multi, "expected frequent multi-event patterns in synthetic data"

    def test_generate_transactions_roundtrip(self):
        rows = list(generate_transactions(SMALL, seed=7))
        rebuilt = SequenceDatabase.from_transactions(rows)
        assert rebuilt == generate_database(SMALL, seed=7)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_any_seed_valid(self, seed):
        db = generate_database(SMALL.with_(num_customers=5), seed=seed)
        assert db.num_customers == 5
