"""Checkpoint/resume: the durable pass store and byte-identical restart.

Two layers: unit tests of :class:`repro.io.checkpoint.CheckpointStore`
(config binding, ordered replay, divergence and corruption errors), and
the end-to-end property the subsystem exists for — a mining run
interrupted after any number of completed passes resumes from disk and
produces results identical to an uninterrupted run, for every algorithm
× counting strategy × both storage paths.
"""

import json
import random

import pytest

from repro.core.passkey import pass_digest
from repro.core.phase import CountingOptions
from repro.db.database import CustomerSequence, SequenceDatabase
from repro.db.partitioned import PartitionedDatabase
from repro.io.checkpoint import (
    CheckpointError,
    CheckpointStore,
    pass_file_name,
)
from repro.miner import ALGORITHM_NAMES, MiningParams, mine

STRATEGIES = ("hashtree", "naive", "bitset", "vertical")

CONFIG = {"minsup": 0.25, "algorithm": "aprioriall", "input": "x.spmf"}


def small_db(seed: int = 11, customers: int = 30) -> SequenceDatabase:
    rng = random.Random(seed)
    records = [
        CustomerSequence(
            customer_id=cid,
            events=tuple(
                tuple(sorted(rng.sample(range(1, 12), rng.randint(1, 3))))
                for _ in range(rng.randint(1, 4))
            ),
        )
        for cid in range(1, customers + 1)
    ]
    return SequenceDatabase(records)


def mined(db, store, algorithm="aprioriall", strategy="hashtree", minsup=0.2):
    result = mine(
        db,
        MiningParams(
            minsup=minsup,
            algorithm=algorithm,
            counting=CountingOptions(strategy=strategy, checkpoint=store),
        ),
    )
    return [(p.sequence, p.count) for p in result.patterns]


class TestCheckpointStore:
    def test_attach_creates_then_reopens(self, tmp_path):
        store = CheckpointStore.attach(tmp_path / "ck", CONFIG)
        assert store.num_stored == 0
        assert CheckpointStore.read_config(tmp_path / "ck") == CONFIG
        again = CheckpointStore.attach(tmp_path / "ck", CONFIG)
        assert again.num_stored == 0

    def test_different_config_refused(self, tmp_path):
        CheckpointStore.attach(tmp_path / "ck", CONFIG)
        with pytest.raises(CheckpointError, match="different run config"):
            CheckpointStore.attach(tmp_path / "ck", {**CONFIG, "minsup": 0.5})

    def test_record_replay_round_trip_preserves_order_and_types(
        self, tmp_path
    ):
        digest = pass_digest("candidates", [(3, 1), (1, 2)])
        counts = {(3, 1): 7, (1, 2): 0}
        CheckpointStore.attach(tmp_path / "ck", CONFIG).record(
            "candidates", digest, counts
        )
        resumed = CheckpointStore.attach(tmp_path / "ck", CONFIG)
        assert resumed.num_stored == 1
        replayed = resumed.replay("candidates", digest)
        assert replayed == counts
        assert list(replayed) == list(counts)  # insertion order survives
        assert all(isinstance(key, tuple) for key in replayed)

    def test_items_kind_round_trips_int_keys(self, tmp_path):
        digest = pass_digest("items", ())
        CheckpointStore.attach(tmp_path / "ck", CONFIG).record(
            "items", digest, {5: 3, 2: 9}
        )
        replayed = CheckpointStore.attach(tmp_path / "ck", CONFIG).replay(
            "items", digest
        )
        assert replayed == {5: 3, 2: 9}
        assert all(isinstance(key, int) for key in replayed)

    def test_replay_past_end_returns_none_and_records_append(self, tmp_path):
        store = CheckpointStore.attach(tmp_path / "ck", CONFIG)
        digest = pass_digest("length2", ())
        assert store.replay("length2", digest) is None
        store.record("length2", digest, {(1, 2): 4})
        assert store.num_recorded == 1
        assert (tmp_path / "ck" / pass_file_name(0)).exists()

    def test_divergent_pass_detected(self, tmp_path):
        digest = pass_digest("candidates", [(1,)])
        CheckpointStore.attach(tmp_path / "ck", CONFIG).record(
            "candidates", digest, {(1,): 2}
        )
        resumed = CheckpointStore.attach(tmp_path / "ck", CONFIG)
        other = pass_digest("candidates", [(9,)])
        with pytest.raises(CheckpointError, match="diverged from checkpoint"):
            resumed.replay("candidates", other)

    def test_corrupt_pass_file_is_a_checkpoint_error(self, tmp_path):
        store = CheckpointStore.attach(tmp_path / "ck", CONFIG)
        digest = pass_digest("length2", ())
        store.record("length2", digest, {(1, 2): 4})
        (tmp_path / "ck" / pass_file_name(0)).write_text("{torn", encoding="utf-8")
        resumed = CheckpointStore.attach(tmp_path / "ck", CONFIG)
        with pytest.raises(CheckpointError, match="corrupt pass file"):
            resumed.replay("length2", digest)

    def test_corrupt_meta_is_a_checkpoint_error(self, tmp_path):
        (tmp_path / "ck").mkdir()
        (tmp_path / "ck" / "checkpoint.json").write_text("[]", encoding="utf-8")
        with pytest.raises(CheckpointError, match="checkpoint meta"):
            CheckpointStore.read_config(tmp_path / "ck")

    def test_pass_files_are_valid_json_with_stable_schema(self, tmp_path):
        store = CheckpointStore.attach(tmp_path / "ck", CONFIG)
        digest = pass_digest("items", ())
        store.record("items", digest, {1: 1})
        payload = json.loads(
            (tmp_path / "ck" / pass_file_name(0)).read_text(encoding="utf-8")
        )
        assert payload["format"] == "seqmine-checkpoint-pass"
        assert payload["kind"] == "items"
        assert payload["digest"] == digest
        assert payload["counts"] == {"1": 1}


class TestCheckpointedMining:
    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_full_replay_identical_all_algorithms_strategies(
        self, tmp_path, algorithm, strategy
    ):
        db = small_db()
        baseline = mined(db, None, algorithm, strategy)

        recording = CheckpointStore.attach(tmp_path / "ck", CONFIG)
        first = mined(db, recording, algorithm, strategy)
        assert first == baseline
        assert recording.num_recorded > 0

        replaying = CheckpointStore.attach(tmp_path / "ck", CONFIG)
        second = mined(db, replaying, algorithm, strategy)
        assert second == baseline
        assert replaying.num_recorded == 0
        assert replaying.num_replayed == recording.num_recorded

    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_partitioned_storage_replays_identically(
        self, tmp_path, algorithm
    ):
        db = small_db()
        pdb = PartitionedDatabase.from_database(
            db, tmp_path / "parts", partitions=3
        )
        baseline = mined(pdb, None, algorithm)

        recording = CheckpointStore.attach(tmp_path / "ck", CONFIG)
        assert mined(pdb, recording, algorithm) == baseline

        replaying = CheckpointStore.attach(tmp_path / "ck", CONFIG)
        assert mined(pdb, replaying, algorithm) == baseline
        assert replaying.num_recorded == 0

    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_resume_from_every_truncation_point(self, tmp_path, algorithm):
        """Simulate a crash after each completed pass by truncating the
        store to its first k pass files: the resumed run must replay
        exactly k and recount the rest, with identical results."""
        db = small_db()
        full = CheckpointStore.attach(tmp_path / "full", CONFIG)
        baseline = mined(db, full, algorithm)
        total = full.num_recorded

        for keep in range(total):
            directory = tmp_path / f"cut-{keep}"
            store = CheckpointStore.attach(directory, CONFIG)
            mined(db, store, algorithm)
            for index in range(keep, total):
                (directory / pass_file_name(index)).unlink()
            resumed = CheckpointStore.attach(directory, CONFIG)
            assert resumed.num_stored == keep
            assert mined(db, resumed, algorithm) == baseline
            assert resumed.num_replayed == keep
            assert resumed.num_recorded == total - keep

    def test_changed_threshold_diverges_mid_run(self, tmp_path):
        """A resumed run that would generate a different candidate set
        at a recorded position must fail loudly, not replay stale
        counts. (The CLI prevents this by binding the full mine
        configuration to the store; this exercises the backstop.)"""
        db = small_db()
        recording = CheckpointStore.attach(tmp_path / "ck", CONFIG)
        mined(db, recording, minsup=0.2)
        resumed = CheckpointStore.attach(tmp_path / "ck", CONFIG)
        with pytest.raises(CheckpointError, match="diverged"):
            mined(db, resumed, minsup=0.3)
