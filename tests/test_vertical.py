"""Unit and property tests for the vertical id-list counting backend.

Covers the temporal-join primitive against the greedy reference
(including >64-event masks crossing machine-word boundaries, ids
recurring within a customer, and empty intersections), the cross-pass
support-list memoization contract (pass k performs exactly |C_k| joins
when the previous pass's lists rolled forward), the backward-phase
fallback (stale longer generations are evicted on descent and misses are
rebuilt from the base lists), the once-per-mining-run inversion counter,
and pickling for spawn-based workers.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import vertical
from repro.core.bitset import CompiledDatabase
from repro.core.candidates import apriori_generate
from repro.core.counting import count_candidates
from repro.miner import MiningParams, mine
from repro.core.phase import CountingOptions
from repro.core.sequence import earliest_end_index, latest_start_index
from repro.core.vertical import (
    VerticalDatabase,
    count_on_the_fly_vertical,
    ensure_vertical,
    join_parent_lists,
    temporal_join,
)
from repro.db.database import SequenceDatabase
from tests import strategies as my
from tests.test_database import paper_db


def events(*ids_per_event):
    return tuple(frozenset(ids) for ids in ids_per_event)


def vdb_of(*customer_sequences) -> VerticalDatabase:
    return ensure_vertical(list(customer_sequences))


class TestInversion:
    def test_transposes_compiled_masks_by_reference(self):
        compiled = CompiledDatabase.compile([events({1}, {2}), events({2, 1})])
        vdb = VerticalDatabase.invert(compiled)
        assert set(vdb.id_lists) == {1, 2}
        assert vdb.id_lists[1] == {0: 0b01, 1: 0b1}
        assert vdb.id_lists[2] == {0: 0b10, 1: 0b1}
        assert vdb.event_counts == (2, 1)
        # Reference transpose, not a copy: the very same int objects.
        assert vdb.id_lists[2][0] is compiled[0].masks[2]
        assert vdb.compiled is compiled

    def test_missing_id_gets_shared_empty_list(self):
        vdb = vdb_of(events({1}))
        assert vdb.id_list(99) == {}
        assert vdb.base_list(99) == {}

    def test_inverted_once_per_mining_run(self):
        before = vertical.INVERT_CALLS
        params = MiningParams(
            minsup=0.25, counting=CountingOptions(strategy="vertical")
        )
        mine(paper_db(), params)
        assert vertical.INVERT_CALLS - before == 1

    def test_ensure_vertical_passes_through(self):
        vdb = vdb_of(events({1}))
        assert ensure_vertical(vdb) is vdb


class TestTemporalJoin:
    def test_basic_extension(self):
        # Customer 0: id occurs at events 2 and 5; prefix ends at 1 → 2.
        assert temporal_join({0: 1}, {0: 0b100100}) == {0: 2}

    def test_empty_intersection(self):
        # Disjoint customer sets join to nothing.
        assert temporal_join({0: 0, 2: 1}, {1: 0b10, 3: 0b1}) == {}
        assert temporal_join({}, {0: 0b1}) == {}

    def test_occurrence_not_after_prefix_end(self):
        # The id occurs only at/before the prefix end → strict "after" fails.
        assert temporal_join({0: 2}, {0: 0b111}) == {}

    def test_repeat_occurrences_pick_earliest_after(self):
        # Id recurs at 0, 3, 6; prefix end 0 → earliest-after is 3.
        assert temporal_join({0: 0}, {0: 0b1001001}) == {0: 3}

    def test_word_boundary_masks(self):
        # Occurrence at event 70: the shift crosses the 64-bit word
        # boundary, which arbitrary-precision masks must not care about.
        mask = (1 << 70) | (1 << 3)
        assert temporal_join({0: 3}, {0: mask}) == {0: 70}
        assert temporal_join({0: 70}, {0: mask}) == {}

    def test_repeat_customers_across_ids(self):
        # Two customers supporting the prefix; only one has the id after.
        prefix = {0: 1, 1: 4}
        masks = {0: 0b1000, 1: 0b1}
        assert temporal_join(prefix, masks) == {0: 3}

    @given(seq=my.id_event_sequences(max_id=5), pattern=my.id_sequences(max_id=5))
    @settings(max_examples=120)
    def test_chained_joins_match_greedy_reference(self, seq, pattern):
        """Rebuilding any sequence's list by chained joins reproduces the
        greedy earliest-end of the reference matcher, customer by
        customer."""
        vdb = vdb_of(seq)
        lst = vdb.cache.get(pattern)
        expected_end = earliest_end_index(pattern, seq)
        assert lst == ({} if expected_end is None else {0: expected_end})


class TestJoinParentLists:
    def test_suffix_filter_equals_plain_join(self):
        seqs = [
            events({1}, {2}, {3}),
            events({1, 2}, {3}, {1}),
            events({3}, {2}, {1}),
            events({2}, {3}),
        ]
        vdb = vdb_of(*seqs)
        prefix = vdb.cache.get((1, 2))
        suffix = vdb.cache.get((2, 3))
        masks = vdb.id_list(3)
        assert join_parent_lists(prefix, suffix, masks) == temporal_join(
            prefix, masks
        )

    def test_smaller_suffix_side_is_iterated_without_loss(self):
        # Prefix supported by 3 customers, suffix by 1: iterating the
        # suffix side must still find the single supporting customer.
        prefix = {0: 0, 1: 0, 2: 0}
        suffix = {1: 1}
        masks = {1: 0b10}
        assert join_parent_lists(prefix, suffix, masks) == {1: 1}


class TestLatestStartLists:
    @given(seq=my.id_event_sequences(max_id=5), pattern=my.id_sequences(max_id=5))
    @settings(max_examples=120)
    def test_matches_reference(self, seq, pattern):
        vdb = vdb_of(seq)
        lst = vdb.latest_start_list(pattern)
        expected = latest_start_index(pattern, seq)
        assert lst == ({} if expected is None else {0: expected})

    def test_memoized(self):
        vdb = vdb_of(events({1}, {2}))
        first = vdb.latest_start_list((1, 2))
        assert vdb.latest_start_list((1, 2)) is first


class TestOnTheFlyJoin:
    @given(
        sequences=st.lists(my.id_event_sequences(max_id=4), max_size=6),
        heads=st.sets(my.id_sequences(max_id=4, max_length=2), min_size=1, max_size=5),
        tails=st.sets(my.id_sequences(max_id=4, max_length=2), min_size=1, max_size=5),
    )
    @settings(max_examples=60)
    def test_matches_reference_generator(self, sequences, heads, tails):
        """Vertical OTF counting equals the per-customer otf_generate
        reference summed over customers."""
        from repro.core.dynamicsome import otf_generate

        vdb = ensure_vertical(sequences)
        got = count_on_the_fly_vertical(vdb, sorted(heads), sorted(tails))
        expected: dict = {}
        for seq in sequences:
            for candidate in otf_generate(heads, tails, seq):
                expected[candidate] = expected.get(candidate, 0) + 1
        assert got == expected


class TestCrossPassMemoization:
    def test_pass_k_is_one_join_per_candidate_when_lists_rolled_forward(self):
        seqs = [
            events({1}, {2}, {3}, {1}),
            events({1, 2}, {3}),
            events({2}, {1}, {3}),
        ]
        vdb = vdb_of(*seqs)
        pairs = [(a, b) for a in (1, 2, 3) for b in (1, 2, 3)]
        count_candidates(vdb, pairs, strategy="vertical")
        large2 = [(1, 2), (2, 3), (1, 3)]
        candidates, parents = apriori_generate(large2, with_parents=True)
        assert candidates  # the fixture must actually produce a C_3
        before = vdb.cache.joins
        counts = count_candidates(
            vdb, candidates, strategy="vertical", parents=parents
        )
        # Every parent list was memoized by the pass-2 count: exactly one
        # temporal join per candidate, no rebuild chain.
        assert vdb.cache.joins - before == len(candidates)
        anchor = count_candidates(seqs, candidates, strategy="hashtree")
        assert counts == anchor

    def test_cold_pass_rebuilds_and_still_matches(self):
        seqs = [events({1}, {2}, {3}), events({1}, {3}, {2})]
        vdb = vdb_of(*seqs)
        candidates = [(1, 2, 3), (1, 3, 2), (3, 2, 1)]
        before = vdb.cache.joins
        counts = count_candidates(vdb, candidates, strategy="vertical")
        # Cold cache: rebuild chains cost extra joins beyond one per
        # candidate.
        assert vdb.cache.joins - before > len(candidates)
        assert counts == count_candidates(seqs, candidates, strategy="hashtree")

    def test_retain_surviving_drops_only_losers_of_that_length(self):
        vdb = vdb_of(events({1}, {2}, {3}))
        count_candidates(vdb, [(1, 2), (2, 3), (3, 1)], strategy="vertical")
        vdb.cache.retain_surviving([(1, 2)])
        assert (1, 2) in vdb.cache
        assert (2, 3) not in vdb.cache
        # Base length-1 lists are untouched.
        assert (1,) in vdb.cache or vdb.cache.get((1,)) == {0: 0}

    def test_retain_surviving_with_empty_large_is_noop(self):
        vdb = vdb_of(events({1}, {2}))
        count_candidates(vdb, [(1, 2)], strategy="vertical")
        vdb.cache.retain_surviving([])
        assert (1, 2) in vdb.cache


class TestBackwardFallbackInvalidation:
    def test_descending_pass_evicts_stale_longer_generations(self):
        """The backward walk counts longest-first; entering a shorter pass
        must invalidate (evict) the longer generations and rebuild what it
        needs from the base lists."""
        seqs = [events({1}, {2}, {3}, {4})] * 2
        vdb = vdb_of(*seqs)
        counts4 = count_candidates(vdb, [(1, 2, 3, 4)], strategy="vertical")
        assert counts4 == {(1, 2, 3, 4): 2}
        assert vdb.cache.cached_lengths() == {1, 3, 4}
        counts2 = count_candidates(vdb, [(2, 3), (4, 1)], strategy="vertical")
        assert counts2 == {(2, 3): 2, (4, 1): 0}
        # Lengths 3 and 4 are gone; only the new generation (and base)
        # remain.
        assert vdb.cache.cached_lengths() <= {1, 2}

    def test_backward_phase_vertical_equals_hashtree(self):
        from repro.core.backward import backward_phase
        from repro.core.phase import SequencePhaseResult
        from repro.core.stats import AlgorithmStats
        from repro.db.transform import transform_database
        from repro.itemsets.apriori import find_litemsets
        from repro.itemsets.litemsets import LitemsetCatalog

        db = SequenceDatabase.from_sequences([[(1,), (2,), (3,)]] * 2)
        catalog = LitemsetCatalog.from_result(find_litemsets(db, 1.0))
        tdb = transform_database(db, catalog)
        threshold = db.threshold(1.0)
        l1 = tdb.catalog.one_sequence_supports()
        a, b, c = sorted(i for (i,) in l1)
        candidates = {2: [(a, b), (b, c), (a, c)], 3: [(a, b, c)]}
        results = {}
        for strategy in ("hashtree", "vertical"):
            result = SequencePhaseResult(stats=AlgorithmStats("test"))
            result.large_by_length[1] = l1
            backward_phase(
                tdb,
                threshold,
                result,
                {length: list(cands) for length, cands in candidates.items()},
                counted_lengths={1},
                counting=CountingOptions(strategy=strategy),
            )
            results[strategy] = result.large_by_length
        assert results["vertical"] == results["hashtree"]


class TestPickling:
    def test_roundtrip_preserves_lists_and_counts(self):
        seqs = [events({1}, {2}), events({2}, {1})]
        vdb = vdb_of(*seqs)
        count_candidates(vdb, [(1, 2), (2, 1)], strategy="vertical")
        clone = pickle.loads(pickle.dumps(vdb))
        assert clone.id_lists == vdb.id_lists
        assert clone.event_counts == vdb.event_counts
        assert (1, 2) in clone.cache
        assert count_candidates(
            clone, [(1, 2), (2, 1), (1, 1)], strategy="vertical"
        ) == {(1, 2): 1, (2, 1): 1, (1, 1): 0}


class TestTimedRejectsVertical:
    def test_rejected_with_clear_message(self):
        import pytest

        from repro.extensions.timeconstraints import mine_time_constrained

        with pytest.raises(ValueError, match="vertical.*not supported"):
            mine_time_constrained([], 0.5, strategy="vertical")
