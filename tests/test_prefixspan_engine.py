"""The production PrefixSpan engine (:mod:`repro.core.prefixspan`).

Four layers of evidence, mirroring how the engine is wired in:

* **Unit**: paper example, projection helpers, result accessors,
  validation, and the pseudo-projection invariants.
* **Differential**: the engine against the independent depth-first
  baseline on random databases (the searches share projection helpers
  but nothing else), across ``max_pattern_length`` caps.
* **Storage/parallel equivalence**: partitioned (out-of-core streaming)
  and seed-sharded parallel runs must be byte-identical to the serial
  in-memory run.
* **Boundary pins**: the exact ``len(prefix) == max_pattern_length``
  semantics (s-extensions blocked, i-extensions allowed — the cap
  counts *events*) and the ``support_threshold`` rounding boundaries,
  agreed across all four algorithms.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.prefixspan import prefixspan_mine
from repro.core.maximal import maximal_sequences
from repro.core.prefixspan import (
    count_item_supports,
    first_event_containing,
    first_event_with_item,
    grow_seed_range,
    mine_prefixspan,
    project_events,
)
from repro.core.protocols import PartitionedRecordStream
from repro.db.database import SequenceDatabase, support_threshold
from repro.db.partitioned import PartitionedDatabase
from repro.miner import ALL_ALGORITHM_NAMES, MiningParams, mine
from tests import strategies as my
from tests.test_database import paper_db


def frequent_of(db, minsup, **kwargs):
    return mine_prefixspan(db, minsup, **kwargs).frequent


def baseline_frequent(db, minsup, max_pattern_length=None):
    return {
        tuple(frozenset(event) for event in p.sequence): p.count
        for p in prefixspan_mine(
            db, minsup, max_pattern_length=max_pattern_length
        )
    }


class TestHelpers:
    def test_project_events_filters_and_drops_empty(self):
        events = [(1, 2), (3,), (2, 4)]
        assert project_events(events, frozenset({2, 4})) == (
            frozenset({2}),
            frozenset({2, 4}),
        )

    def test_project_events_keeps_order(self):
        events = [(5,), (1,), (5, 1)]
        assert project_events(events, frozenset({1, 5})) == (
            frozenset({5}),
            frozenset({1}),
            frozenset({1, 5}),
        )

    def test_first_event_probes(self):
        events = (frozenset({1}), frozenset({1, 2}), frozenset({2, 3}))
        assert first_event_with_item(events, 2, 0) == 1
        assert first_event_with_item(events, 2, 2) == 2
        assert first_event_with_item(events, 9, 0) is None
        assert first_event_containing(events, frozenset({1, 2}), 0) == 1
        assert first_event_containing(events, frozenset({1, 2}), 2) is None

    def test_count_item_supports_is_per_customer(self):
        db = SequenceDatabase.from_sequences(
            [[(1,), (1,), (1, 2)], [(2,)]]
        )
        counts = count_item_supports(db)
        assert counts == {1: 1, 2: 2}


class TestEngine:
    def test_paper_example_maximal(self):
        result = mine_prefixspan(paper_db(), 0.25)
        maximal = maximal_sequences(result.frequent)
        rendered = sorted(
            tuple(tuple(sorted(event)) for event in events)
            for events in maximal
        )
        assert rendered == [((30,), (40, 70)), ((30,), (90,))]

    def test_paper_example_matches_baseline_exactly(self):
        db = paper_db()
        assert frequent_of(db, 0.25) == baseline_frequent(db, 0.25)

    def test_empty_database(self):
        result = mine_prefixspan(SequenceDatabase([]), 0.5)
        assert result.frequent == {}
        assert result.num_customers == 0

    def test_no_frequent_items(self):
        db = SequenceDatabase.from_sequences([[(1,)], [(2,)], [(3,)]])
        assert frequent_of(db, 1.0) == {}

    def test_minsup_validation(self):
        db = paper_db()
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                mine_prefixspan(db, bad)
        with pytest.raises(ValueError):
            mine_prefixspan(db, 0.5, max_pattern_length=0)

    def test_result_accessors(self):
        db = paper_db()
        result = mine_prefixspan(db, 0.25)
        # Every large itemset surfaces as a single-event frequent
        # sequence, so the litemset surrogate matches the real phase.
        from repro.itemsets.apriori import find_litemsets

        litemsets = find_litemsets(db, 0.25)
        assert result.litemset_supports() == dict(litemsets.supports)
        by_length = result.counts_by_length()
        assert by_length[1] == sum(
            1 for events in result.frequent if len(events) == 1
        )
        assert sum(by_length.values()) == len(result.frequent)

    def test_stats_record_seed_and_growth_rounds(self):
        result = mine_prefixspan(paper_db(), 0.25)
        phases = [p.phase for p in result.stats.passes]
        assert phases[0] == "items"
        assert all(phase == "growth" for phase in phases[1:])
        assert len(phases) > 1

    def test_grow_seed_range_is_disjoint_union(self):
        db = paper_db()
        result = mine_prefixspan(db, 0.25)
        threshold = db.threshold(0.25)
        seeds = sorted(
            item
            for item, count in count_item_supports(db).items()
            if count >= threshold
        )
        frequent_items = frozenset(seeds)
        merged = {}
        for seed in seeds:
            part = grow_seed_range(
                db, [seed], frequent_items, threshold, None
            )
            assert not (merged.keys() & part.keys())
            merged.update(part)
        assert merged == result.frequent


class TestDifferentialAgainstBaseline:
    @given(
        customer_events=st.lists(
            my.event_lists(max_item=6, max_size=3, max_events=4),
            min_size=1,
            max_size=6,
        ),
        minsup=st.sampled_from([0.2, 0.4, 0.6, 1.0]),
        cap=st.sampled_from([None, 1, 2, 3]),
    )
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_full_frequent_set_matches_baseline(
        self, customer_events, minsup, cap
    ):
        db = SequenceDatabase.from_sequences(customer_events)
        assert frequent_of(
            db, minsup, max_pattern_length=cap
        ) == baseline_frequent(db, minsup, max_pattern_length=cap)


class TestStorageAndParallelEquivalence:
    def test_partitioned_database_satisfies_stream_protocol(self, tmp_path):
        pdb = PartitionedDatabase.from_database(
            paper_db(), tmp_path / "p", partitions=2
        )
        assert isinstance(pdb, PartitionedRecordStream)
        assert not isinstance(paper_db(), PartitionedRecordStream)

    @pytest.mark.parametrize("partitions", [1, 2, 5])
    def test_partitioned_matches_in_memory(self, tmp_path, partitions):
        db = paper_db()
        pdb = PartitionedDatabase.from_database(
            db, tmp_path / f"p{partitions}", partitions=partitions
        )
        assert frequent_of(pdb, 0.25) == frequent_of(db, 0.25)

    def test_partitioned_with_delta_generations(self, tmp_path):
        """Appended deltas (overlays spliced at read time) stream
        through ``iter_partition`` like base customers."""
        db = paper_db()
        base = SequenceDatabase(list(db)[:3])
        pdb = PartitionedDatabase.from_database(
            base, tmp_path / "p", partitions=2
        )
        pdb.append_delta(iter(list(db)[3:]))
        assert frequent_of(pdb, 0.25) == frequent_of(db, 0.25)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_parallel_matches_serial(self, workers):
        db = paper_db()
        assert frequent_of(db, 0.25, workers=workers) == frequent_of(
            db, 0.25
        )

    def test_parallel_chunk_size_one(self):
        """One seed per shard — the maximally sharded decomposition."""
        db = paper_db()
        assert frequent_of(
            db, 0.25, workers=2, chunk_size=1
        ) == frequent_of(db, 0.25)

    def test_parallel_partitioned_matches_serial(self, tmp_path):
        db = paper_db()
        pdb = PartitionedDatabase.from_database(
            db, tmp_path / "p", partitions=3
        )
        assert frequent_of(pdb, 0.25, workers=2) == frequent_of(db, 0.25)


class TestMaxPatternLengthBoundary:
    """Pin the exact cap semantics at ``len(prefix) == max_pattern_length``.

    The cap counts **events**. An s-extension opens a new event, so it is
    blocked once the prefix holds ``cap`` events; an i-extension only
    widens the last event, so it is still allowed at the cap. Baseline,
    engine, and the core (transformed-alphabet) miner must agree — in the
    id alphabet a sequence of k litemset ids has exactly k events, so the
    three notions of "length" coincide.
    """

    #: Both customers support <(1)(2)> and <(1)(2 3)>: at cap 2 the
    #: prefix (1)(2) sits exactly at the boundary — growing 3 *into* the
    #: last event is legal (still 2 events), appending (3) is not.
    BOUNDARY_DB = [
        [(1,), (2, 3)],
        [(1,), (2, 3), (4,)],
    ]

    def test_i_extension_allowed_at_cap(self):
        db = SequenceDatabase.from_sequences(self.BOUNDARY_DB)
        frequent = frequent_of(db, 1.0, max_pattern_length=2)
        assert (frozenset({1}), frozenset({2, 3})) in frequent

    def test_s_extension_blocked_at_cap(self):
        db = SequenceDatabase.from_sequences(self.BOUNDARY_DB)
        frequent = frequent_of(db, 0.5, max_pattern_length=2)
        assert all(len(events) <= 2 for events in frequent)
        # Without the cap, the 3-event sequence is frequent at 0.5.
        uncapped = frequent_of(db, 0.5)
        assert any(len(events) == 3 for events in uncapped)

    @pytest.mark.parametrize("cap", [1, 2, 3])
    def test_all_four_algorithms_agree_at_cap(self, cap):
        db = paper_db()
        answers = {}
        for algorithm in ALL_ALGORITHM_NAMES:
            result = mine(
                db,
                MiningParams(
                    minsup=0.25,
                    algorithm=algorithm,
                    max_pattern_length=cap,
                ),
            )
            answers[algorithm] = [
                (p.sequence, p.count) for p in result.patterns
            ]
        baseline = [
            (p.sequence, p.count)
            for p in prefixspan_mine(
                db, 0.25, max_pattern_length=cap, maximal=True
            )
        ]
        for algorithm, got in answers.items():
            assert got == baseline, algorithm

    @given(
        customer_events=st.lists(
            my.event_lists(max_item=5, max_size=2, max_events=4),
            min_size=1,
            max_size=5,
        ),
        cap=st.sampled_from([1, 2]),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_property_engine_and_baseline_agree_at_cap(
        self, customer_events, cap
    ):
        db = SequenceDatabase.from_sequences(customer_events)
        assert frequent_of(
            db, 0.5, max_pattern_length=cap
        ) == baseline_frequent(db, 0.5, max_pattern_length=cap)


class TestSupportThresholdBoundaries:
    """``support_threshold`` rounding boundaries, agreed by all four
    algorithms (ISSUE 9 satellite; src/repro/db/database.py:102).

    The interesting minsup values are where ``minsup * num_customers``
    is exactly integral — the paper's "min_support customers or more"
    must include equality — and one floating-point ulp to either side,
    where naive ``ceil`` without the epsilon guard would jump a whole
    customer.
    """

    @pytest.mark.parametrize("num_customers", [4, 5, 8, 10])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_integral_and_ulp_neighbors(self, num_customers, k):
        if k > num_customers:
            pytest.skip("threshold above database size")
        exact = k / num_customers
        for minsup in (
            math.nextafter(exact, 0.0),
            exact,
            math.nextafter(exact, 1.0),
        ):
            got = support_threshold(minsup, num_customers)
            # The epsilon guard absorbs ±1ulp noise around an integral
            # product: all three neighbors land on the same threshold.
            assert got == max(1, k), (minsup, num_customers)

    @pytest.mark.parametrize(
        "minsup",
        [
            2 / 5,
            math.nextafter(2 / 5, 0.0),
            math.nextafter(2 / 5, 1.0),
            3 / 5,
            math.nextafter(3 / 5, 0.0),
        ],
    )
    def test_all_four_algorithms_agree_at_boundary(self, minsup):
        db = paper_db()  # 5 customers
        answers = []
        for algorithm in ALL_ALGORITHM_NAMES:
            result = mine(db, MiningParams(minsup=minsup, algorithm=algorithm))
            answers.append([(p.sequence, p.count) for p in result.patterns])
        assert all(got == answers[0] for got in answers[1:])
        assert answers[0], "boundary minsup should still admit patterns"

    @given(
        customer_events=st.lists(
            my.event_lists(max_item=5, max_size=2, max_events=3),
            min_size=2,
            max_size=6,
        ),
        k=st.integers(min_value=1, max_value=3),
        direction=st.sampled_from([-1, 0, 1]),
    )
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_property_boundary_minsup_identical_pattern_sets(
        self, customer_events, k, direction
    ):
        db = SequenceDatabase.from_sequences(customer_events)
        n = db.num_customers
        if k > n:
            return
        exact = k / n
        if direction < 0:
            minsup = math.nextafter(exact, 0.0)
        elif direction > 0:
            minsup = min(1.0, math.nextafter(exact, 1.0))
        else:
            minsup = exact
        answers = []
        for algorithm in ALL_ALGORITHM_NAMES:
            result = mine(db, MiningParams(minsup=minsup, algorithm=algorithm))
            answers.append([(p.sequence, p.count) for p in result.patterns])
        assert all(got == answers[0] for got in answers[1:])
