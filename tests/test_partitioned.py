"""Out-of-core partitioned mining: equivalence with the in-memory path.

The acceptance contract of the partitioned subsystem: for the same data,
partitioned mining returns the *exact* pattern set (sequences and
support counts) of in-memory mining — for all three algorithms, the
counting strategies, serial and sharded-parallel. Plus unit coverage of
the partitioned pipeline pieces: streamed transform, the on-disk compile
cache, the partition-sharded executor, and memory-oriented behaviors.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitset
from repro.miner import MiningParams, mine, mine_sequential_patterns
from repro.core.phase import CountingOptions
from repro.datagen.generator import (
    generate_database,
    iter_customer_sequences,
)
from repro.datagen.params import SyntheticParams
from repro.db.partitioned import (
    PartitionedDatabase,
    partitions_for_budget,
    partitions_for_budget_from_text,
)
from repro.itemsets.apriori import find_litemsets
from repro.itemsets.litemsets import LitemsetCatalog
from repro.db.database import CustomerSequence, SequenceDatabase
from repro.db.transform import transform_database
from tests.strategies import event_lists

SMALL_PARAMS = SyntheticParams(
    num_customers=60,
    num_pattern_sequences=10,
    num_pattern_itemsets=30,
    num_items=40,
    avg_transactions_per_customer=4.0,
    avg_items_per_transaction=2.0,
    avg_pattern_sequence_length=2.5,
    avg_pattern_itemset_size=1.2,
)


def patterns_of(result):
    return [(str(p.sequence), p.count) for p in result.patterns]


@pytest.fixture(scope="module")
def small_db():
    return generate_database(SMALL_PARAMS, seed=7)


@pytest.fixture(scope="module")
def reference(small_db):
    return patterns_of(mine_sequential_patterns(small_db, 0.1))


class TestMiningEquivalence:
    """The acceptance matrix: 3 algorithms × strategies × serial/parallel."""

    @pytest.mark.parametrize(
        "algorithm", ["aprioriall", "apriorisome", "dynamicsome"]
    )
    @pytest.mark.parametrize("strategy", ["hashtree", "bitset", "vertical"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_partitioned_equals_in_memory(
        self, tmp_path, small_db, reference, algorithm, strategy, workers
    ):
        pdb = PartitionedDatabase.from_database(
            small_db, tmp_path / "parts", partitions=4
        )
        result = mine(
            pdb,
            MiningParams(
                minsup=0.1,
                algorithm=algorithm,
                counting=CountingOptions(strategy=strategy, workers=workers),
            ),
        )
        assert patterns_of(result) == reference

    def test_naive_strategy_partitioned(self, tmp_path, small_db, reference):
        pdb = PartitionedDatabase.from_database(
            small_db, tmp_path / "parts", partitions=3
        )
        result = mine(
            pdb,
            MiningParams(minsup=0.1, counting=CountingOptions(strategy="naive")),
        )
        assert patterns_of(result) == reference

    def test_single_partition_degenerates_gracefully(
        self, tmp_path, small_db, reference
    ):
        pdb = PartitionedDatabase.from_database(
            small_db, tmp_path / "parts", partitions=1
        )
        result = mine_sequential_patterns(pdb, 0.1)
        assert patterns_of(result) == reference

    def test_more_partitions_than_customers(self, tmp_path):
        db = SequenceDatabase.from_sequences([[(1,), (2,)], [(1,), (2,)]])
        pdb = PartitionedDatabase.from_database(
            db, tmp_path / "parts", partitions=5
        )
        result = mine_sequential_patterns(pdb, 1.0)
        assert [str(p.sequence) for p in result.patterns] == ["<(1)(2)>"]

    @given(customer_events=st.lists(event_lists(), min_size=1, max_size=6),
           partitions=st.integers(min_value=1, max_value=4),
           minsup=st.sampled_from([0.3, 0.5, 1.0]))
    @settings(max_examples=20, deadline=None)
    def test_property_partitioned_equals_in_memory(
        self, tmp_path_factory, customer_events, partitions, minsup
    ):
        tmp_path = tmp_path_factory.mktemp("pdb")
        db = SequenceDatabase.from_sequences(customer_events)
        pdb = PartitionedDatabase.from_database(
            db, tmp_path / "parts", partitions=partitions
        )
        expected = patterns_of(mine_sequential_patterns(db, minsup))
        got = patterns_of(mine_sequential_patterns(pdb, minsup))
        assert got == expected


class TestStreamedPipelinePieces:
    def test_streaming_generator_matches_in_memory_generation(self):
        db = generate_database(SMALL_PARAMS, seed=11)
        streamed = list(iter_customer_sequences(SMALL_PARAMS, seed=11))
        assert SequenceDatabase(streamed) == db

    def test_litemset_phase_streams_partitions(self, tmp_path, small_db):
        pdb = PartitionedDatabase.from_database(
            small_db, tmp_path / "parts", partitions=4
        )
        assert (
            find_litemsets(pdb, 0.1).supports
            == find_litemsets(small_db, 0.1).supports
        )

    def test_transform_matches_in_memory(self, tmp_path, small_db):
        pdb = PartitionedDatabase.from_database(
            small_db, tmp_path / "parts", partitions=4
        )
        catalog = LitemsetCatalog.from_result(find_litemsets(small_db, 0.1))
        tdb_mem = transform_database(small_db, catalog)
        tdb_part = transform_database(pdb, catalog)
        assert tdb_part.num_customers == tdb_mem.num_customers
        assert len(tdb_part) == len(tdb_mem)
        assert tdb_part.max_sequence_length == tdb_mem.max_sequence_length
        assert tdb_part.num_dropped_customers == tdb_mem.num_dropped_customers
        # Same multiset of transformed sequences (partition order differs
        # from customer order; counting is order-independent).
        assert sorted(
            tuple(sorted(e) for e in s) for s in tdb_part.sequences
        ) == sorted(tuple(sorted(e) for e in s) for s in tdb_mem.sequences)

    def test_transform_rejects_unknown_type(self):
        with pytest.raises(TypeError, match="cannot transform"):
            transform_database(object(), None)

    def test_compile_cache_written_once_and_reused(self, tmp_path, small_db):
        pdb = PartitionedDatabase.from_database(
            small_db, tmp_path / "parts", partitions=3
        )
        catalog = LitemsetCatalog.from_result(find_litemsets(small_db, 0.1))
        tdb = transform_database(pdb, catalog)
        before = bitset.COMPILE_CALLS
        tdb.sequences.prepare("bitset")
        after_first = bitset.COMPILE_CALLS
        assert after_first - before == 3  # once per partition
        caches = sorted(
            p.name for p in (tmp_path / "parts" / "transformed").glob("*.pkl")
        )
        assert caches == [
            "tpart-00000.compiled.pkl",
            "tpart-00001.compiled.pkl",
            "tpart-00002.compiled.pkl",
        ]
        tdb.sequences.prepare("bitset")  # idempotent: caches hit
        assert bitset.COMPILE_CALLS == after_first
        loaded = tdb.sequences.load_prepared(0)
        assert isinstance(loaded, bitset.CompiledDatabase)
        assert bitset.COMPILE_CALLS == after_first  # deserialized, not rebuilt

    def test_retransform_invalidates_stale_compile_cache(
        self, tmp_path, small_db
    ):
        pdb = PartitionedDatabase.from_database(
            small_db, tmp_path / "parts", partitions=2
        )
        catalog_lo = LitemsetCatalog.from_result(find_litemsets(small_db, 0.1))
        tdb = transform_database(pdb, catalog_lo)
        tdb.sequences.prepare("bitset")
        cache = tmp_path / "parts" / "transformed" / "tpart-00000.compiled.pkl"
        assert cache.exists()
        # A new transform (e.g. a different minsup's catalog) must not
        # leave compiled forms of the previous alphabet behind.
        catalog_hi = LitemsetCatalog.from_result(find_litemsets(small_db, 0.5))
        transform_database(pdb, catalog_hi)
        assert not cache.exists()

    def test_partitioned_sequences_picklable_and_small(
        self, tmp_path, small_db
    ):
        pdb = PartitionedDatabase.from_database(
            small_db, tmp_path / "parts", partitions=4
        )
        catalog = LitemsetCatalog.from_result(find_litemsets(small_db, 0.1))
        tdb = transform_database(pdb, catalog)
        payload = pickle.dumps(tdb.sequences)
        # The executor ships this to workers: paths and counts only —
        # it must stay far smaller than the data it describes.
        assert len(payload) < 2048
        clone = pickle.loads(payload)
        assert list(clone) == list(tdb.sequences)

    def test_iteration_is_repeatable(self, tmp_path, small_db):
        pdb = PartitionedDatabase.from_database(
            small_db, tmp_path / "parts", partitions=3
        )
        assert list(pdb) == list(pdb)  # multi-pass phases re-iterate

    def test_support_count_streaming(self, tmp_path, small_db):
        pdb = PartitionedDatabase.from_database(
            small_db, tmp_path / "parts", partitions=3
        )
        result = mine_sequential_patterns(small_db, 0.1)
        pattern = result.patterns[0]
        assert pdb.support_count(pattern.sequence) == pattern.count
        assert pdb.support(pattern.sequence) == pytest.approx(
            pattern.count / small_db.num_customers
        )

    def test_failed_overwrite_leaves_no_stale_manifest(self, tmp_path):
        """A conversion that dies mid-stream must not leave the previous
        database's manifest governing partially overwritten partitions —
        the directory must read as 'no database here' afterwards."""
        directory = tmp_path / "parts"
        db = SequenceDatabase.from_sequences([[(1,)], [(2,)], [(3,)]])
        PartitionedDatabase.from_database(db, directory, partitions=2)

        def poisoned():
            yield CustomerSequence(customer_id=1, events=((9,),))
            raise OSError("stream died")

        with pytest.raises(OSError, match="stream died"):
            PartitionedDatabase.create(
                directory, poisoned(), partitions=2, overwrite=True
            )
        with pytest.raises(ValueError, match="missing manifest.json"):
            PartitionedDatabase.open(directory)
        # The partial partitions carry no footer, so even reading one
        # directly is rejected rather than yielding a record prefix.
        from repro.io.binlog import BinlogFormatError, BinlogReader

        with pytest.raises(BinlogFormatError):
            BinlogReader(directory / "part-00000.binlog")

    def test_overwrite_removes_stale_higher_partitions(self, tmp_path):
        directory = tmp_path / "parts"
        db = SequenceDatabase.from_sequences([[(1,)]] * 6)
        PartitionedDatabase.from_database(db, directory, partitions=6)
        PartitionedDatabase.from_database(
            db, directory, partitions=2, overwrite=True
        )
        assert sorted(p.name for p in directory.glob("part-*.binlog")) == [
            "part-00000.binlog",
            "part-00001.binlog",
        ]
        assert PartitionedDatabase.open(directory).num_customers == 6

    def test_iter_unordered_same_customers(self, tmp_path, small_db):
        pdb = PartitionedDatabase.from_database(
            small_db, tmp_path / "parts", partitions=3
        )
        assert sorted(
            c.customer_id for c in pdb.iter_unordered()
        ) == [c.customer_id for c in pdb]

    def test_create_requires_ascending_ids(self, tmp_path):
        db = SequenceDatabase.from_sequences([[(1,)], [(2,)]])
        shuffled = list(db)[::-1]
        with pytest.raises(ValueError, match="ascending id order"):
            PartitionedDatabase.create(
                tmp_path / "parts", iter(shuffled), partitions=2
            )


class TestBudget:
    def test_partitions_for_budget_scales(self):
        one_mb = 1024 * 1024
        assert partitions_for_budget(one_mb, 1024.0) == 1
        small = partitions_for_budget(10 * one_mb, 64.0)
        large = partitions_for_budget(100 * one_mb, 64.0)
        assert small < large

    def test_zero_budget_rejected(self):
        with pytest.raises(ValueError, match="max-memory-mb"):
            partitions_for_budget(1024, 0.0)

    def test_text_estimate_scales_down(self):
        # Text bytes are scaled to estimated binlog bytes first, so the
        # same byte count partitions *less* than raw binlog bytes would.
        one_gb = 1024**3
        assert partitions_for_budget_from_text(
            one_gb, 64.0
        ) < partitions_for_budget(one_gb, 64.0)


class TestPartitionedParallelSharding:
    def test_parallel_counts_match_serial(self, tmp_path, small_db):
        from repro.core.candidates import apriori_generate
        from repro.core.counting import count_candidates, count_length2

        pdb = PartitionedDatabase.from_database(
            small_db, tmp_path / "parts", partitions=4
        )
        catalog = LitemsetCatalog.from_result(find_litemsets(small_db, 0.1))
        tdb = transform_database(pdb, catalog)
        sequences = tdb.sequences
        pairs = count_length2(sequences)
        assert count_length2(sequences, workers=2) == pairs
        threshold = pdb.threshold(0.1)
        large2 = sorted(p for p, c in pairs.items() if c >= threshold)
        candidates = apriori_generate(large2)
        for strategy in ("hashtree", "bitset", "vertical"):
            sequences.prepare(strategy)
            serial = count_candidates(sequences, candidates, strategy=strategy)
            sharded = count_candidates(
                sequences, candidates, strategy=strategy, workers=2
            )
            assert sharded == serial, strategy
