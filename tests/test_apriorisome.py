"""Behavioral tests for AprioriSome: the next(k) policy, forward skipping,
and backward containment pruning."""

import pytest

from repro.core.apriorisome import NextLengthPolicy, apriori_some
from repro.db.database import SequenceDatabase
from repro.db.transform import transform_database
from repro.itemsets.apriori import find_litemsets
from repro.itemsets.litemsets import LitemsetCatalog


def transformed(db, minsup):
    catalog = LitemsetCatalog.from_result(find_litemsets(db, minsup))
    return transform_database(db, catalog), db.threshold(minsup)


def chain_db(length=6, customers=6):
    return SequenceDatabase.from_sequences(
        [[(i,) for i in range(1, length + 1)] for _ in range(customers)]
    )


class TestNextLengthPolicy:
    def test_default_breakpoints(self):
        policy = NextLengthPolicy()
        assert policy.next_length(4, 0.5) == 5
        assert policy.next_length(4, 0.70) == 6
        assert policy.next_length(4, 0.78) == 7
        assert policy.next_length(4, 0.83) == 8
        assert policy.next_length(4, 0.99) == 9

    def test_length_one_always_counts_two(self):
        policy = NextLengthPolicy()
        assert policy.next_length(1, 1.0) == 2
        assert policy.next_length(1, 0.0) == 2

    def test_breakpoint_boundaries_are_exclusive(self):
        policy = NextLengthPolicy()
        assert policy.next_length(3, 0.666) == 5  # not < 0.666 → next band
        assert policy.next_length(3, 0.85) == 8  # falls through to max_skip

    def test_validation(self):
        with pytest.raises(ValueError):
            NextLengthPolicy(breakpoints=((0.8, 1), (0.5, 2)))
        with pytest.raises(ValueError):
            NextLengthPolicy(breakpoints=((0.5, 0),))
        with pytest.raises(ValueError):
            NextLengthPolicy(max_skip=0)

    def test_custom_never_skip(self):
        policy = NextLengthPolicy(breakpoints=((2.0, 1),), max_skip=1)
        for hit in (0.0, 0.5, 1.0):
            assert policy.next_length(7, hit) == 8


class TestForwardSkipping:
    def test_skips_lengths_on_dense_data(self):
        """On the all-identical chain database the hit ratio at length 3 is
        1.0, so the policy jumps max_skip ahead and the backward phase
        fills the gap."""
        tdb, threshold = transformed(chain_db(6, 6), 1.0)
        result = apriori_some(tdb, threshold)
        stats = result.stats
        forward_lengths = {p.length for p in stats.passes if p.phase == "forward"}
        backward_lengths = {p.length for p in stats.passes if p.phase == "backward"}
        assert forward_lengths == {2, 3}
        assert backward_lengths == {4, 5, 6}
        # Lengths 4 and 5 are *not* reported: their candidates were all
        # contained in the large 6-sequence, so AprioriSome never counted
        # them — that skipped work is exactly its advantage.
        assert {k: len(v) for k, v in result.large_by_length.items()} == {
            1: 6,
            2: 15,
            3: 20,
            6: 1,
        }

    def test_backward_pruning_skips_contained_candidates(self):
        tdb, threshold = transformed(chain_db(6, 6), 1.0)
        result = apriori_some(tdb, threshold)
        stats = result.stats
        # C_6's single candidate is counted (nothing longer exists), and
        # every C_5 / C_4 candidate is contained in the large 6-sequence,
        # so the backward passes at 5 and 4 count nothing.
        by_length = {p.length: p for p in stats.passes if p.phase == "backward"}
        assert by_length[6].num_candidates == 1
        assert by_length[5].num_candidates == 0
        assert by_length[4].num_candidates == 0
        assert stats.skipped_by_containment == 6 + 15  # |C_5| + |C_4|

    def test_never_skip_policy_counts_everything_forward(self):
        tdb, threshold = transformed(chain_db(5, 4), 1.0)
        policy = NextLengthPolicy(breakpoints=((2.0, 1),), max_skip=1)
        result = apriori_some(tdb, threshold, next_policy=policy)
        stats = result.stats
        assert all(p.phase != "backward" for p in stats.passes)
        assert stats.skipped_by_containment == 0

    def test_uncounted_candidates_generated_from_candidates(self):
        """With a max_skip jump the C-chain grows from candidate sets; the
        result must still be exact."""
        tdb, threshold = transformed(chain_db(6, 6), 1.0)
        aggressive = NextLengthPolicy(breakpoints=((0.01, 5),), max_skip=5)
        result = apriori_some(tdb, threshold, next_policy=aggressive)
        # Only lengths 1, 2 were counted forward; the backward phase
        # counts 6 and prunes everything at 3-5 as contained in it.
        assert {k: len(v) for k, v in result.large_by_length.items()} == {
            1: 6,
            2: 15,
            6: 1,
        }


class TestEdgeCases:
    def test_threshold_validation(self):
        tdb, _ = transformed(chain_db(3, 2), 1.0)
        with pytest.raises(ValueError):
            apriori_some(tdb, 0)

    def test_no_litemsets(self):
        db = SequenceDatabase.from_sequences([[(1,)], [(2,)]])
        tdb, threshold = transformed(db, 1.0)
        result = apriori_some(tdb, threshold)
        assert result.large_by_length == {}

    def test_max_length_cap(self):
        tdb, threshold = transformed(chain_db(5, 4), 1.0)
        result = apriori_some(tdb, threshold, max_length=3)
        assert max(result.large_by_length) == 3

    def test_empty_length_entries_removed(self):
        tdb, threshold = transformed(chain_db(2, 3), 1.0)
        result = apriori_some(tdb, threshold)
        assert all(result.large_by_length.values())
