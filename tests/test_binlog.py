"""Binlog format and PartitionedDatabase round-trip / corruption tests.

The round-trip property the out-of-core path rests on: any database that
goes through disk partitions comes back *identical* — SPMF → partitions
→ SPMF is byte-identical, CSV → partitions reproduces the same sorted
database, and the binlog reader rejects corrupt or truncated partition
files with errors naming the file and byte offset (mirroring the SPMF
error-message contract).
"""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.database import CustomerSequence, SequenceDatabase
from repro.db.partitioned import (
    PartitionedDatabase,
    write_partitions_from_csv,
    write_partitions_from_spmf,
)
from repro.io.binlog import (
    BinlogFormatError,
    BinlogReader,
    BinlogWriter,
    decode_uvarint,
    encode_uvarint,
    read_binlog,
    write_binlog,
)
from repro.io.csvio import database_to_transactions, write_transactions_csv
from repro.io.spmf import iter_spmf, read_spmf, write_spmf
from tests.strategies import event_lists


class TestUvarint:
    @given(st.integers(min_value=0, max_value=2**70))
    def test_round_trip(self, value):
        encoded = encode_uvarint(value)
        decoded, offset = decode_uvarint(encoded, 0)
        assert decoded == value
        assert offset == len(encoded)

    def test_single_byte_boundary(self):
        assert encode_uvarint(127) == b"\x7f"
        assert len(encode_uvarint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            encode_uvarint(-1)

    @given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=8))
    def test_concatenated_stream(self, values):
        buffer = b"".join(encode_uvarint(v) for v in values)
        offset = 0
        decoded = []
        for _ in values:
            value, offset = decode_uvarint(buffer, offset)
            decoded.append(value)
        assert decoded == values
        assert offset == len(buffer)


class TestBinlogRoundTrip:
    RECORDS = [
        (1, ((30,), (90,))),
        (2, ((10, 20), (30,), (40, 60, 70))),
        (7, ((30, 50, 70),)),
    ]

    def test_write_read_identical(self, tmp_path):
        path = tmp_path / "part.binlog"
        assert write_binlog(path, self.RECORDS) == 3
        assert read_binlog(path) == self.RECORDS

    def test_len_from_footer(self, tmp_path):
        path = tmp_path / "part.binlog"
        write_binlog(path, self.RECORDS)
        assert len(BinlogReader(path)) == 3

    def test_empty_partition(self, tmp_path):
        path = tmp_path / "empty.binlog"
        assert write_binlog(path, []) == 0
        assert read_binlog(path) == []

    @given(st.lists(event_lists(max_item=50), max_size=6))
    @settings(max_examples=30)
    def test_arbitrary_records_round_trip(self, customer_events):
        records = [
            (cid, tuple(tuple(event) for event in events))
            for cid, events in enumerate(customer_events, start=1)
        ]
        # Round-trip through a real file (the format is file-offset based).
        import tempfile

        with tempfile.NamedTemporaryFile(suffix=".binlog") as handle:
            write_binlog(handle.name, records)
            assert read_binlog(handle.name) == records

    def test_zero_event_customer_preserved(self, tmp_path):
        path = tmp_path / "part.binlog"
        write_binlog(path, [(5, ())])
        assert read_binlog(path) == [(5, ())]


class TestBinlogCorruption:
    def _write(self, tmp_path, records=None):
        path = tmp_path / "bad.binlog"
        write_binlog(
            path,
            records if records is not None else TestBinlogRoundTrip.RECORDS,
        )
        return path

    def test_error_names_file_and_offset(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        data[0] = 0xFF  # clobber the magic
        path.write_bytes(bytes(data))
        with pytest.raises(BinlogFormatError, match=r"bad\.binlog.*offset 0"):
            BinlogReader(path)

    def test_truncated_footer(self, tmp_path):
        path = self._write(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(BinlogFormatError, match=r"bad\.binlog.*truncated"):
            BinlogReader(path)

    def test_file_shorter_than_header(self, tmp_path):
        path = tmp_path / "bad.binlog"
        path.write_bytes(b"SQ")
        with pytest.raises(
            BinlogFormatError, match=r"bad\.binlog: truncated at offset 2"
        ):
            BinlogReader(path)

    def test_bad_version(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        data[4] = 99
        path.write_bytes(bytes(data))
        with pytest.raises(
            BinlogFormatError, match=r"unsupported version 99 at offset 4"
        ):
            BinlogReader(path)

    def test_record_region_corruption_cites_record_offset(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        # Inflate the first record's event count so decoding overruns the
        # following records and disagrees with the index.
        data[6] = 0x60
        path.write_bytes(bytes(data))
        with pytest.raises(BinlogFormatError, match=r"bad\.binlog.*offset"):
            list(BinlogReader(path))

    def test_unsorted_items_rejected(self, tmp_path):
        path = tmp_path / "bad.binlog"
        with BinlogWriter(path) as writer:
            writer.append(1, ((3, 2),))  # not ascending — forged producer
        with pytest.raises(
            BinlogFormatError, match=r"items not strictly ascending"
        ):
            read_binlog(path)

    def test_interior_truncation(self, tmp_path):
        path = self._write(tmp_path)
        whole = path.read_bytes()
        # Keep header + footer but cut bytes out of the record region, so
        # the index offsets no longer line up.
        cut = bytes(whole[:8]) + bytes(whole[10:])
        path.write_bytes(cut)
        with pytest.raises(BinlogFormatError, match=r"bad\.binlog"):
            list(BinlogReader(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(BinlogFormatError, match=r"nope\.binlog"):
            BinlogReader(tmp_path / "nope.binlog")

    def test_zeroed_record_count_rejected(self, tmp_path):
        """An index whose num_records varint is corrupted to zero must
        not read back as a valid empty partition."""
        path = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        index_offset = int.from_bytes(data[-16:-8], "little")
        assert data[index_offset] == 3  # records written
        data[index_offset] = 0
        path.write_bytes(bytes(data))
        with pytest.raises(BinlogFormatError, match=r"zero records"):
            BinlogReader(path)

    def test_undercounted_records_rejected(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        index_offset = int.from_bytes(data[-16:-8], "little")
        data[index_offset] = 2  # claim 2 of the 3 records
        path.write_bytes(bytes(data))
        with pytest.raises(BinlogFormatError, match=r"bad\.binlog"):
            list(BinlogReader(path))

    def test_exception_in_with_body_leaves_rejectable_file(self, tmp_path):
        """__exit__ must NOT finalize on error: a valid footer over a
        prefix of the records would be silent data loss."""
        path = tmp_path / "aborted.binlog"
        with pytest.raises(RuntimeError, match="source died"):
            with BinlogWriter(path) as writer:
                writer.append(1, ((1, 2),))
                raise RuntimeError("source died")
        with pytest.raises(BinlogFormatError, match=r"aborted\.binlog"):
            BinlogReader(path)

    def test_writer_crash_leaves_rejectable_file(self, tmp_path):
        path = tmp_path / "crash.binlog"
        writer = BinlogWriter(path)
        writer.append(1, ((1, 2),))
        writer._flush()
        writer._closed = True  # simulate a crash before close(): no footer
        with pytest.raises(BinlogFormatError, match=r"crash\.binlog"):
            BinlogReader(path)

    def test_many_writers_exceeding_fd_limit(self, tmp_path):
        """Writers hold no fd between flushes, so partition counts far
        beyond the soft file-descriptor limit must work."""
        import resource

        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        lowered = min(soft, 64)
        resource.setrlimit(resource.RLIMIT_NOFILE, (lowered, hard))
        try:
            writers = [
                BinlogWriter(tmp_path / f"p{i}.binlog")
                for i in range(lowered + 36)
            ]
            for i, writer in enumerate(writers):
                writer.append(i + 1, ((1, 2), (3,)))
                writer.close()
        finally:
            resource.setrlimit(resource.RLIMIT_NOFILE, (soft, hard))
        for i, writer in enumerate(writers):
            assert read_binlog(writer.path) == [(i + 1, ((1, 2), (3,)))]


def paper_spmf_text() -> str:
    return (
        "30 -1 90 -1 -2\n"
        "10 20 -1 30 -1 40 60 70 -1 -2\n"
        "30 50 70 -1 -2\n"
        "30 -1 40 70 -1 90 -1 -2\n"
        "90 -1 -2\n"
    )


class TestPartitionRoundTrip:
    def test_spmf_to_partitions_to_spmf_byte_identical(self, tmp_path):
        source = tmp_path / "in.spmf"
        source.write_text(paper_spmf_text())
        pdb = write_partitions_from_spmf(
            source, tmp_path / "parts", partitions=3
        )
        out = io.StringIO()
        write_spmf(pdb, out)
        assert out.getvalue() == paper_spmf_text()

    @given(st.lists(event_lists(max_item=60), min_size=1, max_size=9),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_property_spmf_round_trip(self, tmp_path_factory,
                                      customer_events, partitions):
        tmp_path = tmp_path_factory.mktemp("roundtrip")
        db = SequenceDatabase.from_sequences(customer_events)
        source = tmp_path / "in.spmf"
        write_spmf(db, source)
        pdb = write_partitions_from_spmf(
            source, tmp_path / "parts", partitions=partitions
        )
        out = io.StringIO()
        write_spmf(pdb, out)
        assert out.getvalue() == source.read_text()

    def test_csv_to_partitions_matches_sorted_database(self, tmp_path):
        db = read_spmf(io.StringIO(paper_spmf_text()))
        source = tmp_path / "in.csv"
        write_transactions_csv(database_to_transactions(db), source)
        pdb = write_partitions_from_csv(
            source, tmp_path / "parts", partitions=2
        )
        assert pdb.to_memory() == db

    def test_iter_spmf_matches_read_spmf(self, tmp_path):
        source = tmp_path / "in.spmf"
        source.write_text("# comment\n\n" + paper_spmf_text())
        streamed = list(iter_spmf(source))
        assert SequenceDatabase(streamed) == read_spmf(source)

    def test_ordered_iteration_across_partitions(self, tmp_path):
        customers = [
            CustomerSequence(customer_id=i, events=((i,),))
            for i in range(1, 11)
        ]
        pdb = PartitionedDatabase.create(
            tmp_path / "parts", iter(customers), partitions=3
        )
        assert [c.customer_id for c in pdb] == list(range(1, 11))

    def test_create_refuses_overwrite_without_flag(self, tmp_path):
        directory = tmp_path / "parts"
        PartitionedDatabase.create(directory, iter([]), partitions=2)
        with pytest.raises(ValueError, match="already holds"):
            PartitionedDatabase.create(directory, iter([]), partitions=2)
        PartitionedDatabase.create(
            directory, iter([]), partitions=2, overwrite=True
        )

    def test_open_missing_manifest(self, tmp_path):
        with pytest.raises(ValueError, match="missing manifest.json"):
            PartitionedDatabase.open(tmp_path)

    def test_open_corrupt_manifest_one_line_error(self, tmp_path):
        """A manifest missing required keys must raise ValueError (the
        CLI's one-line contract), not KeyError with a traceback."""
        tmp_path.joinpath("manifest.json").write_text(
            '{"format": "seqmine-partitioned", "version": 1}\n'
        )
        with pytest.raises(ValueError, match="missing partitions"):
            PartitionedDatabase.open(tmp_path)

    def test_open_unreadable_manifest(self, tmp_path):
        tmp_path.joinpath("manifest.json").write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            PartitionedDatabase.open(tmp_path)

    def test_open_future_manifest_version(self, tmp_path):
        tmp_path.joinpath("manifest.json").write_text(
            '{"format": "seqmine-partitioned", "version": 99}\n'
        )
        with pytest.raises(ValueError, match="unsupported manifest version"):
            PartitionedDatabase.open(tmp_path)

    def test_open_missing_partition_file(self, tmp_path):
        directory = tmp_path / "parts"
        PartitionedDatabase.create(
            directory,
            iter([CustomerSequence(customer_id=1, events=((1,),))]),
            partitions=2,
        )
        (directory / "part-00001.binlog").unlink()
        with pytest.raises(ValueError, match="part-00001.binlog"):
            PartitionedDatabase.open(directory)

    def test_stats_match_in_memory(self, tmp_path):
        db = read_spmf(io.StringIO(paper_spmf_text()))
        pdb = PartitionedDatabase.from_database(
            db, tmp_path / "parts", partitions=2
        )
        assert pdb.stats() == db.stats()
        assert pdb.item_vocabulary() == db.item_vocabulary()


class TestBinlogV2Checksum:
    """The version-2 footer CRC and its version-1 compatibility story."""

    def _write(self, tmp_path):
        path = tmp_path / "part.binlog"
        write_binlog(path, TestBinlogRoundTrip.RECORDS)
        return path

    def test_writer_emits_version_2_with_crc(self, tmp_path):
        path = self._write(tmp_path)
        reader = BinlogReader(path)
        assert reader.version == 2
        assert isinstance(reader.crc32, int)
        assert reader.verify() == len(TestBinlogRoundTrip.RECORDS)

    def test_verify_catches_bit_rot_structural_decode_misses(self, tmp_path):
        """A flipped item-id bit keeps the file structurally decodable
        (records() is happy) but changes the data — only the footer CRC
        can catch it. This is the whole point of the v2 footer."""
        path = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        # Record region starts after the 5-byte header; byte 8 is the
        # first record's single item id (a one-byte uvarint), so
        # flipping its low bit yields a different but valid file.
        data[8] ^= 0x01
        path.write_bytes(bytes(data))
        reader = BinlogReader(path)
        list(reader)  # structurally fine: decodes without error
        with pytest.raises(BinlogFormatError, match="checksum mismatch"):
            reader.verify()

    def test_version_1_files_still_read(self, tmp_path):
        """Downgrade a v2 file by hand to the v1 layout (no CRC in the
        footer): the reader must accept it, expose crc32=None, and
        verify() must still do the structural pass."""
        path = self._write(tmp_path)
        data = path.read_bytes()
        v1 = data[:4] + b"\x01" + data[5:-20] + data[-16:]
        v1_path = tmp_path / "v1.binlog"
        v1_path.write_bytes(v1)
        reader = BinlogReader(v1_path)
        assert reader.version == 1
        assert reader.crc32 is None
        assert list(reader) == TestBinlogRoundTrip.RECORDS
        assert reader.verify() == len(TestBinlogRoundTrip.RECORDS)

    def test_corrupt_crc_field_detected(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        data[-20] ^= 0xFF  # first CRC byte of the v2 footer
        path.write_bytes(bytes(data))
        with pytest.raises(BinlogFormatError, match="checksum mismatch"):
            BinlogReader(path).verify()
