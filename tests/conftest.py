"""Suite-wide test configuration: named Hypothesis profiles.

Profiles are selected with ``HYPOTHESIS_PROFILE=<name>``:

* ``default`` — Hypothesis defaults (local development).
* ``ci`` — fewer examples, no deadline (process pools and shared CI
  runners make wall-clock flaky), derandomized so CI failures reproduce.
* ``fast`` — minimal examples for quick smoke runs.

A profile only overrides settings a test does not pin explicitly; tests
that declare ``@settings(max_examples=...)`` keep their own budget.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "fast",
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
