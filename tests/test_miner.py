"""Pipeline tests: golden answers, parameter validation, instrumentation."""

import pytest

from repro import (
    ALGORITHM_NAMES,
    MiningParams,
    SequenceDatabase,
    Transaction,
    mine,
    mine_from_transactions,
    mine_sequential_patterns,
)
from repro.core.phase import CountingOptions
from tests.test_database import paper_db


class TestGoldenExample:
    """The paper's running example, for every algorithm."""

    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_answer(self, algorithm):
        result = mine_sequential_patterns(paper_db(), 0.25, algorithm=algorithm)
        assert [str(p.sequence) for p in result.patterns] == [
            "<(30)(40 70)>",
            "<(30)(90)>",
        ]
        assert [p.count for p in result.patterns] == [2, 2]
        assert [p.support for p in result.patterns] == [0.4, 0.4]

    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_supports_verifiable_against_raw_db(self, algorithm):
        db = paper_db()
        result = mine_sequential_patterns(db, 0.25, algorithm=algorithm)
        for pattern in result.patterns:
            assert db.support_count(pattern.sequence) == pattern.count

    def test_threshold_and_litemsets(self):
        result = mine_sequential_patterns(paper_db(), 0.25)
        assert result.threshold == 2
        assert result.num_customers == 5
        assert result.num_litemsets == 5

    def test_large_counts_by_length(self):
        result = mine_sequential_patterns(paper_db(), 0.25)
        # L1 = 5 litemsets; L2 = {<(30)(40)>, <(30)(70)>, <(30)(40 70)>,
        # <(30)(90)>} over ids.
        assert result.large_counts_by_length[1] == 5
        assert result.large_counts_by_length[2] == 4

    def test_higher_minsup_fewer_patterns(self):
        result = mine_sequential_patterns(paper_db(), 0.8)
        assert [str(p.sequence) for p in result.patterns] == ["<(30)>"]


class TestParams:
    def test_invalid_minsup(self):
        with pytest.raises(ValueError):
            MiningParams(minsup=0.0)
        with pytest.raises(ValueError):
            MiningParams(minsup=1.2)

    def test_invalid_algorithm(self):
        # "prefixspan" used to be the canonical unknown name here; it is
        # a real algorithm now (PR 9), so the guard needs a fake one.
        with pytest.raises(ValueError):
            MiningParams(minsup=0.5, algorithm="gsp")

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            MiningParams(minsup=0.5, dynamic_step=0)

    def test_with_override(self):
        params = MiningParams(minsup=0.5)
        assert params.with_(algorithm="apriorisome").algorithm == "apriorisome"
        assert params.minsup == 0.5

    def test_counting_options_threaded(self):
        params = MiningParams(
            minsup=0.25, counting=CountingOptions(strategy="naive")
        )
        result = mine(paper_db(), params)
        assert [str(p.sequence) for p in result.patterns] == [
            "<(30)(40 70)>",
            "<(30)(90)>",
        ]


class TestPipelineMechanics:
    def test_mine_from_transactions_sorts_first(self):
        rows = [
            Transaction(1, 2, (90,)),
            Transaction(1, 1, (30,)),
            Transaction(2, 5, (30,)),
            Transaction(2, 9, (90,)),
        ]
        result = mine_from_transactions(rows, MiningParams(minsup=1.0))
        assert [str(p.sequence) for p in result.patterns] == ["<(30)(90)>"]
        assert result.timings.sort_seconds >= 0.0

    def test_empty_database(self):
        result = mine_sequential_patterns(SequenceDatabase([]), 0.5)
        assert result.patterns == []
        assert result.num_patterns == 0

    def test_database_without_frequent_items(self):
        db = SequenceDatabase.from_sequences([[(1,)], [(2,)], [(3,)]])
        result = mine_sequential_patterns(db, 0.5)
        assert result.patterns == []

    def test_max_pattern_length_cap(self):
        db = SequenceDatabase.from_sequences(
            [[(1,), (2,), (3,)], [(1,), (2,), (3,)]]
        )
        capped = mine_sequential_patterns(db, 1.0, max_pattern_length=2)
        assert all(p.sequence.length <= 2 for p in capped.patterns)
        full = mine_sequential_patterns(db, 1.0)
        assert [str(p.sequence) for p in full.patterns] == ["<(1)(2)(3)>"]

    def test_max_litemset_size_cap(self):
        db = SequenceDatabase.from_sequences([[(1, 2, 3)], [(1, 2, 3)]])
        result = mine_sequential_patterns(db, 1.0, max_litemset_size=2)
        assert all(
            len(event) <= 2 for p in result.patterns for event in p.sequence
        )

    def test_timings_cover_all_phases(self):
        result = mine_sequential_patterns(paper_db(), 0.25)
        row = result.timings.as_row()
        assert set(row) == {
            "sort",
            "litemset",
            "transform",
            "sequence",
            "maximal",
            "total",
        }
        assert row["total"] >= 0

    def test_summary_mentions_algorithm(self):
        result = mine_sequential_patterns(paper_db(), 0.25, algorithm="apriorisome")
        assert "apriorisome" in result.summary()

    def test_patterns_sorted_deterministically(self):
        result = mine_sequential_patterns(paper_db(), 0.25)
        keys = [p.sequence.sort_key() for p in result.patterns]
        assert keys == sorted(keys)

    def test_sequences_accessor(self):
        result = mine_sequential_patterns(paper_db(), 0.25)
        assert [str(s) for s in result.sequences()] == [
            "<(30)(40 70)>",
            "<(30)(90)>",
        ]

    def test_pattern_str(self):
        result = mine_sequential_patterns(paper_db(), 0.25)
        assert "support" in str(result.patterns[0])


class TestAlgorithmStats:
    def test_aprioriall_counts_every_length(self):
        result = mine_sequential_patterns(paper_db(), 0.25, algorithm="aprioriall")
        stats = result.algorithm_stats
        assert stats.algorithm == "aprioriall"
        assert stats.counted_lengths[:2] == [1, 2]
        assert stats.total_candidates_counted >= stats.total_large

    def test_apriorisome_may_skip_but_same_answer(self):
        some = mine_sequential_patterns(paper_db(), 0.25, algorithm="apriorisome")
        full = mine_sequential_patterns(paper_db(), 0.25, algorithm="aprioriall")
        assert [str(p.sequence) for p in some.patterns] == [
            str(p.sequence) for p in full.patterns
        ]

    def test_dynamicsome_step_variants_agree(self):
        answers = set()
        for step in (1, 2, 3):
            result = mine_sequential_patterns(
                paper_db(), 0.25, algorithm="dynamicsome", dynamic_step=step
            )
            answers.add(tuple(str(p.sequence) for p in result.patterns))
        assert len(answers) == 1
