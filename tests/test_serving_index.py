"""Property and unit tests for the pattern-serving index.

The load-bearing property: :meth:`PatternIndex.match` is byte-identical
to brute-force filtering of the pattern set with the paper's
``sequence_contains`` relation, and :meth:`PatternIndex.predict_next`
to the brute-force enumeration of (contained prefix → next event)
pairs. Both are fuzzed over the shared generators in
``tests/strategies.py`` plus hand-picked itemset-element edge cases
(multi-item events, repeated events, empty query, subsequence-not-
substring semantics).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sequence import Sequence, sequence_contains
from repro.io.patterns import write_patterns
from repro.miner import Pattern
from repro.serving.index import (
    PatternIndex,
    Prediction,
    canonical_query,
    parse_query,
)
from tests.strategies import event_lists, itemsets, sequences

#: Denominator for generated supports: support == count / CUSTOMERS, as
#: in any real mined file. This keeps count ties support ties too, so
#: the ranking tie-break is fully determined by the event order.
CUSTOMERS = 16


def make_patterns(seqs: list[Sequence], counts: list[int]) -> list[Pattern]:
    return [
        Pattern(sequence=seq, count=count, support=count / CUSTOMERS)
        for seq, count in zip(seqs, counts)
    ]


def pattern_sets() -> st.SearchStrategy[list[Pattern]]:
    unique_seqs = st.lists(
        sequences(), min_size=0, max_size=12, unique_by=lambda s: s.events
    )
    return unique_seqs.flatmap(
        lambda seqs: st.lists(
            st.integers(min_value=1, max_value=CUSTOMERS),
            min_size=len(seqs),
            max_size=len(seqs),
        ).map(lambda counts: make_patterns(seqs, counts))
    )


def queries() -> st.SearchStrategy[list[tuple[int, ...]]]:
    return st.lists(itemsets(), min_size=0, max_size=5)


def brute_match(patterns: list[Pattern], query: list[tuple[int, ...]]) -> list[Pattern]:
    events = canonical_query(query)
    matched = [
        p for p in patterns if sequence_contains(events, p.sequence.frozen_events())
    ]
    matched.sort(key=lambda p: p.sequence.sort_key())
    return matched


def brute_predict(
    patterns: list[Pattern], query: list[tuple[int, ...]], k: int
) -> list[Prediction]:
    events = canonical_query(query)
    best: dict[tuple[int, ...], tuple[int, float]] = {}
    for p in patterns:
        pattern_events = p.sequence.events
        for i in range(len(pattern_events)):
            prefix = [frozenset(e) for e in pattern_events[:i]]
            if sequence_contains(events, prefix):
                label = pattern_events[i]
                current = best.get(label)
                if current is None or p.count > current[0]:
                    best[label] = (p.count, p.support)
    ranked = sorted(best.items(), key=lambda kv: (-kv[1][0], kv[0]))
    return [
        Prediction(event=label, count=count, support=support)
        for label, (count, support) in ranked[:k]
    ]


class TestMatchEquivalence:
    @given(patterns=pattern_sets(), query=queries())
    @settings(max_examples=200)
    def test_match_equals_bruteforce_postfilter(self, patterns, query):
        index = PatternIndex(patterns)
        assert index.match(query) == brute_match(patterns, query)

    @given(patterns=pattern_sets(), query=queries(), k=st.integers(0, 8))
    @settings(max_examples=200)
    def test_predict_equals_bruteforce(self, patterns, query, k):
        index = PatternIndex(patterns)
        assert index.predict_next(query, k) == brute_predict(patterns, query, k)

    @given(container=event_lists(), )
    def test_every_pattern_matches_its_own_container(self, container):
        pattern = Pattern(
            sequence=Sequence(container), count=1, support=1 / CUSTOMERS
        )
        index = PatternIndex([pattern])
        assert index.match(container) == [pattern]


class TestItemsetEdgeCases:
    def one(self, events, count=2):
        return Pattern(
            sequence=Sequence(events), count=count, support=count / CUSTOMERS
        )

    def test_multi_item_event_matches_superset_event(self):
        index = PatternIndex([self.one([(40, 70)])])
        assert len(index.match([(40, 60, 70)])) == 1
        # Subset must live in ONE query event, never straddle two.
        assert index.match([(40,), (70,)]) == []

    def test_repeated_events_need_distinct_positions(self):
        index = PatternIndex([self.one([(1,), (1,)])])
        assert index.match([(1,)]) == []
        assert len(index.match([(1,), (1,)])) == 1
        # The same query event may not be consumed twice.
        assert index.match([(1, 2)]) == []

    def test_subsequence_not_substring(self):
        index = PatternIndex([self.one([(1,), (3,)])])
        # Intervening events are skippable: subsequence, not substring.
        assert len(index.match([(1,), (2,), (3,)])) == 1

    def test_empty_query(self):
        patterns = [self.one([(1,)], count=3), self.one([(2,), (3,)], count=5)]
        index = PatternIndex(patterns)
        assert index.match([]) == []
        # Predictions from an empty history rank pattern openings.
        predictions = index.predict_next([], 10)
        assert [p.event for p in predictions] == [(2,), (1,)]
        assert predictions[0].count == 5

    def test_predict_k_zero_and_overshoot(self):
        index = PatternIndex([self.one([(1,), (2,)])])
        assert index.predict_next([], 0) == []
        assert len(index.predict_next([], 99)) == 1

    def test_predict_rejects_negative_k(self):
        with pytest.raises(ValueError, match="k must be >= 0"):
            PatternIndex([]).predict_next([], -1)

    def test_prediction_scores_are_subtree_best(self):
        # After <(1)>, both patterns continue with (2); the candidate
        # must carry the best support behind that edge (count 7).
        patterns = [
            self.one([(1,), (2,)], count=7),
            self.one([(1,), (2,), (3,)], count=4),
        ]
        index = PatternIndex(patterns)
        predictions = index.predict_next([(1,)], 5)
        by_event = {p.event: p for p in predictions}
        assert by_event[(2,)].count == 7

    def test_duplicate_pattern_rejected(self):
        pattern = self.one([(1,)])
        with pytest.raises(ValueError, match="duplicate pattern"):
            PatternIndex([pattern, pattern])

    def test_patterns_iterates_everything(self):
        patterns = [self.one([(1,)]), self.one([(1,), (2,)]), self.one([(3,)])]
        index = PatternIndex(patterns)
        assert sorted(index.patterns(), key=lambda p: p.sequence.sort_key()) == sorted(
            patterns, key=lambda p: p.sequence.sort_key()
        )
        assert index.num_patterns == 3
        assert index.max_pattern_length == 2
        # Shared prefix (1) counted once: root + (1) + (2) + (3).
        assert index.num_nodes == 4


class TestQueryParsing:
    def test_parse_query_empty(self):
        assert parse_query("<>") == ()
        assert parse_query("  <>  ") == ()

    def test_parse_query_events(self):
        assert parse_query("<(30)(40 70)>") == (
            frozenset({30}),
            frozenset({40, 70}),
        )

    def test_parse_query_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_query("30 40")

    def test_canonical_query_rejects_empty_event(self):
        with pytest.raises(ValueError):
            canonical_query([[1], []])


class TestFromFile:
    def test_from_file_roundtrip(self, tmp_path):
        patterns = [
            Pattern(sequence=Sequence([(30,), (40, 70)]), count=2, support=0.4),
            Pattern(sequence=Sequence([(30,), (90,)]), count=2, support=0.4),
        ]
        path = tmp_path / "patterns.txt"
        write_patterns(patterns, path)
        index = PatternIndex.from_file(path)
        assert index.num_patterns == 2
        assert index.match([(30,), (40, 70), (90,)]) == sorted(
            patterns, key=lambda p: p.sequence.sort_key()
        )

    def test_from_file_requires_versioned_header(self, tmp_path):
        path = tmp_path / "legacy.txt"
        path.write_text("<(1)> #SUP: 2 #FREQ: 0.5\n")
        with pytest.raises(ValueError, match="header"):
            PatternIndex.from_file(path)
