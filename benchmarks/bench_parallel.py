#!/usr/bin/env python3
"""Speedup benchmark for the sharded parallel counting engine.

Generates a synthetic dataset, runs the litemset and transformation
phases once, builds a realistic candidate set (C_3 joined from the large
2-sequences), then times the *same counting pass* — the dominant cost of
the sequence phase — serially and with 2 and 4 worker processes. Prints
one row per configuration with the speedup over serial.

Run:  PYTHONPATH=src python benchmarks/bench_parallel.py
      PYTHONPATH=src python benchmarks/bench_parallel.py --customers 10000 --workers 1 2 4 8
      PYTHONPATH=src python benchmarks/bench_parallel.py --output BENCH_parallel.json

This is a plain script rather than a pytest-benchmark module because its
subject is wall-clock *scaling*, not statistical microtiming — and so it
can run on machines without pytest installed. Expect near-linear scaling
up to the physical core count; on single-core machines (e.g. a 1-CPU
container) the parallel rows measure pure pool overhead and will not show
a speedup, because there is no hardware to run the shards on.

With ``--output`` the measurements are also written as machine-readable
JSON through the shared results writer (same envelope as
``bench_counting_strategies.py``), for CI artifact capture.
"""

from __future__ import annotations

import argparse
import os
import time
from typing import Callable

from results_io import write_bench_json

from repro.core.candidates import apriori_generate
from repro.core.counting import count_candidates, count_length2, filter_large
from repro.core.phase import CountingOptions
from repro.datagen.generator import generate_database
from repro.datagen.params import SyntheticParams
from repro.db.transform import transform_database
from repro.itemsets.apriori import find_litemsets
from repro.itemsets.litemsets import LitemsetCatalog


def best_of(repeats: int, fn: Callable[[], object]) -> float:
    """Minimum wall-clock over ``repeats`` calls (noise-resistant)."""
    timings = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - started)
    return min(timings)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="C10-T2.5-S4-I1.25")
    parser.add_argument("--customers", type=int, default=5000)
    parser.add_argument("--minsup", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--strategy", choices=("hashtree", "naive", "bitset"),
                        default="hashtree")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions; best (minimum) is reported")
    parser.add_argument("--output", default=None,
                        help="also write results as JSON to this file")
    args = parser.parse_args()

    print(f"machine: {os.cpu_count()} CPUs")
    print(f"dataset: {args.dataset}, |D|={args.customers}, "
          f"minsup={args.minsup}, strategy={args.strategy}")

    params = SyntheticParams.from_name(args.dataset, num_customers=args.customers)
    db = generate_database(params, seed=args.seed)
    threshold = db.threshold(args.minsup)
    litemsets = find_litemsets(db, args.minsup)
    tdb = transform_database(db, LitemsetCatalog.from_result(litemsets))

    large2 = filter_large(count_length2(tdb.sequences), threshold)
    candidates = apriori_generate(large2.keys())
    print(f"counting pass under test: |C_3|={len(candidates)} candidates "
          f"over {len(tdb)} transformed customers "
          f"(threshold {threshold}, |L_2|={len(large2)})")
    if not candidates:
        print("no length-3 candidates at this minsup; lower --minsup")
        return 1

    # Mirror the production path: the bitset strategy compiles the
    # database once up front (workers inherit/receive the compiled form),
    # so compilation is not re-timed inside every measured pass.
    counting = CountingOptions(strategy=args.strategy)
    sequences = counting.prepare_sequences(tdb.sequences)

    # The baseline is always a measured serial (workers=1) pass, even
    # when 1 is not in --workers, so 'speedup' means speedup over serial.
    serial = count_candidates(sequences, candidates, strategy=args.strategy)
    baseline = best_of(
        args.repeats,
        lambda: count_candidates(sequences, candidates, strategy=args.strategy),
    )

    rows = []
    print(f"\n{'workers':>8} {'seconds':>9} {'speedup':>8}   counts")
    for workers in args.workers:
        if workers == 1:
            elapsed, counts = baseline, serial
        else:
            elapsed = best_of(
                args.repeats,
                lambda: count_candidates(
                    sequences, candidates,
                    strategy=args.strategy, workers=workers,
                ),
            )
            counts = count_candidates(
                sequences, candidates, strategy=args.strategy, workers=workers
            )
        identical = "identical" if counts == serial else "MISMATCH"
        print(f"{workers:>8} {elapsed:>9.3f} {baseline / elapsed:>7.2f}x   {identical}")
        rows.append({
            "workers": workers,
            "seconds": round(elapsed, 6),
            "speedup": round(baseline / elapsed, 3),
            "counts_identical": counts == serial,
        })
        if counts != serial:
            return 1
    if args.output:
        write_bench_json(
            args.output,
            "parallel_counting",
            config=vars(args),
            rows=rows,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
