"""Tables 1 & 2: generator parameters and dataset characteristics.

Also benchmarks raw synthetic-data generation per dataset, which the
paper reports as dataset sizes in Table 2.
"""

import pytest

from benchmarks.conftest import SaveFigure, assert_no_disagreement
from repro.datagen.generator import generate_database
from repro.experiments.datasets import (
    DEFAULT_SEED,
    PAPER_DATASETS,
    bench_customers,
    dataset_params,
)
from repro.experiments.figures import table1_parameters, table2_datasets
from pytest_benchmark.fixture import BenchmarkFixture


def test_table1_parameters(benchmark: BenchmarkFixture, save_figure: SaveFigure) -> None:
    figure = benchmark.pedantic(table1_parameters, rounds=1, iterations=1)
    save_figure(figure)
    assert len(figure.rows) == 8


def test_table2_datasets(benchmark: BenchmarkFixture, save_figure: SaveFigure) -> None:
    figure = benchmark.pedantic(table2_datasets, rounds=1, iterations=1)
    save_figure(figure)
    assert_no_disagreement(figure)
    assert len(figure.rows) == len(PAPER_DATASETS)
    # Density knobs must show up in the generated data: C20 datasets have
    # ~2x the transactions of C10 datasets.
    by_name = {row[0]: row for row in figure.rows}
    c10 = by_name["C10-T2.5-S4-I1.25"][2]
    c20 = by_name["C20-T2.5-S4-I1.25"][2]
    assert c20 > 1.5 * c10


@pytest.mark.parametrize("dataset", PAPER_DATASETS)
def test_generation_speed(benchmark: BenchmarkFixture, dataset: str) -> None:
    """Data generation cost per dataset (not a paper figure, but the
    substrate every experiment pays for)."""
    params = dataset_params(dataset, num_customers=bench_customers())
    db = benchmark.pedantic(
        generate_database, args=(params,), kwargs={"seed": DEFAULT_SEED},
        rounds=1, iterations=1,
    )
    assert db.num_customers == params.num_customers
