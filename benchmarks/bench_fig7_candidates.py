"""Fig. 7: candidates counted per pass — why AprioriSome wins.

The saved report lists, per algorithm, every counting pass (length,
phase, candidates, large) plus the number of candidates AprioriSome /
DynamicSome never counted because they were contained in an already-found
longer large sequence.
"""

from benchmarks.conftest import SaveFigure, assert_no_disagreement
from repro.experiments.figures import fig7_candidate_counts
from pytest_benchmark.fixture import BenchmarkFixture


def test_fig7_candidates(benchmark: BenchmarkFixture, save_figure: SaveFigure) -> None:
    figure = benchmark.pedantic(fig7_candidate_counts, rounds=1, iterations=1)
    save_figure(figure)
    assert_no_disagreement(figure)

    counted = {
        algorithm: sum(
            row[3] for row in figure.rows
            if row[0] == algorithm and isinstance(row[3], int) and row[2] != "skipped-by-containment"
        )
        for algorithm in ("aprioriall", "apriorisome", "dynamicsome")
    }
    # AprioriSome essentially never counts more candidates than AprioriAll
    # on the same data (it skips lengths and prunes backward); the small
    # slack covers skipped lengths whose candidates were generated from
    # candidate sets instead of large sets.
    assert counted["apriorisome"] <= counted["aprioriall"] * 1.05 + 10
