"""Baseline comparison: 1995 candidate-generation vs 2004 pattern-growth.

Not a figure of the 1995 paper — it is the comparison every follow-up
paper (PrefixSpan, TKDE 2004) ran against it, so the reproduction
includes it: AprioriAll / AprioriSome vs an independently implemented
PrefixSpan, on the same dataset and sweep, with the maximal filter
applied to both so the answers are comparable (and asserted identical).
"""

import time

from repro.analysis.report import format_table
from repro.baselines.prefixspan import prefixspan_mine
from repro.experiments.datasets import bench_minsups, load_dataset
from repro.experiments.harness import run_mining

DATASET = "C10-T2.5-S4-I1.25"
from pytest_benchmark.fixture import BenchmarkFixture
from benchmarks.conftest import SaveFigure


def _compare() -> tuple[list[list[object]], bool]:
    db = load_dataset(DATASET)
    rows = []
    identical = True
    for minsup in bench_minsups(DATASET)[:3]:
        core_record, core_result = run_mining(
            db, dataset=DATASET, algorithm="apriorisome", minsup=minsup
        )
        started = time.perf_counter()
        ps_patterns = prefixspan_mine(db, minsup, maximal=True)
        ps_seconds = time.perf_counter() - started
        agree = [
            (p.sequence, p.count) for p in ps_patterns
        ] == [(p.sequence, p.count) for p in core_result.patterns]
        identical &= agree
        rows.append(
            [f"{minsup:.2%}", "apriorisome", core_record.seconds,
             core_record.num_patterns, "yes" if agree else "NO"]
        )
        rows.append(
            [f"{minsup:.2%}", "prefixspan", ps_seconds,
             len(ps_patterns), "yes" if agree else "NO"]
        )
    return rows, identical


def test_prefixspan_vs_apriori(benchmark: BenchmarkFixture, save_figure: SaveFigure) -> None:
    rows, identical = benchmark.pedantic(_compare, rounds=1, iterations=1)
    table = format_table(
        ("minsup", "miner", "seconds", "maximal_patterns", "answers_match"),
        rows,
        title=f"baseline comparison on {DATASET} (maximal answers)",
    )

    class _Figure:
        figure_id = "baseline-prefixspan"
        notes = []
        series = {}

        @staticmethod
        def render(chart: bool = True) -> str:
            return table

    save_figure(_Figure)
    assert identical
