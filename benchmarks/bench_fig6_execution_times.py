"""Fig. 6: execution times of AprioriAll / AprioriSome / DynamicSome as
the minimum support decreases — one bench per dataset panel.

Paper shape to verify by eye in the saved reports:
* AprioriSome tracks AprioriAll closely (within tens of percent) and
  pulls ahead at the lowest supports;
* DynamicSome is competitive at high supports and degrades sharply at the
  bottom of the sweep (its intermediate phase generates candidates from
  candidate sets).
"""

import pytest

from benchmarks.conftest import SaveFigure, assert_no_disagreement
from repro.experiments.datasets import PAPER_DATASETS
from repro.experiments.figures import fig6_execution_times
from pytest_benchmark.fixture import BenchmarkFixture


@pytest.mark.parametrize("dataset", PAPER_DATASETS)
def test_fig6_panel(
    benchmark: BenchmarkFixture, save_figure: SaveFigure, dataset: str
) -> None:
    figure = benchmark.pedantic(
        fig6_execution_times, args=(dataset,), rounds=1, iterations=1
    )
    save_figure(figure)
    assert_no_disagreement(figure)

    # Structural checks on the reproduced shape: runtime must grow as
    # minsup drops, for every algorithm.
    for algorithm, points in figure.series.items():
        minsups = [x for x, _ in points]
        seconds = [y for _, y in points]
        assert minsups == sorted(minsups, reverse=True)
        assert seconds[-1] >= seconds[0] * 0.8, (
            f"{algorithm}: lowest-minsup run unexpectedly cheap: {points}"
        )
