#!/usr/bin/env python3
"""Counting-strategy ablation: hashtree vs naive vs bitset vs vertical.

Generates a synthetic dataset, runs the litemset and transformation
phases once, then times every counting pass of an AprioriAll-style
level-wise run (the length-2 occurring-pairs sweep plus each C_k pass for
k >= 3) under all four strategies. The once-per-run setup costs are
timed separately and charged to their strategies' totals, so the
comparison is honest: the bitset total includes the compilation, the
vertical total includes compilation *plus* the id-list inversion. The
vertical engine keeps its cross-pass support-list cache across the
passes, exactly as a real mining run does — pass k joins the lists pass
k−1 memoized — and every timed repetition of a pass restores the cache
to its pass-entry snapshot first, so the measurement includes exactly
the rebuild work a real run pays when it first executes that pass
(pass 3 rebuilds its length-2 parent lists, because the occurring-pairs
sweep memoizes nothing) and no repeat is flattered by state its own
previous repetition warmed.

Counts are cross-checked per pass — any mismatch across strategies fails
the run — and the measurements are written as machine-readable JSON
(``BENCH_counting.json`` by default) via the shared results writer, so CI
can archive the perf trajectory.

A second regime rides along (skip with ``--skip-low-minsup``): the
**low-minsup end-to-end comparison**. At thresholds far below the
ablation's, the candidate family's level-wise passes blow up — the
candidate sets, not the counting strategy, dominate — which is exactly
where the pattern-growth engine (``mine --algorithm prefixspan``) earns
its keep. Each contender mines the same dataset end to end in a
subprocess under a wall-clock budget (``--low-timeout``), so an apriori
run that can't finish is recorded as ``timed_out`` instead of hanging
the benchmark; whenever two runs both complete, their maximal pattern
sets are cross-checked by count and checksum.

Run:  PYTHONPATH=src python benchmarks/bench_counting_strategies.py
      PYTHONPATH=src python benchmarks/bench_counting_strategies.py \
          --customers 2000 --minsup 0.008 --repeats 5
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import os
import subprocess
import sys
import time
from typing import Callable

from results_io import write_bench_json

from repro.core.bitset import CompiledDatabase
from repro.core.candidates import apriori_generate
from repro.core.vertical import VerticalDatabase
from repro.core.counting import (
    COUNTING_STRATEGIES,
    count_candidates,
    count_length2,
    filter_large,
)
from repro.core.phase import CountingOptions
from repro.datagen.generator import generate_database
from repro.datagen.params import SyntheticParams
from repro.db.transform import transform_database
from repro.itemsets.apriori import find_litemsets
from repro.itemsets.litemsets import LitemsetCatalog
from repro.miner import MiningParams, mine


def best_of(repeats: int, fn: Callable[[], object]) -> float:
    """Minimum wall-clock over ``repeats`` calls (noise-resistant)."""
    timings = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - started)
    return min(timings)


#: The low-minsup contenders: the apriori flagship under its default and
#: its fastest counting backend, versus the pattern-growth engine (which
#: has no counting strategy; "hashtree" is the don't-care default).
LOWMINSUP_RUNS = (
    ("aprioriall", "hashtree"),
    ("aprioriall", "vertical"),
    ("prefixspan", "hashtree"),
)


def _lowminsup_label(algorithm: str, strategy: str) -> str:
    return algorithm if algorithm == "prefixspan" else f"{algorithm}/{strategy}"


def _child_main(args: argparse.Namespace) -> int:
    """Hidden ``--run-one`` mode: mine the configured dataset end to end
    with one (algorithm, strategy) pair and print a single JSON line —
    the subprocess half of the low-minsup regime."""
    params = SyntheticParams.from_name(args.dataset, num_customers=args.customers)
    db = generate_database(params, seed=args.seed)
    started = time.perf_counter()
    result = mine(
        db,
        MiningParams(
            minsup=args.low_minsup,
            algorithm=args.run_one,
            counting=CountingOptions(strategy=args.run_one_strategy),
        ),
    )
    elapsed = time.perf_counter() - started
    digest = hashlib.sha256(
        "\n".join(
            f"{p.sequence}|{p.count}" for p in result.patterns
        ).encode()
    ).hexdigest()[:16]
    # The maximal filter runs over the identical frequent set whichever
    # algorithm produced it, so ``discovery_seconds`` (everything before
    # that shared epilogue) is the number that isolates the engines.
    print(json.dumps({
        "seconds": round(elapsed, 6),
        "discovery_seconds": round(
            elapsed - result.timings.maximal_seconds, 6
        ),
        "patterns": len(result.patterns),
        "checksum": digest,
    }))
    return 0


def run_low_minsup_regime(args: argparse.Namespace) -> dict | None:
    """Run every contender in a budgeted subprocess; return the results
    row, or ``None`` on failure (crash, mismatch, or a prefixspan
    timeout — the engine finishing is the point of the regime)."""
    threshold = max(1, math.ceil(args.low_minsup * args.customers - 1e-9))
    print(f"\nlow-minsup regime: minsup={args.low_minsup} "
          f"(threshold ~{threshold} of {args.customers}), "
          f"{args.low_timeout:.0f}s budget per end-to-end run")
    outcomes: dict[str, dict] = {}
    for algorithm, strategy in LOWMINSUP_RUNS:
        label = _lowminsup_label(algorithm, strategy)
        command = [
            sys.executable, os.path.abspath(__file__),
            "--run-one", algorithm, "--run-one-strategy", strategy,
            "--dataset", args.dataset,
            "--customers", str(args.customers),
            "--seed", str(args.seed),
            "--low-minsup", str(args.low_minsup),
        ]
        try:
            proc = subprocess.run(
                command, capture_output=True, text=True,
                timeout=args.low_timeout,
            )
        except subprocess.TimeoutExpired:
            outcomes[label] = {
                "timed_out": True,
                "seconds": round(args.low_timeout, 6),
                "discovery_seconds": None,
                "patterns": None,
                "checksum": None,
            }
            print(f"{label:>22}: TIMED OUT after {args.low_timeout:.0f}s")
            continue
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            print(f"low-minsup run failed: {label}", file=sys.stderr)
            return None
        payload = json.loads(proc.stdout.strip().splitlines()[-1])
        outcomes[label] = {"timed_out": False, **payload}
        print(f"{label:>22}: {payload['seconds']:>8.3f}s end-to-end "
              f"({payload['discovery_seconds']:.3f}s discovery), "
              f"{payload['patterns']} maximal patterns")

    answers = {
        (o["patterns"], o["checksum"])
        for o in outcomes.values() if not o["timed_out"]
    }
    if len(answers) > 1:
        print("PATTERN MISMATCH across completed low-minsup runs",
              file=sys.stderr)
        return None
    engine = outcomes["prefixspan"]
    if engine["timed_out"]:
        print("prefixspan itself timed out — the low-minsup regime is "
              "meaningless; raise --low-timeout or --low-minsup",
              file=sys.stderr)
        return None
    apriori = {
        label: o for label, o in outcomes.items() if label != "prefixspan"
    }
    completed = {k: o for k, o in apriori.items() if not o["timed_out"]}
    if completed:
        speedup = (
            min(o["seconds"] for o in completed.values())
            / engine["seconds"]
        )
        discovery_speedup = (
            min(o["discovery_seconds"] for o in completed.values())
            / engine["discovery_seconds"]
        )
        print(f"prefixspan speedup over best completed apriori run: "
              f"{speedup:.2f}x end-to-end, {discovery_speedup:.2f}x on "
              "discovery (the maximal filter is shared work)")
    else:
        speedup = discovery_speedup = None
        print(f"every apriori run hit the {args.low_timeout:.0f}s budget; "
              f"prefixspan finished in {engine['seconds']:.3f}s")
    return {
        "pass": "lowminsup",
        "candidates": None,
        "minsup": args.low_minsup,
        "timeout_seconds": args.low_timeout,
        "runs": outcomes,
        "prefixspan_speedup_over_best_apriori":
            round(speedup, 3) if speedup is not None else None,
        "prefixspan_discovery_speedup_over_best_apriori":
            round(discovery_speedup, 3)
            if discovery_speedup is not None else None,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="C10-T2.5-S4-I1.25")
    parser.add_argument("--customers", type=int, default=2000)
    parser.add_argument("--minsup", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions; best (minimum) is reported")
    parser.add_argument("--max-length", type=int, default=None,
                        help="stop after this pass length")
    parser.add_argument("--max-candidates", type=int, default=150_000,
                        help="abort a k>=3 pass whose candidate set exceeds "
                        "this (guards against degenerate low absolute "
                        "thresholds, where the naive pass never finishes)")
    parser.add_argument("--output", default="BENCH_counting.json",
                        help="machine-readable results file")
    parser.add_argument("--low-minsup", type=float, default=0.008,
                        help="minsup for the end-to-end low-minsup regime "
                        "(apriori family vs the prefixspan engine)")
    parser.add_argument("--low-timeout", type=float, default=120.0,
                        help="wall-clock budget per low-minsup run; an "
                        "apriori run that exceeds it is recorded as "
                        "timed_out rather than hanging the benchmark")
    parser.add_argument("--skip-low-minsup", action="store_true",
                        help="skip the end-to-end low-minsup regime")
    # Internal: the subprocess half of the low-minsup regime.
    parser.add_argument("--run-one", choices=[a for a, _ in LOWMINSUP_RUNS],
                        default=None, help=argparse.SUPPRESS)
    parser.add_argument("--run-one-strategy", default="hashtree",
                        help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.run_one is not None:
        return _child_main(args)

    print(f"machine: {os.cpu_count()} CPUs")
    print(f"dataset: {args.dataset}, |D|={args.customers}, minsup={args.minsup}")

    params = SyntheticParams.from_name(args.dataset, num_customers=args.customers)
    db = generate_database(params, seed=args.seed)
    threshold = db.threshold(args.minsup)
    litemsets = find_litemsets(db, args.minsup)
    tdb = transform_database(db, LitemsetCatalog.from_result(litemsets))
    print(f"transformed: {len(tdb)} customers, {len(litemsets)} litemsets, "
          f"threshold {threshold}")
    if threshold < 2:
        print(f"threshold {threshold} is degenerate (nearly everything is "
              "large and candidate sets explode); raise --minsup or "
              "--customers", file=sys.stderr)
        return 1

    compile_seconds = best_of(
        args.repeats, lambda: CompiledDatabase.compile(tdb.sequences)
    )
    compiled = CompiledDatabase.compile(tdb.sequences)
    invert_seconds = best_of(
        args.repeats, lambda: VerticalDatabase.invert(compiled)
    )
    databases = {
        "hashtree": tdb.sequences,
        "naive": tdb.sequences,
        "bitset": compiled,
        # One vertical database for the whole run: the cross-pass
        # support-list cache rolls forward exactly as in a mining run.
        "vertical": VerticalDatabase.invert(compiled),
    }

    rows: list[dict] = []
    totals = {strategy: 0.0 for strategy in COUNTING_STRATEGIES}
    totals["bitset"] += compile_seconds
    totals["vertical"] += compile_seconds + invert_seconds
    rows.append({
        "pass": "compile",
        "candidates": None,
        "seconds": {
            "bitset": round(compile_seconds, 6),
            "vertical": round(compile_seconds, 6),
        },
    })
    rows.append({
        "pass": "invert",
        "candidates": None,
        "seconds": {"vertical": round(invert_seconds, 6)},
    })

    print(f"\n{'pass':>6} {'|C_k|':>8}"
          + "".join(f" {s:>10}" for s in COUNTING_STRATEGIES))

    # Drive the level-wise passes off the hashtree anchor counts.
    k = 2
    large = None
    while True:
        if args.max_length is not None and k > args.max_length:
            break
        # Every vertical timing below re-enters the pass from this exact
        # cache state, so repeats pay the same (re)build work a real
        # run's first execution of the pass would.
        cache_at_entry = databases["vertical"].cache.snapshot()

        def run_vertical(count: Callable[[], dict]) -> dict:
            databases["vertical"].cache.restore(cache_at_entry)
            return count()

        if k == 2:
            candidates = None  # occurring-pairs sweep, no materialized C_2
            run = {
                strategy: (lambda s=strategy: count_length2(databases[s]))
                for strategy in COUNTING_STRATEGIES
            }
        else:
            candidates, parents = apriori_generate(large.keys(), with_parents=True)
            if not candidates:
                break
            if len(candidates) > args.max_candidates:
                print(f"stopping before pass {k}: |C_{k}|={len(candidates)} "
                      f"exceeds --max-candidates {args.max_candidates}",
                      file=sys.stderr)
                break
            run = {
                strategy: (
                    lambda s=strategy: count_candidates(
                        databases[s], candidates, strategy=s, parents=parents
                    )
                )
                for strategy in COUNTING_STRATEGIES
            }
        run["vertical"] = (lambda count=run["vertical"]: run_vertical(count))
        counts = {strategy: fn() for strategy, fn in run.items()}
        anchor = counts["hashtree"]
        for strategy in [s for s in COUNTING_STRATEGIES if s != "hashtree"]:
            mismatch = (
                counts[strategy] != anchor
                if k > 2
                else dict(counts[strategy]) != dict(anchor)
            )
            if mismatch:
                print(f"COUNT MISMATCH at pass {k}: {strategy} != hashtree",
                      file=sys.stderr)
                return 1
        seconds = {
            strategy: best_of(args.repeats, fn) for strategy, fn in run.items()
        }
        for strategy, elapsed in seconds.items():
            totals[strategy] += elapsed
        num_candidates = len(anchor) if k == 2 else len(candidates)
        rows.append({
            "pass": k,
            "candidates": num_candidates,
            "seconds": {s: round(v, 6) for s, v in seconds.items()},
        })
        print(f"{k:>6} {num_candidates:>8}"
              + "".join(f" {seconds[s]:>10.4f}" for s in COUNTING_STRATEGIES))
        large = filter_large(dict(anchor), threshold)
        if not large:
            break
        k += 1

    print(f"\n{'total':>6} {'':>8}"
          + "".join(f" {totals[s]:>10.4f}" for s in COUNTING_STRATEGIES)
          + "   (bitset total includes one-time compile "
          f"{compile_seconds:.4f}s; vertical adds invert "
          f"{invert_seconds:.4f}s)")
    speedups = {
        strategy: (totals["hashtree"] / totals[strategy] if totals[strategy] else 0.0)
        for strategy in ("bitset", "vertical")
    }
    for strategy, speedup in speedups.items():
        print(f"{strategy} speedup over hashtree: {speedup:.2f}x")

    rows.append({
        "pass": "total",
        "candidates": None,
        "seconds": {s: round(v, 6) for s, v in totals.items()},
        "bitset_speedup_over_hashtree": round(speedups["bitset"], 3),
        "vertical_speedup_over_hashtree": round(speedups["vertical"], 3),
    })
    if not args.skip_low_minsup:
        low_row = run_low_minsup_regime(args)
        if low_row is None:
            return 1
        rows.append(low_row)
    write_bench_json(
        args.output,
        "counting_strategies",
        config=vars(args),
        rows=rows,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
