#!/usr/bin/env python3
"""Incremental update vs full re-mine benchmark.

The scenario the incremental subsystem exists for: a large partitioned
base database that was mined once (with ``collect_state``), then grows
by a small delta of new customers. The benchmark measures, in order:

* ``base_mine`` — the initial full mine of the base (with state
  collection), for context;
* ``append`` — streaming the delta into the database as a fresh binlog
  partition (no existing file rewritten);
* ``update`` — the incremental re-mine from the snapshot
  (:func:`repro.incremental.update.update_mining`);
* ``full_remine`` — the five-phase pipeline over the grown database,
  what every new day of data would cost without the subsystem.

The update and the full re-mine must produce byte-identical pattern
lines (the run fails otherwise — this doubles as a large-scale
differential test), and the committed JSON's ``speedup`` row records
``full_remine_seconds / update_seconds``.

Run:  PYTHONPATH=src python benchmarks/bench_incremental.py
      PYTHONPATH=src python benchmarks/bench_incremental.py \
          --customers 2000 --output BENCH_incremental_ci.json
"""

from __future__ import annotations

import argparse
import hashlib
import itertools
import os
import sys
import tempfile
import time

SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from results_io import write_bench_json  # noqa: E402

from repro.miner import MiningParams, MiningResult, mine  # noqa: E402
from repro.core.phase import CountingOptions  # noqa: E402
from repro.datagen.generator import iter_customer_sequences  # noqa: E402
from repro.datagen.params import SyntheticParams  # noqa: E402
from repro.db.partitioned import (  # noqa: E402
    MINING_STATE_NAME,
    PartitionedDatabase,
)
from repro.incremental import update_mining  # noqa: E402
from repro.io.state import read_mining_state, write_mining_state  # noqa: E402


def pattern_digest(result: MiningResult) -> str:
    return hashlib.sha256(
        "\n".join(str(p) for p in result.patterns).encode()
    ).hexdigest()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--customers", type=int, default=40000,
                        help="base database size (the delta comes on top)")
    parser.add_argument("--delta-fraction", type=float, default=0.05,
                        help="delta size as a fraction of the base")
    parser.add_argument("--dataset", default="C10-T2.5-S4-I1.25")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--minsup", type=float, default=0.05)
    parser.add_argument("--algorithm", default="aprioriall")
    parser.add_argument("--strategy", default="bitset")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--partitions", type=int, default=3)
    parser.add_argument("--output", default="BENCH_incremental.json")
    args = parser.parse_args()

    num_delta = max(1, int(args.customers * args.delta_fraction))
    total = args.customers + num_delta
    params = SyntheticParams.from_name(args.dataset, num_customers=total)
    mining_params = MiningParams(
        minsup=args.minsup,
        algorithm=args.algorithm,
        counting=CountingOptions(strategy=args.strategy,
                                 workers=args.workers),
    )
    rows = []

    with tempfile.TemporaryDirectory(prefix="bench-incremental-") as tmp:
        directory = os.path.join(tmp, "db")
        # One deterministic customer stream, split base | delta: the
        # base goes straight to disk partitions, the delta (the small
        # side) is held as the append source.
        stream = iter_customer_sequences(params, seed=args.seed)
        db = PartitionedDatabase.create(
            directory,
            itertools.islice(stream, args.customers),
            partitions=args.partitions,
        )
        delta = list(stream)

        started = time.perf_counter()
        base_result = mine(db, mining_params, collect_state=True)
        base_seconds = time.perf_counter() - started
        state_path = os.path.join(directory, MINING_STATE_NAME)
        write_mining_state(base_result.state, state_path)
        rows.append({
            "mode": "base_mine",
            "customers": args.customers,
            "seconds": round(base_seconds, 3),
            "num_patterns": base_result.num_patterns,
            "state_sequence_counts": len(base_result.state.sequence_counts),
            "state_bytes": os.path.getsize(state_path),
        })
        print(f"base mine: {base_seconds:.2f}s, "
              f"{base_result.num_patterns} patterns")

        started = time.perf_counter()
        db.append_delta(delta, partitions=1)
        append_seconds = time.perf_counter() - started
        rows.append({
            "mode": "append",
            "customers": num_delta,
            "seconds": round(append_seconds, 3),
        })
        print(f"append: {num_delta} customers in {append_seconds:.2f}s")

        reopened = PartitionedDatabase.open(directory)
        state = read_mining_state(state_path)
        started = time.perf_counter()
        outcome = update_mining(reopened, state,
                                counting=mining_params.counting)
        update_seconds = time.perf_counter() - started
        update_digest = pattern_digest(outcome.result)
        stats = outcome.update_stats
        rows.append({
            "mode": "update",
            "seconds": round(update_seconds, 3),
            "num_patterns": outcome.result.num_patterns,
            "digest": update_digest,
            "full_scan_passes": stats.full_scan_passes,
            "cached_sequence_candidates": stats.cached_sequence_candidates,
            "new_sequence_candidates": stats.new_sequence_candidates,
            "promoted_from_border": stats.promoted_from_border,
            "demoted_from_large": stats.demoted_from_large,
        })
        print(f"update: {update_seconds:.2f}s "
              f"({stats.summary()})")

        started = time.perf_counter()
        full_result = mine(reopened, mining_params)
        full_seconds = time.perf_counter() - started
        full_digest = pattern_digest(full_result)
        rows.append({
            "mode": "full_remine",
            "seconds": round(full_seconds, 3),
            "num_patterns": full_result.num_patterns,
            "digest": full_digest,
        })
        print(f"full re-mine: {full_seconds:.2f}s, "
              f"{full_result.num_patterns} patterns")

        if update_digest != full_digest:
            print("FAIL: update and full re-mine disagree", file=sys.stderr)
            return 1
        speedup = full_seconds / update_seconds if update_seconds else 0.0
        rows.append({
            "mode": "speedup",
            "update_vs_full_remine": round(speedup, 2),
        })
        print(f"speedup: update is {speedup:.1f}x faster than full re-mine")

    write_bench_json(
        args.output,
        "incremental",
        config={
            "customers": args.customers,
            "delta_customers": num_delta,
            "delta_fraction": args.delta_fraction,
            "dataset": args.dataset,
            "seed": args.seed,
            "minsup": args.minsup,
            "algorithm": args.algorithm,
            "strategy": args.strategy,
            "workers": args.workers,
            "partitions": args.partitions,
        },
        rows=rows,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
