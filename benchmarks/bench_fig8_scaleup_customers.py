"""Fig. 8: scale-up with the number of customers (paper reports ~linear)."""

from benchmarks.conftest import SaveFigure, assert_no_disagreement
from repro.experiments.figures import fig8_scaleup_customers
from pytest_benchmark.fixture import BenchmarkFixture


def test_fig8_scaleup_customers(benchmark: BenchmarkFixture, save_figure: SaveFigure) -> None:
    figure = benchmark.pedantic(fig8_scaleup_customers, rounds=1, iterations=1)
    save_figure(figure)
    assert_no_disagreement(figure)

    # Shape check: runtime grows with |D| and stays sub-quadratic — the
    # paper's point is that one more customer costs O(1) extra work. With
    # 4x the customers, allow up to ~2.5x-per-doubling of slack for the
    # candidate-set growth at small scales.
    for algorithm, points in figure.series.items():
        factor = points[-1][0] / points[0][0]
        relative = points[-1][1]
        assert relative >= 0.8, (algorithm, points)
        assert relative <= factor ** 2, (algorithm, points)
