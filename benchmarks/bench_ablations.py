"""Ablation benches for the design choices DESIGN.md calls out:

* counting engine: paper's hash tree vs naive scan (§3.2/3.3);
* five-phase time breakdown (§3);
* AprioriSome's next(k) skip policy (§3.4);
* DynamicSome's step (§3.5).
"""

from benchmarks.conftest import SaveFigure, assert_no_disagreement
from repro.experiments.figures import (
    ablation_counting,
    ablation_dynamic_step,
    ablation_next_policy,
    ablation_phases,
)
from pytest_benchmark.fixture import BenchmarkFixture


def test_ablation_counting(benchmark: BenchmarkFixture, save_figure: SaveFigure) -> None:
    figure = benchmark.pedantic(ablation_counting, rounds=1, iterations=1)
    save_figure(figure)
    assert_no_disagreement(figure)
    by_strategy = {row[0]: row for row in figure.rows}
    # Identical answers from both engines.
    assert by_strategy["hashtree"][2] == by_strategy["naive"][2]


def test_ablation_phases(benchmark: BenchmarkFixture, save_figure: SaveFigure) -> None:
    figure = benchmark.pedantic(ablation_phases, rounds=1, iterations=1)
    save_figure(figure)
    assert len(figure.rows) == 3
    for row in figure.rows:
        # total covers the parts
        assert row[5] >= row[1] + row[2] + row[3] + row[4] - 1e-6


def test_ablation_next_policy(benchmark: BenchmarkFixture, save_figure: SaveFigure) -> None:
    figure = benchmark.pedantic(ablation_next_policy, rounds=1, iterations=1)
    save_figure(figure)
    # All policies agree on the answer.
    patterns = {row[2] for row in figure.rows}
    assert len(patterns) == 1


def test_ablation_dynamic_step(benchmark: BenchmarkFixture, save_figure: SaveFigure) -> None:
    figure = benchmark.pedantic(ablation_dynamic_step, rounds=1, iterations=1)
    save_figure(figure)
    patterns = {row[2] for row in figure.rows}
    assert len(patterns) == 1
