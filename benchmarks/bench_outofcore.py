#!/usr/bin/env python3
"""Out-of-core mining benchmark: peak RSS and wall time vs the in-memory path.

Generates one synthetic dataset twice on disk — as an SPMF text file (the
in-memory path's input) and as a partitioned binlog database streamed
straight from the generator (``generate --stream-out``'s API) — then
mines it both ways **in separate child processes** and compares:

* ``peak_rss_mb`` — the child's ``ru_maxrss`` high-water mark, the
  honest number: RSS is monotone within a process, so each measurement
  must own a fresh interpreter;
* ``load_rss_mb`` — RSS right after the database is opened/loaded,
  before mining: for the in-memory path this exposes the resident cost
  of holding every customer as Python objects, which is what the
  partitioned path avoids;
* wall-clock seconds and a digest of the mined pattern lines — the two
  children must produce byte-identical patterns or the run fails.

The partition count is picked from ``--max-memory-mb`` exactly as the
CLI does, so the committed JSON demonstrates mining under a budget below
the dataset's in-memory footprint (compare ``max_memory_mb`` in the
config against the in-memory row's ``load_rss_mb``).

Run:  PYTHONPATH=src python benchmarks/bench_outofcore.py
      PYTHONPATH=src python benchmarks/bench_outofcore.py \
          --customers 30000 --minsup 0.05 --max-memory-mb 32
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.db.partitioned import PartitionedDatabase

import argparse
import hashlib
import json
import os
import resource
import subprocess
import sys
import tempfile
import time

SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from results_io import write_bench_json  # noqa: E402


def rss_mb() -> float:
    """Current peak RSS of this process in MB.

    ``ru_maxrss`` is kilobytes on Linux but **bytes** on macOS."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def _mine_and_report(
    db: "PartitionedDatabase", args: argparse.Namespace, load_rss: float
) -> None:
    from repro.miner import MiningParams, mine
    from repro.core.phase import CountingOptions

    params = MiningParams(
        minsup=args.minsup,
        algorithm=args.algorithm,
        counting=CountingOptions(strategy=args.strategy, workers=args.workers),
    )
    started = time.perf_counter()
    result = mine(db, params)
    elapsed = time.perf_counter() - started
    digest = hashlib.sha256(
        "\n".join(str(p) for p in result.patterns).encode()
    ).hexdigest()
    print(json.dumps({
        "load_rss_mb": round(load_rss, 2),
        "peak_rss_mb": round(rss_mb(), 2),
        "seconds": round(elapsed, 3),
        "num_patterns": result.num_patterns,
        "digest": digest,
    }))


def child_inmemory(args: argparse.Namespace) -> None:
    from repro.io.spmf import read_spmf

    db = read_spmf(args.spmf)
    _mine_and_report(db, args, rss_mb())


def child_outofcore(args: argparse.Namespace) -> None:
    from repro.db.partitioned import PartitionedDatabase

    db = PartitionedDatabase.open(args.partition_dir)
    _mine_and_report(db, args, rss_mb())


def run_child(mode: str, args: argparse.Namespace, paths: dict) -> dict:
    command = [
        sys.executable, os.path.abspath(__file__), "--_child", mode,
        "--minsup", str(args.minsup), "--algorithm", args.algorithm,
        "--strategy", args.strategy, "--workers", str(args.workers),
        "--spmf", paths["spmf"], "--partition-dir", paths["partition_dir"],
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        command, capture_output=True, text=True, env=env, check=False
    )
    if proc.returncode != 0:
        raise RuntimeError(f"{mode} child failed:\n{proc.stderr}")
    return json.loads(proc.stdout.splitlines()[-1])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--customers", type=int, default=20000)
    parser.add_argument("--dataset", default="C10-T2.5-S4-I1.25")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--minsup", type=float, default=0.05)
    parser.add_argument("--algorithm", default="aprioriall")
    parser.add_argument("--strategy", default="bitset")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--max-memory-mb", type=float, default=32.0,
                        help="per-pass memory budget for the out-of-core "
                        "run; picks the partition count from the SPMF "
                        "file size, as the CLI does")
    parser.add_argument("--output", default="BENCH_outofcore.json")
    parser.add_argument("--_child", default=None, choices=
                        ("inmemory", "outofcore"), help=argparse.SUPPRESS)
    parser.add_argument("--spmf", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--partition-dir", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args._child == "inmemory":
        child_inmemory(args)
        return 0
    if args._child == "outofcore":
        child_outofcore(args)
        return 0

    from repro.datagen.generator import iter_customer_sequences
    from repro.datagen.params import SyntheticParams
    from repro.db.partitioned import (
        PartitionedDatabase,
        partitions_for_budget_from_text,
    )
    from repro.io.spmf import write_spmf

    params = SyntheticParams.from_name(
        args.dataset, num_customers=args.customers
    )
    with tempfile.TemporaryDirectory(prefix="bench_outofcore_") as workdir:
        spmf_path = os.path.join(workdir, "data.spmf")
        partition_dir = os.path.join(workdir, "parts")
        write_spmf(iter_customer_sequences(params, seed=args.seed), spmf_path)
        partitions = partitions_for_budget_from_text(
            os.path.getsize(spmf_path), args.max_memory_mb
        )
        pdb = PartitionedDatabase.create(
            partition_dir,
            iter_customer_sequences(params, seed=args.seed),
            partitions=partitions,
        )
        stats = pdb.stats()
        print(
            f"dataset: {stats.num_customers} customers, "
            f"{stats.num_transactions} transactions, "
            f"{partitions} partitions, budget {args.max_memory_mb} MB"
        )
        paths = {"spmf": spmf_path, "partition_dir": partition_dir}
        rows = []
        for mode in ("inmemory", "outofcore"):
            report = run_child(mode, args, paths)
            rows.append({"mode": mode, **report})
            print(
                f"{mode:>10}: peak RSS {report['peak_rss_mb']:8.1f} MB  "
                f"(after load {report['load_rss_mb']:8.1f} MB)  "
                f"{report['seconds']:7.2f}s  "
                f"{report['num_patterns']} patterns"
            )
        if rows[0]["digest"] != rows[1]["digest"]:
            print("FAIL: in-memory and out-of-core patterns differ",
                  file=sys.stderr)
            return 1
        print("patterns identical across paths")
        rows_meta = {
            "partitions": partitions,
            "spmf_bytes": os.path.getsize(spmf_path),
            "binlog_bytes": pdb.disk_bytes(),
        }
    write_bench_json(
        args.output,
        "outofcore",
        config={
            "customers": args.customers,
            "dataset": args.dataset,
            "seed": args.seed,
            "minsup": args.minsup,
            "algorithm": args.algorithm,
            "strategy": args.strategy,
            "workers": args.workers,
            "max_memory_mb": args.max_memory_mb,
            **rows_meta,
        },
        rows=rows,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
