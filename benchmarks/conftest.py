"""Shared plumbing for the benchmark suite.

Every bench regenerates one table/figure of the paper via
:mod:`repro.experiments.figures`, times it with pytest-benchmark, prints
the paper-style rows, and saves the rendered report under
``benchmarks/results/<figure-id>.txt`` so the numbers survive the run.

The experiment runs take seconds each (they are whole mining sweeps), so
benches use ``benchmark.pedantic(rounds=1)`` — the interesting numbers are
the *per-run rows inside each figure*, not statistical timing of the
sweep wrapper. Micro-benchmarks of the core primitives (hash trees,
containment, counting) live in ``bench_micro.py`` with normal rounds.

Scale knobs (see EXPERIMENTS.md):

* ``REPRO_BENCH_CUSTOMERS`` — |D| for bench datasets (default 600).
* ``REPRO_BENCH_FAST=1`` — 3-point sweeps at |D|=400 for smoke runs.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Callable

import pytest

from repro.experiments.figures import FigureResult

#: The ``save_figure`` fixture's value: persist + print one figure.
SaveFigure = Callable[[FigureResult], None]

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_figure() -> SaveFigure:
    """Persist and print a rendered FigureResult."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(figure: FigureResult) -> None:
        from repro.io.atomic import atomic_write_text

        rendered = figure.render()
        atomic_write_text(
            RESULTS_DIR / f"{figure.figure_id}.txt", rendered + "\n"
        )
        print(f"\n{rendered}\n", file=sys.stderr)

    return _save


def assert_no_disagreement(figure: FigureResult) -> None:
    """Benches double as integration tests: algorithm disagreement fails."""
    problems = [note for note in figure.notes if "DISAGREEMENT" in note]
    assert not problems, problems
