"""Micro-benchmarks of the core primitives, with real statistics.

These are classic pytest-benchmark measurements (many rounds) of the hot
paths every experiment exercises: hash-tree subset/containment lookups,
greedy containment, the length-2 fast path, candidate generation, and the
maximal filter.
"""

import random

import pytest

from repro.core.candidates import apriori_generate
from repro.core.counting import count_candidates, count_length2
from repro.core.hashtree import SequenceHashTree
from repro.core.maximal import maximal_sequences
from repro.core.sequence import OccurrenceIndex, id_sequence_contains
from repro.itemsets.hashtree import ItemsetHashTree

RNG = random.Random(1995)
from pytest_benchmark.fixture import BenchmarkFixture


def _random_id_events(
    num_events: int = 10, alphabet: int = 200, per_event: int = 4
) -> tuple[frozenset[int], ...]:
    return tuple(
        frozenset(RNG.randint(1, alphabet) for _ in range(per_event))
        for _ in range(num_events)
    )


CUSTOMERS = [_random_id_events() for _ in range(300)]
CANDIDATES = sorted(
    {
        (RNG.randint(1, 200), RNG.randint(1, 200), RNG.randint(1, 200))
        for _ in range(500)
    }
)


def test_itemset_hashtree_subsets(benchmark: BenchmarkFixture) -> None:
    stored = sorted(
        {
            tuple(sorted(RNG.sample(range(1, 120), RNG.randint(1, 3))))
            for _ in range(800)
        }
    )
    tree = ItemsetHashTree(stored)
    transaction = tuple(sorted(RNG.sample(range(1, 120), 8)))
    benchmark(tree.subsets_of, transaction)


def test_sequence_hashtree_contained_in(benchmark: BenchmarkFixture) -> None:
    tree = SequenceHashTree(CANDIDATES)
    events = CUSTOMERS[0]

    def probe() -> set:
        return tree.contained_in(OccurrenceIndex(events))

    benchmark(probe)


def test_greedy_containment(benchmark: BenchmarkFixture) -> None:
    events = CUSTOMERS[0]
    pattern = CANDIDATES[0]
    benchmark(id_sequence_contains, pattern, events)


def test_count_candidates_hashtree(benchmark: BenchmarkFixture) -> None:
    benchmark.pedantic(
        count_candidates,
        args=(CUSTOMERS, CANDIDATES),
        kwargs={"strategy": "hashtree"},
        rounds=3,
        iterations=1,
    )


def test_count_candidates_naive(benchmark: BenchmarkFixture) -> None:
    benchmark.pedantic(
        count_candidates,
        args=(CUSTOMERS, CANDIDATES),
        kwargs={"strategy": "naive"},
        rounds=3,
        iterations=1,
    )


def test_count_length2_fast_path(benchmark: BenchmarkFixture) -> None:
    benchmark.pedantic(count_length2, args=(CUSTOMERS,), rounds=3, iterations=1)


def test_apriori_generate(benchmark: BenchmarkFixture) -> None:
    pairs = sorted({(RNG.randint(1, 60), RNG.randint(1, 60)) for _ in range(900)})
    benchmark(apriori_generate, pairs)


def test_maximal_filter(benchmark: BenchmarkFixture) -> None:
    supported = {}
    for _ in range(400):
        length = RNG.randint(1, 4)
        events = tuple(
            frozenset(RNG.sample(range(1, 40), RNG.randint(1, 2)))
            for _ in range(length)
        )
        supported[events] = RNG.randint(1, 50)
    benchmark.pedantic(maximal_sequences, args=(supported,), rounds=3, iterations=1)


@pytest.mark.parametrize("strategy", ["hashtree", "naive"])
def test_counting_strategies_same_result(strategy: str, benchmark: BenchmarkFixture) -> None:
    """Guard: both engines count identically on the micro workload."""
    counts = benchmark.pedantic(
        count_candidates,
        args=(CUSTOMERS[:50], CANDIDATES[:100]),
        kwargs={"strategy": strategy},
        rounds=1,
        iterations=1,
    )
    assert sum(counts.values()) == sum(
        count_candidates(CUSTOMERS[:50], CANDIDATES[:100], strategy="naive").values()
    )
