"""Fig. 9: scale-up with transactions-per-customer and items-per-transaction
(the paper reports superlinear growth with sequence density)."""

from benchmarks.conftest import SaveFigure, assert_no_disagreement
from repro.experiments.figures import fig9_scaleup_density
from pytest_benchmark.fixture import BenchmarkFixture


def test_fig9_scaleup_density(benchmark: BenchmarkFixture, save_figure: SaveFigure) -> None:
    figure = benchmark.pedantic(fig9_scaleup_density, rounds=1, iterations=1)
    save_figure(figure)
    assert_no_disagreement(figure)

    # Each family's relative runtime must grow with density.
    for family, points in figure.series.items():
        relatives = [y for _, y in points]
        assert relatives[-1] >= relatives[0], (family, points)
