#!/usr/bin/env python3
"""Serving-tier benchmark: query latency, throughput, and hot-swap stall.

Mines a synthetic dataset into a patterns file, starts the asyncio
:class:`~repro.serving.server.PatternServer` in-process, then drives it
over real TCP connections (keep-alive HTTP/1.1, one connection per
client) in two phases:

* **query** — for each concurrency level, every client issues a fixed
  number of ``/match`` + ``/predict`` requests; rows record p50/p99
  latency and aggregate requests/second.
* **swap_under_load** — clients keep querying while the pattern file is
  atomically rewritten and hot-swapped in a loop. The row records that
  zero requests errored, how many snapshot generations responses
  observed, and the measured stall: the worst request latency during
  swapping compared against the worst latency of the no-swap baseline
  at the same concurrency (``stall_ms``), plus how many swap-phase
  requests exceeded that baseline maximum (``stalled_requests``). A
  snapshot publish is one attribute assignment, so at most the requests
  in flight at that instant can even observe the swap.

Run:  PYTHONPATH=src python benchmarks/bench_serving.py
      PYTHONPATH=src python benchmarks/bench_serving.py \
          --concurrency 1,4,16 --requests 300 --output BENCH_serving.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import statistics
import sys
import tempfile
import time
from typing import Any
from urllib.parse import quote

SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from results_io import write_bench_json  # noqa: E402

from repro.cli import main as cli_main  # noqa: E402
from repro.io.patterns import read_patterns, write_patterns  # noqa: E402
from repro.serving.index import PatternIndex  # noqa: E402
from repro.serving.server import PatternServer  # noqa: E402


def percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def prepare_patterns(args: argparse.Namespace, workdir: str) -> str:
    """Generate and mine the dataset once; return the patterns path."""
    data = os.path.join(workdir, "data.spmf")
    patterns = os.path.join(workdir, "patterns.txt")
    if cli_main([
        "generate", "--dataset", args.dataset,
        "--customers", str(args.customers), "--seed", str(args.seed),
        "--output", data,
    ]) != 0:
        raise ValueError("dataset generation failed")
    if cli_main([
        "mine", "--input", data, "--minsup", str(args.minsup),
        "--output", patterns,
    ]) != 0:
        raise ValueError("mining failed")
    return patterns


def build_targets(patterns_path: str, batch: int) -> list[bytes]:
    """Pre-render one batch of raw HTTP requests derived from the mined
    patterns (full containers for /match, prefixes for /predict)."""
    index = PatternIndex.from_file(patterns_path)
    mined = sorted(index.patterns(), key=lambda p: p.sequence.sort_key())
    if not mined:
        raise ValueError("no patterns mined; lower --minsup")
    requests: list[bytes] = []
    for i in range(batch):
        pattern = mined[i % len(mined)]
        text = quote(str(pattern.sequence))
        if i % 2 == 0:
            target = f"/match?seq={text}"
        else:
            target = f"/predict?seq={text}&k=5"
        requests.append(
            (
                f"GET {target} HTTP/1.1\r\nHost: bench\r\n"
                f"Content-Length: 0\r\n\r\n"
            ).encode("latin-1")
        )
    return requests


async def run_client(
    port: int,
    requests: list[bytes],
    latencies: list[float],
    generations: set[int],
    errors: list[str],
) -> None:
    """One keep-alive connection issuing every request in sequence."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        for raw in requests:
            started = time.perf_counter()
            writer.write(raw)
            await writer.drain()
            status_line = await reader.readline()
            status = int(status_line.split()[1])
            length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            body = await reader.readexactly(length)
            latencies.append((time.perf_counter() - started) * 1000.0)
            if status != 200:
                errors.append(f"HTTP {status}: {body[:100]!r}")
            else:
                payload = json.loads(body)
                if "generation" in payload:
                    generations.add(int(payload["generation"]))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def measure_level(
    server: PatternServer,
    requests: list[bytes],
    concurrency: int,
) -> dict[str, Any]:
    latencies: list[float] = []
    generations: set[int] = set()
    errors: list[str] = []
    started = time.perf_counter()
    await asyncio.gather(*(
        run_client(server.port, requests, latencies, generations, errors)
        for _ in range(concurrency)
    ))
    elapsed = time.perf_counter() - started
    if errors:
        raise ValueError(f"{len(errors)} failed requests: {errors[0]}")
    return {
        "mode": "query",
        "concurrency": concurrency,
        "requests": len(latencies),
        "p50_ms": round(percentile(latencies, 0.50), 4),
        "p99_ms": round(percentile(latencies, 0.99), 4),
        "max_ms": round(max(latencies), 4),
        "req_per_s": round(len(latencies) / elapsed, 1),
    }


async def measure_swaps(
    server: PatternServer,
    patterns_path: str,
    requests: list[bytes],
    concurrency: int,
    swaps: int,
    baseline_max_ms: float,
) -> dict[str, Any]:
    latencies: list[float] = []
    generations: set[int] = set()
    errors: list[str] = []
    clients_done = asyncio.Event()
    swap_ms: list[float] = []

    async def swapper() -> None:
        content = list(read_patterns(patterns_path, strict=True))
        performed = 0
        while performed < swaps and not clients_done.is_set():
            write_patterns(content, patterns_path)
            started = time.perf_counter()
            await server.reload()
            swap_ms.append((time.perf_counter() - started) * 1000.0)
            performed += 1
            await asyncio.sleep(0)

    async def clients() -> None:
        try:
            await asyncio.gather(*(
                run_client(
                    server.port, requests, latencies, generations, errors
                )
                for _ in range(concurrency)
            ))
        finally:
            clients_done.set()

    await asyncio.gather(swapper(), clients())
    if errors:
        raise ValueError(f"{len(errors)} failed requests: {errors[0]}")
    stalled = sum(1 for ms in latencies if ms > baseline_max_ms)
    return {
        "mode": "swap_under_load",
        "concurrency": concurrency,
        "requests": len(latencies),
        "swaps": len(swap_ms),
        "errors": 0,
        "generations_observed": len(generations),
        "p50_ms": round(percentile(latencies, 0.50), 4),
        "p99_ms": round(percentile(latencies, 0.99), 4),
        "max_ms": round(max(latencies), 4),
        "baseline_max_ms": round(baseline_max_ms, 4),
        "stall_ms": round(max(0.0, max(latencies) - baseline_max_ms), 4),
        "stalled_requests": stalled,
        "stalled_per_swap": round(stalled / max(1, len(swap_ms)), 3),
        "mean_swap_ms": round(statistics.fmean(swap_ms), 4),
    }


async def run_benchmark(
    args: argparse.Namespace, patterns_path: str
) -> list[dict[str, Any]]:
    requests = build_targets(patterns_path, args.requests)
    server = PatternServer(patterns_path)
    await server.start()
    try:
        rows: list[dict[str, Any]] = []
        # Warm up the loop and code paths before timing anything.
        await measure_level(server, requests[: min(50, len(requests))], 2)
        baseline_max = 0.0
        for concurrency in args.levels:
            row = await measure_level(server, requests, concurrency)
            baseline_max = max(baseline_max, row["max_ms"])
            rows.append(row)
            print(
                f"query c={concurrency}: p50={row['p50_ms']}ms "
                f"p99={row['p99_ms']}ms {row['req_per_s']} req/s"
            )
        swap_row = await measure_swaps(
            server,
            patterns_path,
            requests,
            max(args.levels),
            args.swaps,
            baseline_max,
        )
        rows.append(swap_row)
        print(
            f"swap_under_load c={swap_row['concurrency']}: "
            f"{swap_row['swaps']} swaps, errors={swap_row['errors']}, "
            f"stall={swap_row['stall_ms']}ms "
            f"({swap_row['stalled_per_swap']} stalled req/swap)"
        )
        return rows
    finally:
        await server.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="C10-T2.5-S4-I1.25")
    parser.add_argument("--customers", type=int, default=200)
    parser.add_argument("--minsup", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--requests", type=int, default=200,
                        help="requests per client per level")
    parser.add_argument("--concurrency", default="1,4,16",
                        help="comma-separated client counts (>= 3 levels "
                        "for a committed snapshot)")
    parser.add_argument("--swaps", type=int, default=25,
                        help="hot swaps performed during the load phase")
    parser.add_argument("--output", default="BENCH_serving.json")
    args = parser.parse_args()
    args.levels = [int(part) for part in args.concurrency.split(",") if part]
    if not args.levels:
        raise ValueError("--concurrency must name at least one level")

    with tempfile.TemporaryDirectory() as workdir:
        patterns_path = prepare_patterns(args, workdir)
        rows = asyncio.run(run_benchmark(args, patterns_path))

    config = {
        key: value
        for key, value in vars(args).items()
        if key not in ("output", "levels")
    }
    write_bench_json(args.output, "serving", config=config, rows=rows)
    return 0


if __name__ == "__main__":
    sys.exit(main())
