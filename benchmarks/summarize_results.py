#!/usr/bin/env python3
"""Append the recorded figure tables to EXPERIMENTS.md.

Run after a full ``pytest benchmarks/ --benchmark-only`` pass; it quotes
selected ``benchmarks/results/*.txt`` reports (tables only, charts
stripped) into a "Measured results" section so EXPERIMENTS.md carries
the actual numbers of the recorded run.
"""

from __future__ import annotations

from pathlib import Path

from repro.io.atomic import atomic_write_text

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"
EXPERIMENTS = ROOT / "EXPERIMENTS.md"

MARKER = "## Measured results (final recorded run)"

QUOTED = [
    "table2-datasets",
    "fig6-C10-T2.5-S4-I1.25",
    "fig6-C10-T5-S4-I1.25",
    "fig6-C10-T5-S4-I2.5",
    "fig6-C20-T2.5-S4-I1.25",
    "fig6-C20-T2.5-S8-I1.25",
    "fig7-candidates",
    "fig8-scaleup-customers",
    "fig9-scaleup-density",
    "ablation-counting",
    "ablation-phases",
    "ablation-next-policy",
    "ablation-dynamic-step",
    "baseline-prefixspan",
]


def table_part(text: str) -> str:
    """Strip the ASCII chart: keep everything before the chart header."""
    lines = []
    for line in text.splitlines():
        if line.startswith(("fig6-", "fig7-", "fig8-", "fig9-")) and " vs " in line:
            break
        lines.append(line.rstrip())
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines)


def main() -> None:
    content = EXPERIMENTS.read_text(encoding="utf-8")
    if MARKER in content:
        content = content[: content.index(MARKER)].rstrip() + "\n"
    sections = [MARKER, ""]
    for figure_id in QUOTED:
        path = RESULTS / f"{figure_id}.txt"
        if not path.exists():
            sections.append(f"### {figure_id}\n\n(not recorded)\n")
            continue
        sections.append(f"### {figure_id}\n")
        sections.append("```")
        sections.append(table_part(path.read_text(encoding="utf-8")))
        sections.append("```")
        sections.append("")
    atomic_write_text(
        EXPERIMENTS, content.rstrip() + "\n\n" + "\n".join(sections) + "\n"
    )
    print(f"EXPERIMENTS.md updated with {len(QUOTED)} recorded tables")


if __name__ == "__main__":
    main()
