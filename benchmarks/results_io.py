"""Shared machine-readable results writer for the benchmark scripts.

Every benchmark that wants a perf trajectory (CI artifacts, committed
``BENCH_*.json`` snapshots) funnels through :func:`write_bench_json`, so
all emitted files share one envelope::

    {
      "benchmark": "<name>",
      "created_utc": "<ISO-8601>",
      "machine": {"cpus": N, "platform": "...", "python": "..."},
      "config": {...},   # the argparse namespace that produced the run
      "rows": [...]      # benchmark-specific measurements
    }

No third-party dependencies — the bench scripts must run on machines
without pytest/pytest-benchmark installed (the one non-stdlib import is
:mod:`repro.io.atomic`, our own package, for torn-write-safe output).
"""

from __future__ import annotations

import json
import os
import platform
import sys
from datetime import datetime, timezone
from typing import Any


def machine_info() -> dict[str, Any]:
    return {
        "cpus": os.cpu_count(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
    }


def write_bench_json(
    path: str,
    benchmark: str,
    *,
    config: dict[str, Any],
    rows: list[dict[str, Any]],
) -> None:
    """Write one benchmark envelope to ``path`` (pretty-printed, trailing
    newline, keys in a stable order for reviewable diffs)."""
    payload = {
        "benchmark": benchmark,
        "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": machine_info(),
        "config": config,
        "rows": rows,
    }
    # Imported here, not at module top: bench scripts put src/ on
    # sys.path themselves, and doing it lazily keeps this module
    # importable regardless of path-setup order.
    from repro.io.atomic import atomic_writer

    with atomic_writer(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"wrote {path}")
