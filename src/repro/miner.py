"""The five-phase mining pipeline (Section 3 of the paper).

This module is the public entry point of the library:

>>> from repro import SequenceDatabase, mine_sequential_patterns
>>> db = SequenceDatabase.from_sequences([
...     [(30,), (90,)],
...     [(10, 20), (30,), (40, 60, 70)],
...     [(30, 50, 70)],
...     [(30,), (40, 70), (90,)],
...     [(90,)],
... ])
>>> result = mine_sequential_patterns(db, minsup=0.25)
>>> [str(p.sequence) for p in result.patterns]
['<(30)(90)>', '<(30)(40 70)>']

The pipeline runs the paper's phases in order — sort (done by the
database constructors), litemset, transformation, sequence, maximal — with
the sequence phase delegating to AprioriAll, AprioriSome or DynamicSome
per :class:`MiningParams`. All three algorithms yield the same patterns;
they differ in how much counting work they do, which the attached
:class:`~repro.core.stats.AlgorithmStats` records.

A fourth algorithm, ``"prefixspan"``, bypasses the candidate pipeline
entirely and mines by pattern growth (:mod:`repro.core.prefixspan`);
its maximal output is byte-identical to the candidate family's, but the
candidate-only knobs — counting strategies, pass checkpoints,
incremental state — do not apply and are rejected loudly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Iterable, Literal

if TYPE_CHECKING:
    from repro.db.partitioned import PartitionedDatabase
    from repro.incremental.state import MiningState

from repro.core.aprioriall import apriori_all
from repro.core.apriorisome import NextLengthPolicy, apriori_some
from repro.core.dynamicsome import dynamic_some
from repro.core.maximal import maximal_sequences, sequence_of_events
from repro.core.phase import CountingOptions, SequencePhaseResult
from repro.core.prefixspan import mine_prefixspan
from repro.core.sequence import Sequence
from repro.core.stats import AlgorithmStats, PhaseTimings
from repro.db.database import SequenceDatabase
from repro.db.records import Transaction
from repro.db.transform import TransformedDatabase, transform_database
from repro.itemsets.apriori import (
    LitemsetPassStats,
    LitemsetResult,
    find_litemsets,
)
from repro.itemsets.litemsets import LitemsetCatalog

AlgorithmName = Literal[
    "aprioriall", "apriorisome", "dynamicsome", "prefixspan"
]

#: The paper's candidate-generation family. Knobs that only make sense
#: for candidate counting — counting strategies, pass checkpoints,
#: ``dynamic_step``, incremental state — are defined over exactly these;
#: tests and benches that exercise those knobs parametrize over this
#: tuple.
ALGORITHM_NAMES: tuple[AlgorithmName, ...] = (
    "aprioriall",
    "apriorisome",
    "dynamicsome",
)

#: Every mining algorithm, the pattern-growth engine included. All four
#: produce byte-identical maximal patterns (the differential-oracle
#: suite holds them to it); ``"prefixspan"`` differs in *how* — no
#: candidate generation, no transformed database, no counting
#: strategies (see :mod:`repro.core.prefixspan`).
ALL_ALGORITHM_NAMES: tuple[AlgorithmName, ...] = ALGORITHM_NAMES + (
    "prefixspan",
)

__all__ = [
    "ALGORITHM_NAMES",
    "ALL_ALGORITHM_NAMES",
    "AlgorithmName",
    "MiningParams",
    "MiningResult",
    "Pattern",
    "mine",
    "mine_from_transactions",
    "mine_sequential_patterns",
]


@dataclass(frozen=True, slots=True)
class MiningParams:
    """Everything that configures one mining run."""

    minsup: float
    algorithm: AlgorithmName = "aprioriall"
    counting: CountingOptions = CountingOptions()
    next_policy: NextLengthPolicy = NextLengthPolicy()
    dynamic_step: int = 2
    max_pattern_length: int | None = None
    max_litemset_size: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.minsup <= 1.0:
            raise ValueError(f"minsup must be in (0, 1], got {self.minsup}")
        if self.algorithm not in ALL_ALGORITHM_NAMES:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; "
                f"expected one of {ALL_ALGORITHM_NAMES}"
            )
        if self.dynamic_step < 1:
            raise ValueError("dynamic_step must be >= 1")
        if self.algorithm == "prefixspan":
            # Pattern growth has no candidate counting passes: a
            # checkpoint store would never record anything and a
            # non-default counting strategy would never run. Reject both
            # loudly rather than silently ignore the knob.
            if self.counting.checkpoint is not None:
                raise ValueError(
                    "prefixspan has no counting passes to checkpoint; "
                    "drop the checkpoint or use an apriori-family algorithm"
                )
            if self.counting.strategy != "hashtree":
                raise ValueError(
                    "counting strategies do not apply to prefixspan; "
                    "drop the strategy or use an apriori-family algorithm"
                )

    def with_(self, **changes: Any) -> "MiningParams":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True, slots=True)
class Pattern:
    """One maximal sequential pattern with its exact support."""

    sequence: Sequence
    count: int
    support: float

    def __str__(self) -> str:
        return f"{self.sequence}  (support {self.support:.2%}, {self.count} customers)"


@dataclass(slots=True)
class MiningResult:
    """The answer plus full instrumentation of one mining run."""

    patterns: list[Pattern]
    num_customers: int
    threshold: int
    params: MiningParams
    timings: PhaseTimings
    algorithm_stats: AlgorithmStats
    litemset_result: LitemsetResult
    large_counts_by_length: dict[int, int] = field(default_factory=dict)
    #: Snapshot for the incremental subsystem; populated when the run
    #: was asked to collect one (``mine(..., collect_state=True)``).
    state: "MiningState | None" = None

    @property
    def num_patterns(self) -> int:
        return len(self.patterns)

    @property
    def num_litemsets(self) -> int:
        return len(self.litemset_result)

    def sequences(self) -> list[Sequence]:
        """Just the pattern sequences, in deterministic order."""
        return [p.sequence for p in self.patterns]

    def summary(self) -> str:
        lengths = (
            ", ".join(
                f"L{length}={count}"
                for length, count in sorted(self.large_counts_by_length.items())
            )
            or "none"
        )
        return (
            f"{self.params.algorithm}: {self.num_patterns} maximal patterns "
            f"(threshold {self.threshold}/{self.num_customers} customers, "
            f"{self.num_litemsets} litemsets, large by length: {lengths}, "
            f"{self.timings.total_seconds:.3f}s)"
        )


def _sequence_phase_runner(
    params: MiningParams, collect_counts: bool
) -> Callable[[TransformedDatabase, int], SequencePhaseResult]:
    if params.algorithm == "aprioriall":
        return lambda tdb, threshold: apriori_all(
            tdb,
            threshold,
            counting=params.counting,
            max_length=params.max_pattern_length,
            collect_counts=collect_counts,
        )
    if params.algorithm == "apriorisome":
        return lambda tdb, threshold: apriori_some(
            tdb,
            threshold,
            counting=params.counting,
            next_policy=params.next_policy,
            max_length=params.max_pattern_length,
            collect_counts=collect_counts,
        )
    return lambda tdb, threshold: dynamic_some(
        tdb,
        threshold,
        step=params.dynamic_step,
        counting=params.counting,
        max_length=params.max_pattern_length,
        collect_counts=collect_counts,
    )


def _mine_with_prefixspan(
    db: "SequenceDatabase | PartitionedDatabase",
    params: MiningParams,
    *,
    sort_seconds: float,
) -> MiningResult:
    """The pattern-growth pipeline behind ``algorithm="prefixspan"``.

    PrefixSpan has no litemset/transform/candidate phases of its own, so
    the paper's phase structure is mapped onto what it does do: the
    length-1 seed scan is reported as the litemset phase (its supports
    *are* the large-itemset supports — every large itemset appears as a
    single-event frequent sequence), growth as the sequence phase, the
    shared maximal filter as the maximal phase, transform as zero. The
    result is a fully populated :class:`MiningResult` whose patterns are
    byte-identical to the candidate family's.
    """
    threshold = db.threshold(params.minsup)

    started = time.perf_counter()
    grown = mine_prefixspan(
        db,
        params.minsup,
        max_pattern_length=params.max_pattern_length,
        workers=params.counting.workers,
        chunk_size=params.counting.chunk_size,
    )
    sequence_seconds = time.perf_counter() - started - grown.seed_seconds

    started = time.perf_counter()
    maximal = maximal_sequences(grown.frequent)
    patterns = sorted(
        (
            Pattern(
                sequence=sequence_of_events(events),
                count=count,
                support=count / db.num_customers if db.num_customers else 0.0,
            )
            for events, count in maximal.items()
        ),
        key=lambda p: p.sequence.sort_key(),
    )
    maximal_seconds = time.perf_counter() - started

    supports = grown.litemset_supports()
    large_itemsets_by_size: dict[int, int] = {}
    for itemset in supports:
        size = len(itemset)
        large_itemsets_by_size[size] = large_itemsets_by_size.get(size, 0) + 1
    litemset_result = LitemsetResult(
        supports=supports,
        passes=tuple(
            LitemsetPassStats(
                length=size,
                # Pattern growth never generates candidates: only the
                # single-item scan has an honest candidate count.
                num_candidates=(
                    len(grown.item_counts) if size == 1 else num_large
                ),
                num_large=num_large,
            )
            for size, num_large in sorted(large_itemsets_by_size.items())
        ),
        item_counts=grown.item_counts,
    )

    return MiningResult(
        patterns=patterns,
        num_customers=db.num_customers,
        threshold=threshold,
        params=params,
        timings=PhaseTimings(
            sort_seconds=sort_seconds,
            litemset_seconds=grown.seed_seconds,
            transform_seconds=0.0,
            sequence_seconds=sequence_seconds,
            maximal_seconds=maximal_seconds,
        ),
        algorithm_stats=grown.stats,
        litemset_result=litemset_result,
        large_counts_by_length=grown.counts_by_length(),
        state=None,
    )


def mine(
    db: "SequenceDatabase | PartitionedDatabase",
    params: MiningParams,
    *,
    sort_seconds: float = 0.0,
    collect_state: bool = False,
) -> MiningResult:
    """Run phases 2–5 over an already-sorted database.

    ``db`` is an in-memory :class:`~repro.db.database.SequenceDatabase`
    or a disk-backed
    :class:`~repro.db.partitioned.PartitionedDatabase`; with the latter
    every phase streams partition by partition and peak memory stays at
    one partition, not the database (see :mod:`repro.db.partitioned`).

    With ``collect_state=True`` the result additionally carries a
    :class:`~repro.incremental.state.MiningState` snapshot — the large
    sets and the negative border with exact supports — which makes the
    run updatable by :func:`repro.incremental.update.update_mining`
    after the database grows (see :mod:`repro.incremental`).
    """
    if params.algorithm == "prefixspan":
        if collect_state:
            raise ValueError(
                "prefixspan does not build incremental mining state; "
                "use an apriori-family algorithm with collect_state=True"
            )
        return _mine_with_prefixspan(db, params, sort_seconds=sort_seconds)
    threshold = db.threshold(params.minsup)

    started = time.perf_counter()
    litemset_result = find_litemsets(
        db,
        params.minsup,
        max_length=params.max_litemset_size,
        checkpoint=params.counting.checkpoint,
    )
    litemset_seconds = time.perf_counter() - started

    started = time.perf_counter()
    catalog = LitemsetCatalog.from_result(litemset_result)
    tdb = transform_database(db, catalog)
    transform_seconds = time.perf_counter() - started

    started = time.perf_counter()
    phase_result = _sequence_phase_runner(params, collect_state)(tdb, threshold)
    sequence_seconds = time.perf_counter() - started

    started = time.perf_counter()
    all_large = phase_result.all_large()
    expanded = {
        catalog.expand_events(id_sequence): count
        for id_sequence, count in all_large.items()
    }
    maximal = maximal_sequences(expanded)
    patterns = sorted(
        (
            Pattern(
                sequence=sequence_of_events(events),
                count=count,
                support=count / db.num_customers if db.num_customers else 0.0,
            )
            for events, count in maximal.items()
        ),
        key=lambda p: p.sequence.sort_key(),
    )
    maximal_seconds = time.perf_counter() - started

    state = None
    if collect_state:
        # Imported lazily: the incremental package's public surface
        # imports this module back.
        from repro.incremental.state import build_mining_state

        state = build_mining_state(
            minsup=params.minsup,
            algorithm=params.algorithm,
            strategy=params.counting.strategy,
            num_customers=db.num_customers,
            generation=getattr(db, "generation", 0),
            litemset_result=litemset_result,
            catalog=catalog,
            phase_result=phase_result,
            max_pattern_length=params.max_pattern_length,
            max_litemset_size=params.max_litemset_size,
        )

    return MiningResult(
        patterns=patterns,
        num_customers=db.num_customers,
        threshold=threshold,
        params=params,
        timings=PhaseTimings(
            sort_seconds=sort_seconds,
            litemset_seconds=litemset_seconds,
            transform_seconds=transform_seconds,
            sequence_seconds=sequence_seconds,
            maximal_seconds=maximal_seconds,
        ),
        algorithm_stats=phase_result.stats,
        litemset_result=litemset_result,
        large_counts_by_length={
            length: len(large)
            for length, large in sorted(phase_result.large_by_length.items())
        },
        state=state,
    )


def mine_from_transactions(
    transactions: Iterable[Transaction], params: MiningParams
) -> MiningResult:
    """Run all five phases, starting from raw (unsorted) records."""
    started = time.perf_counter()
    db = SequenceDatabase.from_transactions(transactions)
    sort_seconds = time.perf_counter() - started
    return mine(db, params, sort_seconds=sort_seconds)


def mine_sequential_patterns(
    db: "SequenceDatabase | PartitionedDatabase",
    minsup: float,
    *,
    algorithm: AlgorithmName = "aprioriall",
    collect_state: bool = False,
    **kwargs: Any,
) -> MiningResult:
    """Convenience wrapper: mine ``db`` at ``minsup`` with one algorithm.

    ``db`` may be in-memory or partitioned, as in :func:`mine` —
    including ``collect_state`` for an updatable result. Extra keyword
    arguments are forwarded to :class:`MiningParams`.
    """
    return mine(
        db,
        MiningParams(minsup=minsup, algorithm=algorithm, **kwargs),
        collect_state=collect_state,
    )
