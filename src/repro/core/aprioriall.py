"""AprioriAll (Section 3.3 of the paper).

The straightforward level-wise algorithm: every pass k generates candidate
k-sequences from the large (k−1)-sequences, counts them all in one scan of
the transformed database, and keeps the large ones. It terminates when a
pass produces no large sequences (anti-monotonicity of support guarantees
nothing longer can be large) or no candidates at all. Non-maximal large
sequences are *not* filtered here — the maximal phase does that — which is
exactly the work AprioriSome's backward phase avoids.
"""

from __future__ import annotations

import time

from repro.core.candidates import apriori_generate
from repro.core.counting import count_candidates, count_length2, filter_large
from repro.core.phase import CountingOptions, SequencePhaseResult
from repro.core.protocols import TransformedView
from repro.core.stats import AlgorithmStats


def apriori_all(
    tdb: TransformedView,
    threshold: int,
    *,
    counting: CountingOptions = CountingOptions(),
    max_length: int | None = None,
    collect_counts: bool = False,
) -> SequencePhaseResult:
    """Find all large sequences with the AprioriAll algorithm.

    ``threshold`` is the integer customer count from
    :func:`repro.db.database.support_threshold`. ``max_length`` optionally
    caps the pattern length (``None`` = run to fixpoint, as the paper
    does). ``collect_counts`` retains every pass's full counts for the
    incremental subsystem (see :class:`SequencePhaseResult`).
    """
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    stats = AlgorithmStats("aprioriall")
    result = SequencePhaseResult(stats=stats, collect_counts=collect_counts)

    # One-time per-run database preparation: the bitset strategy compiles
    # every customer into occurrence bitmasks here (the vertical strategy
    # additionally inverts them into per-id lists), so the per-length
    # passes below never rebuild per-customer indexes.
    sequences = counting.prepare_sequences(tdb.sequences)

    # L_1 comes for free from the litemset phase: the support of <(X)>
    # equals the support of the itemset X, and every catalog entry meets
    # the threshold by construction.
    l1 = tdb.catalog.one_sequence_supports()
    result.large_by_length[1] = l1
    stats.record_generated(1, len(l1))
    stats.record_pass(
        length=1,
        phase="litemset",
        num_candidates=len(l1),
        num_large=len(l1),
        elapsed_seconds=0.0,
    )

    k = 2
    while result.large_by_length.get(k - 1):
        if max_length is not None and k > max_length:
            break
        started = time.perf_counter()
        if k == 2:
            # C_2 is all |L_1|² ordered pairs; count occurring pairs
            # directly instead of materializing them (see count_length2).
            num_candidates = len(l1) * len(l1)
            counts = count_length2(sequences, **counting.sharding_kwargs())
            result.length2_complete = True
        else:
            candidates, parents = apriori_generate(
                result.large_by_length[k - 1].keys(), with_parents=True
            )
            num_candidates = len(candidates)
            if not candidates:
                stats.record_generated(k, 0)
                break
            counts = count_candidates(
                sequences, candidates, parents=parents, **counting.kwargs()
            )
        stats.record_generated(k, num_candidates)
        result.record_counts(k, counts)
        large = filter_large(counts, threshold)
        # Stateful backends (vertical) drop the non-surviving candidates'
        # memoized lists: only large sequences join the next pass.
        counting.note_large(sequences, large)
        stats.record_pass(
            length=k,
            phase="forward",
            num_candidates=num_candidates,
            num_large=len(large),
            elapsed_seconds=time.perf_counter() - started,
        )
        if not large:
            break
        result.large_by_length[k] = large
        k += 1
    return result
