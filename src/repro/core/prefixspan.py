"""PrefixSpan pattern-growth engine (Pei et al., IEEE TKDE 2004).

The production counterpart of the oracle in
:mod:`repro.baselines.prefixspan`: where the 1995 paper's AprioriAll
family *generates* every candidate of length k and then counts it,
pattern growth only ever touches sequences that actually occur — it
extends a known-frequent *prefix* one item at a time and counts the
extensions in the prefix's own projected database. No candidate
generation means no candidate explosion, which is exactly the low-minsup
regime where the candidate family melts down (``BENCH_counting.json``,
``lowminsup`` rows).

Design points, in the order they matter:

* **Pseudo-projection.** A projected database is never copied. For a
  prefix it is a list of ``(customer index, event position)`` pairs per
  partition — the position where the prefix's greedy (earliest) match
  ends. Earliest-match positions dominate every alternative match for
  both extension kinds, so the greedy projection is lossless.
* **Full itemset-element semantics.** Two extension kinds are counted in
  one scan of the projected customers, exactly as in the baseline:
  an **s-extension** opens a new event (item ``x`` strictly after the
  matched position) and an **i-extension** joins the prefix's last event
  ``e`` (some event at-or-after the matched position contains
  ``e ∪ {x}``, enumerated canonically with ``x > max(e)``).
* **Level-synchronous growth.** The frontier of frequent prefixes is
  grown one round at a time: a *counting sweep* streams every partition
  once and accumulates global extension counts, then a *projection
  sweep* streams them again and builds the surviving children's
  projections from their parents' positions. Two linear passes per round
  is the price of never needing more than one partition in memory.
* **Out-of-core streaming.** The engine dispatches on the structural
  :class:`~repro.core.protocols.PartitionedRecordStream` protocol: a
  disk-backed database (:class:`~repro.db.partitioned.PartitionedDatabase`)
  is re-read partition by partition every sweep, so peak memory stays at
  one *projected* partition plus the frontier's index pairs — the same
  budget contract as every other out-of-core counting pass. An in-memory
  database is projected once and treated as a single resident partition.
* **Frequent-item projection.** Pass 1 streams the database once to
  count per-item customer support; every later sweep sees events
  filtered to the frequent items (infrequent items can appear in no
  frequent pattern, and dropping then-empty events changes no
  containment relation over the surviving alphabet). The baseline oracle
  shares these helpers (:func:`project_events`,
  :func:`first_event_containing`, :func:`count_item_supports`).
* **Prefix-sharded parallelism.** ``workers > 1`` shards the frequent
  length-1 seed items across a process pool
  (:func:`repro.parallel.executor.parallel_prefixspan`): every pattern
  is grown from exactly one seed (the minimum of its first event), so
  per-worker results are disjoint and merge by plain union — and the
  pool inherits the executor's broken-pool retry/degrade fault
  tolerance.

The result is the **complete frequent-sequence set** with exact customer
supports; :func:`repro.miner.mine` applies the shared maximal filter and
``Pattern`` rendering, which is what makes the engine's output
byte-identical to the Apriori family's (the differential-oracle suite
holds it to that).
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence as PySequence

from repro.core.maximal import EventsTuple
from repro.core.protocols import (
    CustomerRecord,
    Itemset,
    PartitionedRecordStream,
    SequenceDatabaseLike,
)
from repro.core.stats import AlgorithmStats

__all__ = [
    "PrefixSpanResult",
    "count_item_supports",
    "first_event_containing",
    "first_event_with_item",
    "grow_seed_range",
    "mine_prefixspan",
    "project_events",
]

#: One pseudo-projection entry: ``(customer index, matched position)``.
#: The customer index addresses the *projected* partition list (stable
#: across sweeps: file order, empty-projection customers skipped).
ProjectionEntry = tuple[int, int]

#: A prefix's pseudo-projection, one entry list per partition.
Projections = list[list[ProjectionEntry]]


def project_events(
    events: Iterable[Itemset], keep: frozenset[int]
) -> EventsTuple:
    """``events`` frozen and filtered to the items in ``keep``.

    Events left empty by the filter are dropped: they can match no
    pattern element over the ``keep`` alphabet, and relative order of
    the survivors — all that containment semantics depend on — is
    preserved. Shared by the engine and the baseline oracle so both see
    the identical projected view.
    """
    projected = []
    for event in events:
        kept = frozenset(event) & keep
        if kept:
            projected.append(kept)
    return tuple(projected)


def first_event_containing(
    events: EventsTuple, needed: frozenset[int], start: int
) -> int | None:
    """Index of the first event at or after ``start`` with ``needed`` ⊆
    event, or ``None``. The i-extension (and prefix re-match) probe."""
    for index in range(start, len(events)):
        if needed <= events[index]:
            return index
    return None


def first_event_with_item(
    events: EventsTuple, item: int, start: int
) -> int | None:
    """Index of the first event at or after ``start`` containing
    ``item``, or ``None``. The s-extension probe (membership, not
    subset — cheaper than :func:`first_event_containing` on a
    singleton)."""
    for index in range(start, len(events)):
        if item in events[index]:
            return index
    return None


def count_item_supports(db: SequenceDatabaseLike) -> Counter[int]:
    """Pass 1: per-item customer support, one streaming scan.

    Consumes the database's cheapest stream (``iter_unordered`` when the
    storage offers one — the partitioned database's merge-free path) and
    retains nothing but the counter: the scan that had to happen anyway
    never materializes a customer list.
    """
    counts: Counter[int] = Counter()
    for customer in _iter_customers(db):
        seen: set[int] = set()
        for event in customer.events:
            seen.update(event)
        for item in seen:
            counts[item] += 1
    return counts


def _iter_customers(db: SequenceDatabaseLike) -> Iterator[CustomerRecord]:
    """Customers in any order — support counting is order-independent,
    and a partitioned database offers a merge-free unordered stream."""
    unordered = getattr(db, "iter_unordered", None)
    if unordered is not None:
        return iter(unordered())
    return iter(db)


# --------------------------------------------------------------------- #
# Projected sources: the per-partition resident view of one sweep
# --------------------------------------------------------------------- #


class _ProjectedSource:
    """Partition-addressable projected customers with *stable indices*.

    ``load(p)`` returns partition ``p``'s customers as projected event
    tuples, in a file order that is identical on every call (it depends
    only on the stored partition and the frequent-item set), so the
    ``(customer index, position)`` pairs a sweep records remain valid
    for every later sweep. Customers whose projection is empty are
    skipped — they can support no pattern.
    """

    __slots__ = ("_stream", "_keep", "_cache")

    def __init__(
        self,
        db: SequenceDatabaseLike | PartitionedRecordStream | None,
        keep: frozenset[int],
        *,
        cache: list[EventsTuple] | None = None,
    ) -> None:
        self._keep = keep
        self._stream: PartitionedRecordStream | None = None
        self._cache: list[EventsTuple] | None = cache
        if cache is not None:
            return  # already-projected customers supplied directly
        if isinstance(db, PartitionedRecordStream):
            self._stream = db
        elif db is not None:
            # In-memory database: project once, keep resident — it is the
            # caller's data, already in memory.
            self._cache = self._project(iter(db))
        else:
            raise ValueError("either a database or a projected cache required")

    @property
    def num_partitions(self) -> int:
        if self._cache is not None:
            return 1
        assert self._stream is not None
        return self._stream.num_partitions

    def _project(
        self, customers: Iterator[CustomerRecord]
    ) -> list[EventsTuple]:
        keep = self._keep
        projected = []
        for customer in customers:
            events = project_events(customer.events, keep)
            if events:
                projected.append(events)
        return projected

    def load(self, index: int) -> list[EventsTuple]:
        """One partition's projected customers (re-read from storage on
        the partitioned path; the single cached list in memory)."""
        if self._cache is not None:
            return self._cache
        assert self._stream is not None
        return self._project(self._stream.iter_partition(index))


# --------------------------------------------------------------------- #
# Level-synchronous pattern growth
# --------------------------------------------------------------------- #


@dataclass(slots=True)
class _Node:
    """One frontier prefix with its pseudo-projection."""

    prefix: EventsTuple
    projections: Projections

    @property
    def count(self) -> int:
        return sum(len(entries) for entries in self.projections)


@dataclass(slots=True)
class _Extension:
    """One frequent extension of a frontier node, awaiting projection."""

    prefix: EventsTuple
    #: The subset probe of the projection sweep: the extended last event
    #: for an i-extension, ``None`` for an s-extension (item probe).
    i_event: frozenset[int] | None
    item: int


@dataclass(slots=True)
class PrefixSpanResult:
    """The complete frequent-sequence set of one pattern-growth run.

    ``frequent`` maps every frequent sequence — as a tuple of frozenset
    events — to its exact customer-support count. ``item_counts`` is
    pass 1's full negative border (every item seen, frequent or not),
    and ``stats`` records one :class:`~repro.core.stats.PassStats` row
    per growth round (``num_candidates`` = extensions counted,
    ``num_large`` = extensions that reached the threshold).
    """

    frequent: dict[EventsTuple, int]
    item_counts: dict[int, int]
    threshold: int
    num_customers: int
    seed_seconds: float
    stats: AlgorithmStats = field(
        default_factory=lambda: AlgorithmStats("prefixspan")
    )

    def litemset_supports(self) -> dict[Itemset, int]:
        """Single-event frequent sequences as itemset supports.

        Pattern growth discovers every large itemset ``X`` as the
        1-sequence ``<(X)>``, so this is the same mapping the Apriori
        litemset phase reports — the surrogate the mining pipeline uses
        for its instrumentation.
        """
        return {
            tuple(sorted(events[0])): count
            for events, count in self.frequent.items()
            if len(events) == 1
        }

    def counts_by_length(self) -> dict[int, int]:
        """Number of frequent sequences per event-count."""
        by_length: dict[int, int] = {}
        for events in self.frequent:
            by_length[len(events)] = by_length.get(len(events), 0) + 1
        return dict(sorted(by_length.items()))


def _seed_frontier(
    source: _ProjectedSource, seed_items: PySequence[int]
) -> list[_Node]:
    """Length-1 frontier: one node per seed item, projections built with
    one sweep (per-customer earliest position of every seed item)."""
    wanted = set(seed_items)
    projections: dict[int, Projections] = {
        item: [[] for _ in range(source.num_partitions)] for item in seed_items
    }
    for part in range(source.num_partitions):
        for cust_index, events in enumerate(source.load(part)):
            first_at: dict[int, int] = {}
            for position, event in enumerate(events):
                for item in event:
                    if item in wanted and item not in first_at:
                        first_at[item] = position
            for item, position in first_at.items():
                projections[item][part].append((cust_index, position))
    return [
        _Node(prefix=(frozenset((item,)),), projections=projections[item])
        for item in seed_items
    ]


def _count_extensions(
    source: _ProjectedSource, frontier: list[_Node], can_s_extend: bool
) -> list[tuple[Counter[int], Counter[int]]]:
    """Counting sweep: global (s, i) extension counts per frontier node."""
    counts = [(Counter[int](), Counter[int]()) for _ in frontier]
    for part in range(source.num_partitions):
        customers = source.load(part)
        for node, (s_counts, i_counts) in zip(frontier, counts):
            last_event = node.prefix[-1]
            last_max = max(last_event)
            for cust_index, position in node.projections[part]:
                events = customers[cust_index]
                if can_s_extend:
                    s_seen: set[int] = set()
                    for index in range(position + 1, len(events)):
                        s_seen |= events[index]
                    for item in s_seen:
                        s_counts[item] += 1
                i_seen: set[int] = set()
                for index in range(position, len(events)):
                    event = events[index]
                    if last_event <= event:
                        for item in event:
                            if item > last_max:
                                i_seen.add(item)
                for item in i_seen:
                    i_counts[item] += 1
    return counts


def _project_children(
    source: _ProjectedSource,
    frontier: list[_Node],
    survivors: list[list[_Extension]],
) -> list[_Node]:
    """Projection sweep: the surviving extensions' pseudo-projections,
    derived from their parents' matched positions."""
    children = [
        [
            _Node(
                prefix=extension.prefix,
                projections=[[] for _ in range(source.num_partitions)],
            )
            for extension in extensions
        ]
        for extensions in survivors
    ]
    for part in range(source.num_partitions):
        customers = source.load(part)
        for node, extensions, nodes in zip(frontier, survivors, children):
            if not extensions:
                continue
            for cust_index, position in node.projections[part]:
                events = customers[cust_index]
                for extension, child in zip(extensions, nodes):
                    if extension.i_event is not None:
                        matched = first_event_containing(
                            events, extension.i_event, position
                        )
                    else:
                        matched = first_event_with_item(
                            events, extension.item, position + 1
                        )
                    if matched is not None:
                        child.projections[part].append((cust_index, matched))
    return [node for nodes in children for node in nodes]


def _grow_frontier(
    source: _ProjectedSource,
    seed_items: PySequence[int],
    threshold: int,
    max_pattern_length: int | None,
    stats: AlgorithmStats | None = None,
) -> dict[EventsTuple, int]:
    """Level-synchronous pattern growth from ``seed_items``.

    Every round streams the source twice: once to count every node's s-
    and i-extensions globally, once to build the frequent children's
    projections. Returns the complete frequent set rooted at the seeds.
    """
    results: dict[EventsTuple, int] = {}
    frontier = _seed_frontier(source, seed_items)
    for node in frontier:
        results[node.prefix] = node.count
    round_number = 1
    while frontier:
        started = time.perf_counter()
        # All frontier prefixes of one round share an event count only at
        # round 1; afterwards i-extensions keep some prefixes short, so
        # the cap is evaluated per node.
        can_extend = [
            max_pattern_length is None or len(node.prefix) < max_pattern_length
            for node in frontier
        ]
        counts = _count_extensions(
            source,
            frontier,
            can_s_extend=any(can_extend),
        )
        num_candidates = 0
        survivors: list[list[_Extension]] = []
        for node, (s_counts, i_counts), s_allowed in zip(
            frontier, counts, can_extend
        ):
            last_event = node.prefix[-1]
            extensions: list[_Extension] = []
            num_candidates += len(i_counts)
            for item in sorted(i for i, c in i_counts.items() if c >= threshold):
                extended = last_event | {item}
                extensions.append(
                    _Extension(
                        prefix=node.prefix[:-1] + (extended,),
                        i_event=extended,
                        item=item,
                    )
                )
            if s_allowed:
                num_candidates += len(s_counts)
                for item in sorted(
                    i for i, c in s_counts.items() if c >= threshold
                ):
                    extensions.append(
                        _Extension(
                            prefix=node.prefix + (frozenset((item,)),),
                            i_event=None,
                            item=item,
                        )
                    )
            survivors.append(extensions)
        frontier = _project_children(source, frontier, survivors)
        for node in frontier:
            results[node.prefix] = node.count
        if stats is not None:
            stats.record_pass(
                length=round_number,
                phase="growth",
                num_candidates=num_candidates,
                num_large=len(frontier),
                elapsed_seconds=time.perf_counter() - started,
            )
        round_number += 1
    return results


# --------------------------------------------------------------------- #
# Public entry points
# --------------------------------------------------------------------- #


def grow_seed_range(
    data: PartitionedRecordStream | list[EventsTuple],
    seed_items: PySequence[int],
    frequent_items: frozenset[int],
    threshold: int,
    max_pattern_length: int | None,
) -> dict[EventsTuple, int]:
    """Grow the complete frequent set rooted at ``seed_items``.

    The unit of work one parallel shard executes (and the serial engine
    calls once with every seed): ``data`` is either a partitioned record
    stream the worker re-reads itself, or an already-projected in-memory
    customer list. Distinct seed items root disjoint pattern sets —
    every pattern is grown exactly once, from the smallest item of its
    first event — so shard results merge by plain union.
    """
    if isinstance(data, list):
        source = _ProjectedSource(None, frequent_items, cache=data)
    else:
        source = _ProjectedSource(data, frequent_items)
    return _grow_frontier(source, seed_items, threshold, max_pattern_length)


def mine_prefixspan(
    db: SequenceDatabaseLike,
    minsup: float,
    *,
    max_pattern_length: int | None = None,
    workers: int = 1,
    chunk_size: int | None = None,
) -> PrefixSpanResult:
    """Mine the complete frequent-sequence set of ``db`` with PrefixSpan.

    ``db`` is any :class:`~repro.core.protocols.SequenceDatabaseLike`;
    a disk-backed partitioned database is streamed partition by
    partition and never materialized. ``max_pattern_length`` caps the
    number of *events* exactly as the Apriori miners' knob does: at the
    cap a prefix stops opening new events (s-extensions) but may still
    grow its last event (i-extensions), which add items, not events.
    ``workers > 1`` shards the frequent seed items across a process pool
    (``chunk_size`` = seeds per shard); counts are identical for every
    worker setting.
    """
    if not 0.0 < minsup <= 1.0:
        raise ValueError(f"minsup must be in (0, 1], got {minsup}")
    if max_pattern_length is not None and max_pattern_length < 1:
        raise ValueError(
            f"max_pattern_length must be >= 1, got {max_pattern_length}"
        )
    threshold = db.threshold(minsup)
    stats = AlgorithmStats("prefixspan")

    started = time.perf_counter()
    item_counts = count_item_supports(db)
    seed_items = sorted(
        item for item, count in item_counts.items() if count >= threshold
    )
    frequent_items = frozenset(seed_items)
    seed_seconds = time.perf_counter() - started
    stats.record_pass(
        length=0,
        phase="items",
        num_candidates=len(item_counts),
        num_large=len(seed_items),
        elapsed_seconds=seed_seconds,
    )

    frequent: dict[EventsTuple, int]
    if not seed_items:
        frequent = {}
    elif workers != 1:
        from repro.parallel.executor import parallel_prefixspan

        frequent = parallel_prefixspan(
            db,
            seed_items,
            frequent_items,
            threshold,
            max_pattern_length,
            workers=workers,
            chunk_size=chunk_size,
        )
    else:
        source = _ProjectedSource(db, frequent_items)
        frequent = _grow_frontier(
            source, seed_items, threshold, max_pattern_length, stats
        )

    return PrefixSpanResult(
        frequent=frequent,
        item_counts=dict(item_counts),
        threshold=threshold,
        num_customers=db.num_customers,
        seed_seconds=seed_seconds,
        stats=stats,
    )
