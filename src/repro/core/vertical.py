"""Vertical id-list counting backend: SPADE-style parent joins.

Every other counting strategy is *data-driven*: each pass rescans every
customer against the whole candidate set, so a late pass with a small
candidate set still pays for a full database scan. The vertical-format
family (SPADE / Eclat) inverts the loop — support of a k-candidate is
computed by **joining the id-lists of its two (k−1)-parents**, touching
only the customers that supported both parents. This module brings that
idea to the transformed database of the 1995 paper:

* :class:`VerticalDatabase` is a **one-time inversion** of the
  bitset-compiled database: for every litemset id a vertical list
  ``{customer index → occurrence bitmask}``. The masks are the *same*
  ``int`` objects as the compiled customers' — the inversion transposes
  references, it does not copy bit material — and the compiled form is
  kept alongside for the per-customer sweeps that remain row-oriented
  (the length-2 occurring-pairs pass).
* :class:`SupportLists` memoizes, for every sequence a pass has counted,
  its *support list* ``{customer → earliest-end event index}``: the
  supporting customers together with where the greedy (earliest) match
  of the sequence ends. The cache rolls forward pass to pass — the
  lists produced when counting ``C_k`` are exactly the parent lists the
  ``C_{k+1}`` joins consume — so work shrinks as k grows.
* Counting one candidate is :func:`join_parent_lists`: intersect the two
  parents' customer sets (iterating the smaller one) and, per surviving
  customer, test "the candidate's last id occurs strictly after the
  prefix parent's earliest end" with one mask shift/AND. No database
  scan happens at all.

Memoized lists are pure functions of the database, so they can never
become *incorrect* — eviction (:meth:`SupportLists.evict_except`) is
purely a memory knob, and any miss is repaired by rebuilding the list
with a chain of single-id temporal joins from the base vertical lists
(:meth:`SupportLists.get`). That rebuild is the fallback for every pass
whose parents were never counted: AprioriSome's skipped lengths, the
shared backward phase's longest-first walk, and the heads DynamicSome's
on-the-fly pass concatenated without materializing.

``INVERT_CALLS`` counts :meth:`VerticalDatabase.invert` invocations so
tests can assert the once-per-mining-run inversion contract, mirroring
``bitset.COMPILE_CALLS``.
"""

from __future__ import annotations

from typing import Collection, Mapping, Sequence as PySequence

from repro.core.bitset import CompiledDatabase, ensure_compiled
from repro.core.candidates import join_parents
from repro.core.sequence import IdEventSeq, IdSequence

#: Number of :meth:`VerticalDatabase.invert` calls since import — a test
#: hook for the once-per-mining-run inversion contract. Never reset by
#: library code; tests snapshot it before a run and diff after.
INVERT_CALLS = 0

#: A support list: supporting customer index → event index where the
#: greedy (earliest) match of the sequence ends. Tail lists use the same
#: shape with the *latest start* index instead.
SupportList = dict[int, int]

#: A vertical id-list: customer index → occurrence bitmask of one id.
MaskList = dict[int, int]

#: Shared empty mask list for ids that occur nowhere. Never mutated.
_EMPTY_MASKS: MaskList = {}

#: Pickled form of :class:`VerticalDatabase` (``__slots__`` state plus the
#: memoized support/tail lists so workers inherit warm caches).
_VerticalState = tuple[
    dict[int, MaskList],
    tuple[int, ...],
    CompiledDatabase,
    dict[IdSequence, SupportList],
    int,
    dict[IdSequence, SupportList],
]


def temporal_join(prefix_list: SupportList, id_masks: MaskList) -> SupportList:
    """Extend a prefix's earliest-end list by one id.

    A customer survives iff it is in both lists and the id occurs in an
    event strictly after the prefix's earliest end; its new earliest end
    is that occurrence. Two int ops per customer: shift off everything
    up to the prefix end, isolate the lowest surviving bit.
    """
    out: SupportList = {}
    masks = id_masks.get
    for customer, end in prefix_list.items():
        mask = masks(customer)
        if mask is None:
            continue
        remaining = mask >> (end + 1)
        if remaining:
            out[customer] = end + (remaining & -remaining).bit_length()
    return out


def join_parent_lists(
    prefix_list: SupportList, suffix_list: SupportList, id_masks: MaskList
) -> SupportList:
    """Join a candidate's two join-parents' support lists.

    Exact because containment is decided greedily: a customer contains
    the candidate iff it contains the prefix parent (``candidate[:-1]``)
    and the last id occurs strictly after the prefix's earliest end — and
    containing the candidate implies containing the suffix parent
    (``candidate[1:]``), so restricting the probe to the suffix's
    customer set loses nothing. Iterating whichever parent supports
    fewer customers skips, for free, the customers that support one
    parent but cannot support the candidate.
    """
    if len(suffix_list) < len(prefix_list):
        out: SupportList = {}
        prefix_end = prefix_list.get
        for customer in suffix_list:
            end = prefix_end(customer)
            if end is None:
                continue
            # The suffix parent ends with the candidate's last id, so a
            # suffix-supporting customer always has a mask for it.
            remaining = id_masks[customer] >> (end + 1)
            if remaining:
                out[customer] = end + (remaining & -remaining).bit_length()
        return out
    return temporal_join(prefix_list, id_masks)


class SupportLists:
    """Cross-pass memo of earliest-end support lists.

    Owned by a :class:`VerticalDatabase`; counting a pass stores the list
    of every candidate it counted, and the next pass's joins look their
    parents up here. ``joins`` counts temporal joins performed (the test
    hook for "pass k does exactly |C_k| joins when the parent lists
    rolled forward").
    """

    __slots__ = ("_vdb", "_lists", "joins")

    def __init__(self, vdb: "VerticalDatabase") -> None:
        self._vdb = vdb
        self._lists: dict[IdSequence, SupportList] = {}
        self.joins = 0

    def __len__(self) -> int:
        return len(self._lists)

    def __contains__(self, seq: IdSequence) -> bool:
        return seq in self._lists

    def peek(self, seq: IdSequence) -> SupportList | None:
        """The memoized list, or ``None`` — never triggers a rebuild."""
        return self._lists.get(seq)

    def get(self, seq: IdSequence) -> SupportList:
        """The sequence's support list — memoized, else rebuilt by a
        chain of single-id joins from the base vertical lists.

        The rebuild is the fallback for sequences no pass has counted
        (skipped lengths, backward-phase parents, on-the-fly heads);
        intermediate prefixes are memoized on the way up, so candidates
        sharing a prefix share the rebuild work.
        """
        lst = self._lists.get(seq)
        if lst is None:
            if len(seq) == 1:
                lst = self._vdb.base_list(seq[0])
            else:
                self.joins += 1
                lst = temporal_join(
                    self.get(seq[:-1]), self._vdb.id_list(seq[-1])
                )
            self._lists[seq] = lst
        return lst

    def count_candidate(
        self, candidate: IdSequence, prefix: IdSequence, suffix: IdSequence
    ) -> SupportList:
        """Compute (and memoize) one candidate's list via its parents.

        Uses the suffix parent's list as a pre-filter only when it is
        already cached — rebuilding the suffix would cost a whole join
        chain just to shrink one probe, whereas the prefix-only join is
        already exact.
        """
        if len(candidate) == 1:
            return self.get(candidate)
        suffix_list = self._lists.get(suffix)
        self.joins += 1
        if suffix_list is None:
            lst = temporal_join(
                self.get(prefix), self._vdb.id_list(candidate[-1])
            )
        else:
            lst = join_parent_lists(
                self.get(prefix), suffix_list, self._vdb.id_list(candidate[-1])
            )
        self._lists[candidate] = lst
        return lst

    def retain_surviving(self, large: Collection[IdSequence]) -> None:
        """Drop memoized lists of the just-counted length(s) that did not
        survive the support filter — only large sequences can be parents
        of the next pass's candidates, so the losers' lists are dead
        weight. Lists of other lengths are untouched."""
        lengths = {len(seq) for seq in large}
        if not lengths:
            return
        keep = set(large)
        self._lists = {
            seq: lst
            for seq, lst in self._lists.items()
            if len(seq) not in lengths or seq in keep
        }

    def evict_except(self, lengths: Collection[int]) -> None:
        """Memory roll-forward: keep only lists of the given lengths.

        The base length-1 lists are always kept (they anchor every
        rebuild chain). Dropping a length is always safe — a later miss
        rebuilds from the vertical lists — so the backward phase's
        descent simply invalidates the longer, now-useless generations
        as it walks down.
        """
        keep = set(lengths) | {1}
        self._lists = {
            seq: lst for seq, lst in self._lists.items() if len(seq) in keep
        }

    def cached_lengths(self) -> set[int]:
        """The lengths currently memoized (a test/introspection hook)."""
        return {len(seq) for seq in self._lists}

    def snapshot(self) -> dict[IdSequence, SupportList]:
        """A shallow copy of the memo (lists are never mutated in place,
        so sharing them is safe). With :meth:`restore`, lets a benchmark
        repeat a pass from its exact entry state instead of timing a
        cache its own first repetition warmed."""
        return dict(self._lists)

    def restore(self, state: dict[IdSequence, SupportList]) -> None:
        """Reset the memo to a :meth:`snapshot` (the snapshot itself is
        not adopted, so it can be restored again)."""
        self._lists = dict(state)


class VerticalDatabase:
    """One-time inversion of a compiled database into per-id vertical
    lists, plus the cross-pass support-list caches.

    Satisfies ``len()`` (number of customers) and keeps the row-oriented
    compiled form in ``compiled`` for the passes that genuinely need a
    per-customer sweep (the length-2 occurring-pairs fast path, or a
    scanning strategy handed a vertical-prepared database). Picklable,
    so the spawn start method can ship it to workers; under fork the
    workers inherit it copy-on-write.
    """

    __slots__ = ("id_lists", "event_counts", "compiled", "cache", "_tail_lists")

    def __init__(
        self,
        id_lists: dict[int, MaskList],
        event_counts: tuple[int, ...],
        compiled: CompiledDatabase,
    ) -> None:
        self.id_lists = id_lists
        self.event_counts = event_counts
        self.compiled = compiled
        self.cache = SupportLists(self)
        self._tail_lists: dict[IdSequence, SupportList] = {}

    @classmethod
    def invert(cls, compiled: CompiledDatabase) -> "VerticalDatabase":
        """Transpose a compiled database into vertical id-lists. Counted
        in :data:`INVERT_CALLS`; callers invert once per run and reuse."""
        global INVERT_CALLS
        INVERT_CALLS += 1
        id_lists: dict[int, MaskList] = {}
        event_counts: list[int] = []
        for customer, sequence in enumerate(compiled):
            event_counts.append(sequence.num_events)
            for litemset_id, mask in sequence.masks.items():
                id_lists.setdefault(litemset_id, {})[customer] = mask
        return cls(id_lists, tuple(event_counts), compiled)

    def __len__(self) -> int:
        return len(self.event_counts)

    def __getstate__(self) -> _VerticalState:
        return (
            self.id_lists,
            self.event_counts,
            self.compiled,
            self.cache._lists,
            self.cache.joins,
            self._tail_lists,
        )

    def __setstate__(self, state: _VerticalState) -> None:
        (
            self.id_lists,
            self.event_counts,
            self.compiled,
            lists,
            joins,
            self._tail_lists,
        ) = state
        self.cache = SupportLists(self)
        self.cache._lists = lists
        self.cache.joins = joins

    def id_list(self, litemset_id: int) -> MaskList:
        """The vertical list of one id (empty for ids occurring nowhere)."""
        return self.id_lists.get(litemset_id, _EMPTY_MASKS)

    def base_list(self, litemset_id: int) -> SupportList:
        """Earliest-end list of the 1-sequence ``<(id)>``: the lowest set
        bit of every customer's occurrence mask."""
        return {
            customer: (mask & -mask).bit_length() - 1
            for customer, mask in self.id_list(litemset_id).items()
        }

    def latest_start_list(self, seq: IdSequence) -> SupportList:
        """``{customer → latest start index}`` of ``seq`` — the mirrored
        sweep DynamicSome's join test needs for its tails. Memoized
        separately from the earliest-end cache (tails keep one length for
        the whole run); built right-to-left by keeping, per step, only
        the mask bits *below* the previous match and taking the highest.
        """
        lst = self._tail_lists.get(seq)
        if lst is not None:
            return lst
        if len(seq) == 1:
            lst = {
                customer: mask.bit_length() - 1
                for customer, mask in self.id_list(seq[0]).items()
            }
        else:
            masks = self.id_list(seq[0]).get
            lst = {}
            for customer, start in self.latest_start_list(seq[1:]).items():
                mask = masks(customer)
                if mask is None:
                    continue
                below = mask & ((1 << start) - 1)
                if below:
                    lst[customer] = below.bit_length() - 1
        self._tail_lists[seq] = lst
        return lst


def ensure_vertical(
    sequences: "PySequence[IdEventSeq] | CompiledDatabase | VerticalDatabase",
) -> VerticalDatabase:
    """Pass through an already-inverted database; invert anything else
    (compiling raw transformed sequences first if necessary)."""
    if isinstance(sequences, VerticalDatabase):
        return sequences
    return VerticalDatabase.invert(ensure_compiled(sequences))


def count_candidates_vertical(
    vdb: VerticalDatabase,
    candidates: Collection[IdSequence],
    *,
    parents: Mapping[IdSequence, tuple[IdSequence, IdSequence]] | None = None,
) -> dict[IdSequence, int]:
    """Count every candidate by joining its parents' support lists.

    ``parents`` is the join parentage reported by
    ``apriori_generate(..., with_parents=True)``; when absent (backward
    phase, raw engine calls) it is derived by slicing — the join
    construction makes ``candidate[:-1]``/``candidate[1:]`` the parents
    always. Candidates are processed shortest-first so that, with mixed
    lengths, shorter lists are memoized before longer candidates need
    them. After the pass the cache retains only the counted length and
    its parent length (plus the base lists), rolling the memo forward.
    """
    counts: dict[IdSequence, int] = {candidate: 0 for candidate in candidates}
    if not counts:
        return counts
    cache = vdb.cache
    ordered = sorted(counts, key=len)
    for candidate in ordered:
        if parents is not None and candidate in parents:
            prefix, suffix = parents[candidate]
        else:
            prefix, suffix = join_parents(candidate)
        counts[candidate] = len(cache.count_candidate(candidate, prefix, suffix))
    longest = len(ordered[-1])
    cache.evict_except({longest - 1, longest})
    return counts


def count_on_the_fly_vertical(
    vdb: VerticalDatabase,
    large_k: Collection[IdSequence],
    large_step: Collection[IdSequence],
) -> dict[IdSequence, int]:
    """DynamicSome's forward pass over the vertical format.

    The support of a concatenation ``x.y`` is the number of customers
    where the earliest end of ``x`` precedes the latest start of ``y`` —
    the same join test the per-customer generator applies, but evaluated
    list-against-list (iterating the smaller of the two customer sets)
    instead of rescanning the database. Only concatenations with nonzero
    support are returned, exactly like the per-customer path, so the
    generated-candidate accounting matches.
    """
    cache = vdb.cache
    heads = [(head, cache.get(head)) for head in large_k]
    tails = [(tail, vdb.latest_start_list(tail)) for tail in large_step]
    counts: dict[IdSequence, int] = {}
    for head, ends in heads:
        if not ends:
            continue
        for tail, starts in tails:
            if not starts:
                continue
            support = 0
            if len(ends) <= len(starts):
                probe = starts.get
                for customer, end in ends.items():
                    start = probe(customer)
                    if start is not None and end < start:
                        support += 1
            else:
                probe = ends.get
                for customer, start in starts.items():
                    end = probe(customer)
                    if end is not None and end < start:
                        support += 1
            if support:
                counts[head + tail] = support
    return counts
