"""The maximal phase (phase 5) and itemset-aware containment indexing.

The answer to the mining problem is the set of *maximal* large sequences.
Containment here is the paper's itemset-subset-aware relation — e.g.
``<(a)(c)>`` is contained in ``<(ab)(cd)>`` even though, over the
litemset-id alphabet, the two share no symbol. The sequence phase works on
ids, so this module expands id sequences back to item events (via the
litemset catalog) before testing.

Note a subtlety the paper's prose glosses over: containment can hold
between sequences of *equal* length (``<(a)(c)> ⊆ <(ab)(c)>``, both
2-sequences). The maximal filter therefore tests proper containment
against all other large sequences, not only longer ones; the backward
phases of AprioriSome/DynamicSome use the same predicate, which prunes
at least as much as the paper's "contained in a longer large sequence".

Two implementations are provided: an inverted-index one (used everywhere)
and a naive quadratic reference (used by tests and the ablation bench).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.protocols import LitemsetCatalogLike
from repro.core.sequence import IdSequence, Sequence, sequence_contains

#: A sequence expanded to bare events for containment checks.
EventsTuple = tuple[frozenset[int], ...]


def events_of_sequence(sequence: Sequence) -> EventsTuple:
    return tuple(frozenset(event) for event in sequence.events)


def sequence_of_events(events: EventsTuple) -> Sequence:
    return Sequence(tuple(sorted(event)) for event in events)


class SequenceExpander:
    """Cached id-sequence → events expansion through a litemset catalog."""

    def __init__(self, catalog: LitemsetCatalogLike) -> None:
        self._catalog = catalog
        self._cache: dict[IdSequence, EventsTuple] = {}

    def expand(self, id_sequence: IdSequence) -> EventsTuple:
        events = self._cache.get(id_sequence)
        if events is None:
            events = self._catalog.expand_events(id_sequence)
            self._cache[id_sequence] = events
        return events


class ContainmentIndex:
    """Inverted index answering "is this pattern contained in any stored
    sequence?" without scanning every stored sequence.

    A pattern can only be contained in a sequence that mentions every one
    of the pattern's items, so candidate supersequences are found by
    intersecting per-item posting lists before running the exact greedy
    containment test. Entry lengths are recorded at :meth:`add` time, so
    the intersection survivors are pre-filtered by length (a container
    must have at least as many events as the pattern) before any entry is
    fetched for the exact probe.
    """

    def __init__(self) -> None:
        self._entries: list[EventsTuple] = []
        self._lengths: list[int] = []
        self._postings: dict[int, set[int]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, events: EventsTuple) -> None:
        index = len(self._entries)
        self._entries.append(events)
        self._lengths.append(len(events))
        for event in events:
            for item in event:
                self._postings.setdefault(item, set()).add(index)

    def add_all(self, sequences: Iterable[EventsTuple]) -> None:
        for events in sequences:
            self.add(events)

    def _candidate_indices(
        self, pattern: EventsTuple, min_length: int
    ) -> list[int]:
        """Indices of stored sequences that mention every pattern item and
        are at least ``min_length`` events long — the only entries worth
        the exact containment probe."""
        items = set().union(*pattern) if pattern else set()
        postings: list[set[int]] = []
        for item in items:
            posting = self._postings.get(item)
            if posting is None:
                return []
            postings.append(posting)
        if not postings:
            return []
        postings.sort(key=len)
        result = set(postings[0])
        for posting in postings[1:]:
            result &= posting
            if not result:
                break
        lengths = self._lengths
        return [index for index in result if lengths[index] >= min_length]

    def contains_proper_super_of(self, pattern: EventsTuple) -> bool:
        """True iff some stored sequence properly contains ``pattern``."""
        for index in self._candidate_indices(pattern, len(pattern)):
            entry = self._entries[index]
            if entry == pattern:
                continue
            if sequence_contains(entry, pattern):
                return True
        return False

    def contains_super_of(self, pattern: EventsTuple) -> bool:
        """True iff some stored sequence contains ``pattern`` (or equals it)."""
        for index in self._candidate_indices(pattern, len(pattern)):
            if sequence_contains(self._entries[index], pattern):
                return True
        return False


def maximal_sequences(
    supported: Mapping[EventsTuple, int]
) -> dict[EventsTuple, int]:
    """Keep only sequences not properly contained in another key.

    Input and output map expanded event tuples to support counts.
    """
    index = ContainmentIndex()
    index.add_all(supported)
    return {
        events: count
        for events, count in supported.items()
        if not index.contains_proper_super_of(events)
    }


def maximal_sequences_naive(
    supported: Mapping[EventsTuple, int]
) -> dict[EventsTuple, int]:
    """Quadratic reference implementation of :func:`maximal_sequences`."""
    keys = list(supported)
    result: dict[EventsTuple, int] = {}
    for pattern in keys:
        dominated = any(
            other != pattern
            and len(other) >= len(pattern)
            and sequence_contains(other, pattern)
            for other in keys
        )
        if not dominated:
            result[pattern] = supported[pattern]
    return result
