"""DynamicSome (Section 3.5 of the paper).

DynamicSome also counts only some lengths — multiples of a ``step`` — but
generates the candidates it counts *on the fly* per customer sequence
instead of materializing them up front. For a customer sequence d,
``otf_generate(L_k, L_step, d)`` joins every large k-sequence contained in
d with every large step-sequence contained in d *after* it; the
concatenations are exactly the (k+step)-sequences contained in d whose
prefix/suffix splits are large, so counting them per customer gives exact
supports. The position test uses the earliest possible end of the prefix
and the latest possible start of the suffix: ``x.y ⊆ d`` iff
``earliest_end(x, d) < latest_start(y, d)``.

After the forward phase, an *intermediate* phase apriori-generates
candidates for the skipped (non-multiple) lengths, and the shared backward
phase counts them. The intermediate phase is DynamicSome's weakness: when
a skipped length's predecessor was never counted, candidates are generated
from candidates, and the candidate sets snowball — the paper reports this
is why DynamicSome loses badly at low minimum supports.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Collection, Sequence as PySequence, cast

from repro.core.backward import backward_phase
from repro.core.bitset import CompiledDatabase, CompiledSequence
from repro.core.candidates import apriori_generate
from repro.core.counting import (
    CountableSequences,
    count_candidates,
    count_length2,
    filter_large,
)
from repro.core.hashtree import SequenceHashTree
from repro.core.passkey import pass_digest
from repro.core.phase import CountingOptions, SequencePhaseResult
from repro.core.protocols import (
    PartitionedCountable,
    TransformedSequences,
    TransformedView,
)
from repro.core.sequence import (
    IdSequence,
    OccurrenceIndex,
    earliest_end_index,
    latest_start_index,
)
from repro.core.stats import AlgorithmStats
from repro.core.vertical import VerticalDatabase, count_on_the_fly_vertical


def otf_generate(
    large_k: Collection[IdSequence],
    large_j: Collection[IdSequence],
    events: PySequence[frozenset[int]],
) -> set[IdSequence]:
    """All concatenations x.y (x ∈ large_k, y ∈ large_j) contained in
    ``events``. Reference implementation; the mining loop uses a hash-tree
    accelerated equivalent."""
    heads: list[tuple[IdSequence, int]] = []
    for head in large_k:
        end = earliest_end_index(head, events)
        if end is not None:
            heads.append((head, end))
    if not heads:
        return set()
    tails: list[tuple[IdSequence, int]] = []
    for tail in large_j:
        start = latest_start_index(tail, events)
        if start is not None:
            tails.append((tail, start))
    return {
        head + tail
        for head, end in heads
        for tail, start in tails
        if end < start
    }


def dynamic_some(
    tdb: TransformedView,
    threshold: int,
    *,
    step: int = 2,
    counting: CountingOptions = CountingOptions(),
    max_length: int | None = None,
    collect_counts: bool = False,
) -> SequencePhaseResult:
    """Find all large sequences with the DynamicSome algorithm.

    ``collect_counts`` retains every pass's full counts for the
    incremental subsystem (see :class:`SequencePhaseResult`).
    """
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    if step < 1:
        raise ValueError("step must be >= 1")
    stats = AlgorithmStats("dynamicsome")
    result = SequencePhaseResult(stats=stats, collect_counts=collect_counts)

    # Bitset/vertical strategies: compile (and invert) the database once;
    # the initialization, forward (on-the-fly), and backward passes all
    # reuse the prepared form.
    sequences = counting.prepare_sequences(tdb.sequences)

    l1 = tdb.catalog.one_sequence_supports()
    result.large_by_length[1] = l1
    stats.record_generated(1, len(l1))
    stats.record_pass(
        length=1,
        phase="litemset",
        num_candidates=len(l1),
        num_large=len(l1),
        elapsed_seconds=0.0,
    )

    candidates_by_length: dict[int, list[IdSequence]] = {1: sorted(l1)}
    counted: set[int] = {1}

    # --- Initialization: count every length up to `step` level-wise. ---
    for k in range(2, step + 1):
        previous = result.large_by_length.get(k - 1)
        if not previous:
            break
        if max_length is not None and k > max_length:
            break
        started = time.perf_counter()
        if k == 2:
            # Occurring-pairs fast path; C_2 is all |L_1|² ordered pairs.
            counts = count_length2(sequences, **counting.sharding_kwargs())
            result.length2_complete = True
            num_candidates = len(l1) * len(l1)
            candidates = sorted(counts)
        else:
            candidates, parents = apriori_generate(
                previous.keys(), with_parents=True
            )
            num_candidates = len(candidates)
            if not candidates:
                stats.record_generated(k, 0)
                break
            counts = count_candidates(
                sequences, candidates, parents=parents, **counting.kwargs()
            )
        stats.record_generated(k, num_candidates)
        result.record_counts(k, counts)
        candidates_by_length[k] = candidates
        large = filter_large(counts, threshold)
        counting.note_large(sequences, large)
        stats.record_pass(
            length=k,
            phase="initialization",
            num_candidates=num_candidates,
            num_large=len(large),
            elapsed_seconds=time.perf_counter() - started,
        )
        counted.add(k)
        result.large_by_length[k] = large

    # --- Forward: on-the-fly generation and counting of k+step. ---
    large_step = result.large_by_length.get(step, {})
    k = step
    while result.large_by_length.get(k) and large_step:
        target = k + step
        if max_length is not None and target > max_length:
            break
        if target > tdb.max_sequence_length and tdb.max_sequence_length > 0:
            # Nothing that long can be contained in any customer sequence,
            # so skip the pass — but record it as counted-empty, otherwise
            # the intermediate phase would not generate candidates for the
            # lengths between the last non-empty multiple and `target`.
            counted.add(target)
            candidates_by_length[target] = []
            result.large_by_length[target] = {}
            stats.record_pass(
                length=target,
                phase="forward",
                num_candidates=0,
                num_large=0,
                elapsed_seconds=0.0,
            )
            break
        started = time.perf_counter()
        counts = _count_on_the_fly(
            sequences,
            sorted(result.large_by_length[k]),
            sorted(large_step),
            counting,
        )
        # On-the-fly counts are exact for every generated (= occurring)
        # candidate; record them like any other pass. The border here is
        # sparser — never-occurring concatenations are simply absent.
        result.record_counts(target, counts)
        if target == 2:
            # step=1: the k=1 forward pass enumerates every occurring
            # ordered pair, so the length-2 border is still complete.
            result.length2_complete = True
        large = filter_large(counts, threshold)
        counting.note_large(sequences, large)
        stats.record_generated(target, len(counts))
        stats.record_pass(
            length=target,
            phase="forward",
            num_candidates=len(counts),
            num_large=len(large),
            elapsed_seconds=time.perf_counter() - started,
        )
        candidates_by_length[target] = sorted(counts)
        counted.add(target)
        result.large_by_length[target] = large
        k = target

    # --- Intermediate: candidates for the skipped lengths, ascending. ---
    highest = max(counted)
    for length in range(2, highest):
        if length in counted or length in candidates_by_length:
            continue
        if max_length is not None and length > max_length:
            break
        if (length - 1) in counted:
            previous_large = result.large_by_length.get(length - 1, {})
            candidates = apriori_generate(previous_large.keys())
        else:
            previous = candidates_by_length.get(length - 1, [])
            candidates = apriori_generate(previous, prune_universe=previous)
        stats.record_generated(length, len(candidates))
        if candidates:
            candidates_by_length[length] = candidates

    # --- Backward: count skipped lengths with containment pruning. ---
    backward_phase(
        tdb,
        threshold,
        result,
        candidates_by_length,
        counted,
        counting=counting,
        sequences=sequences,
    )
    result.large_by_length = {
        length: large for length, large in result.large_by_length.items() if large
    }
    return result


def _count_on_the_fly(
    sequences: CountableSequences,
    large_k: list[IdSequence],
    large_step: list[IdSequence],
    counting: CountingOptions,
) -> dict[IdSequence, int]:
    """One forward-phase pass: per customer, join contained heads/tails.

    Over a :class:`~repro.core.bitset.CompiledDatabase` the hash trees
    probe the compiled bitmasks directly and the join coordinates
    (earliest end of the head, latest start of the tail) are mask
    arithmetic; over raw sequences a per-customer occurrence index is
    built, as in the other engines. Over a
    :class:`~repro.core.vertical.VerticalDatabase` the customer loop
    disappears entirely: heads' earliest-end and tails' latest-start
    lists come from the vertical caches and each head/tail pair is
    joined list-against-list (see
    :func:`repro.core.vertical.count_on_the_fly_vertical`). A
    disk-backed partitioned countable (structurally
    :class:`~repro.core.protocols.PartitionedCountable`) runs this same
    pass one prepared partition at a time and sums the counts (customer
    support is additive across disjoint partitions) — the head/tail hash
    trees are built once and scan every partition.

    When a checkpoint store is attached to ``counting``, the pass is
    replayed/recorded like every other counting pass; its identity is
    the digest over both input sets (heads and tails).
    """
    if counting.checkpoint is not None:
        key = pass_digest("onthefly", list(large_k) + list(large_step))
        cached = counting.checkpoint.replay("onthefly", key)
        if cached is not None:
            return cached
        counts = _count_on_the_fly(
            sequences, large_k, large_step, replace(counting, checkpoint=None)
        )
        counting.checkpoint.record("onthefly", key, counts)
        return counts
    if isinstance(sequences, VerticalDatabase):
        return count_on_the_fly_vertical(sequences, large_k, large_step)
    if isinstance(sequences, PartitionedCountable) and sequences.strategy == "vertical":
        from repro.parallel.sharding import merge_counts

        return merge_counts(
            count_on_the_fly_vertical(
                cast(VerticalDatabase, part), large_k, large_step
            )
            for part in sequences.iter_prepared()
        )
    tree_k = SequenceHashTree(
        large_k,
        leaf_capacity=counting.leaf_capacity,
        branch_factor=counting.branch_factor,
    )
    tree_step = SequenceHashTree(
        large_step,
        leaf_capacity=counting.leaf_capacity,
        branch_factor=counting.branch_factor,
    )
    counts: dict[IdSequence, int] = {}
    if isinstance(sequences, PartitionedCountable):
        for part in sequences.iter_prepared():
            _scan_on_the_fly(
                cast("TransformedSequences | CompiledDatabase", part),
                tree_k,
                tree_step,
                counts,
            )
    else:
        _scan_on_the_fly(sequences, tree_k, tree_step, counts)
    return counts


def _scan_on_the_fly(
    sequences: TransformedSequences | CompiledDatabase,
    tree_k: SequenceHashTree,
    tree_step: SequenceHashTree,
    counts: dict[IdSequence, int],
) -> None:
    """Scan one database (or partition) for head/tail joins, adding each
    customer's generated candidates into ``counts``."""
    heads: list[tuple[IdSequence, int]]
    tails: list[tuple[IdSequence, int]]
    for events in sequences:
        if isinstance(events, CompiledSequence):
            heads = [
                (head, cast(int, events.earliest_end_index(head)))
                for head in tree_k.contained_in(events)
            ]
            if not heads:
                continue
            tails = [
                (tail, cast(int, events.latest_start_index(tail)))
                for tail in tree_step.contained_in(events)
            ]
        else:
            index = OccurrenceIndex(events)
            heads = [
                (head, cast(int, earliest_end_index(head, events)))
                for head in tree_k.contained_in(index)
            ]
            if not heads:
                continue
            tails = [
                (tail, cast(int, latest_start_index(tail, events)))
                for tail in tree_step.contained_in(index)
            ]
        if not tails:
            continue
        generated = {
            head + tail for head, end in heads for tail, start in tails if end < start
        }
        for candidate in generated:
            counts[candidate] = counts.get(candidate, 0) + 1
