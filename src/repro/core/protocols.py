"""Formal :class:`typing.Protocol` contracts for the load-bearing seams.

The package composes three algorithms × four counting strategies × two
storage paths × serial/parallel/incremental by *duck typing*: the
partitioned database drops in wherever the in-memory one is accepted,
the compiled bitmask customer drops in wherever a per-pass occurrence
index is accepted, and the out-of-core countable drops in wherever a
transformed sequence list is accepted. Until this module those contracts
were informal — documented in docstrings, enforced only by the test
matrix. Here they are stated as structural :class:`~typing.Protocol`
types, so ``mypy --strict`` verifies every existing implementation and
every future one (a PrefixSpan engine, a vectorized kernel, a serving
snapshot) against the same written-down surface.

Layering: this module is a dependency **leaf**. It imports nothing from
:mod:`repro`, which is what lets :mod:`repro.core.sequence` re-export
its aliases and lets the counting layer dispatch on
:class:`PartitionedCountable` without the ``core → db`` import that PR 5
had to lazy-import around. Static conformance of the concrete classes is
asserted in :mod:`repro._typecheck` (a type-checking-only module, so the
protocols never force runtime ``isinstance`` machinery on the hot path —
:class:`PartitionedCountable` alone is ``runtime_checkable`` because the
counting engines dispatch on it once per pass).

The invariants types cannot express — import-time layering itself,
``__all__`` consistency, determinism of the core — are enforced by the
companion AST linter, ``python -m tools.lint``.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Collection,
    Iterable,
    Iterator,
    Literal,
    Mapping,
    Protocol,
    Sequence as PySequence,
    Union,
    runtime_checkable,
)

__all__ = [
    "COUNTING_STRATEGIES",
    "CandidateParents",
    "Countable",
    "CountingEngine",
    "CountingStrategy",
    "CustomerRecord",
    "IdEventSeq",
    "IdSequence",
    "Item",
    "Itemset",
    "LitemsetCatalogLike",
    "OccurrenceProbe",
    "PartitionedCountable",
    "PartitionedRecordStream",
    "PassCheckpoint",
    "SequenceDatabaseLike",
    "SupportCounts",
    "TransformedSequence",
    "TransformedSequences",
    "TransformedView",
]

# --------------------------------------------------------------------- #
# Value aliases (canonical home; repro.core.sequence re-exports them)
# --------------------------------------------------------------------- #

Item = int
#: A canonical itemset: strictly increasing tuple of item ids.
Itemset = tuple[Item, ...]
#: A transformed customer sequence: one ``frozenset`` of litemset ids per
#: transaction, in transaction-time order.
IdEventSeq = PySequence[frozenset[int]]
#: A candidate/large sequence over the litemset-id alphabet.
IdSequence = tuple[int, ...]
#: One transformed customer sequence in its stored (tuple) form.
TransformedSequence = tuple[frozenset[int], ...]
#: A whole transformed database as plain Python data.
TransformedSequences = PySequence[TransformedSequence]

#: The name of a support-counting backend (see :mod:`repro.core.counting`).
CountingStrategy = Literal["hashtree", "naive", "bitset", "vertical"]

COUNTING_STRATEGIES: tuple[CountingStrategy, ...] = (
    "hashtree",
    "naive",
    "bitset",
    "vertical",
)

#: One counting pass's result: a support count for every candidate.
SupportCounts = dict[IdSequence, int]

#: Join parentage for the candidate-driven vertical engine, as reported
#: by ``apriori_generate(..., with_parents=True)``.
CandidateParents = Mapping[IdSequence, tuple[IdSequence, IdSequence]]


# --------------------------------------------------------------------- #
# The per-customer probe surface
# --------------------------------------------------------------------- #


class OccurrenceProbe(Protocol):
    """The per-customer probe interface the sequence hash tree traverses.

    Implemented by :class:`repro.core.sequence.OccurrenceIndex` (position
    lists, built per pass) and by
    :class:`repro.core.bitset.CompiledSequence` (occurrence bitmasks,
    compiled once per mining run).
    """

    def ids(self) -> Iterable[int]:
        """All distinct litemset ids occurring in the customer sequence."""
        ...

    def first_after(self, litemset_id: int, after: int) -> int | None:
        """Earliest event index strictly greater than ``after`` containing
        ``litemset_id``, or ``None``."""
        ...


# --------------------------------------------------------------------- #
# The database surface (sort-phase output)
# --------------------------------------------------------------------- #


class CustomerRecord(Protocol):
    """One customer's ordered transaction history.

    Satisfied by :class:`repro.db.database.CustomerSequence`; every phase
    that scans a database consumes exactly this much of it.
    """

    @property
    def customer_id(self) -> int: ...

    @property
    def events(self) -> tuple[Itemset, ...]: ...


@runtime_checkable
class PartitionedRecordStream(Protocol):
    """A raw customer database readable one partition at a time.

    Satisfied by :class:`repro.db.partitioned.PartitionedDatabase`. The
    PrefixSpan engine (:mod:`repro.core.prefixspan`) dispatches on this
    protocol — checked once per mining run — and then streams
    ``iter_partition`` partition by partition on every growth sweep,
    which is what keeps its peak memory at one *projected* partition
    plus the frontier's pseudo-projection index pairs. ``iter_partition``
    must yield an identical customer order on every call for the same
    index: the engine's ``(customer index, position)`` pairs address
    that order across sweeps.
    """

    @property
    def num_partitions(self) -> int: ...

    def iter_partition(self, index: int) -> Iterator["CustomerRecord"]:
        """Partition ``index``'s customers, in stable stored order."""
        ...


class SequenceDatabaseLike(Protocol):
    """What the litemset phase and the mining pipeline need of a database.

    Satisfied by the in-memory :class:`repro.db.database.SequenceDatabase`
    and the disk-backed :class:`repro.db.partitioned.PartitionedDatabase`;
    any future storage path (sharded, remote, ...) that provides this
    surface mines unchanged. Iteration yields customers in ascending
    ``customer_id`` order; ``num_customers`` is the support denominator.
    Implementations may additionally offer ``iter_unordered()`` — a
    cheaper stream for order-independent scans — which callers discover
    with ``getattr``.
    """

    @property
    def num_customers(self) -> int: ...

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator[CustomerRecord]: ...

    def threshold(self, minsup: float) -> int:
        """Integer customer-count threshold for fractional ``minsup``."""
        ...


# --------------------------------------------------------------------- #
# The transformed-database surface (what the sequence phase consumes)
# --------------------------------------------------------------------- #


class LitemsetCatalogLike(Protocol):
    """The catalog surface the sequence phase needs (id alphabet only).

    Satisfied by :class:`repro.itemsets.litemsets.LitemsetCatalog`. The
    sequence phase never maps ids back to raw items itself — it needs the
    free ``L_1`` supports and the id → event expansion used by the
    containment-aware backward/maximal phases, and the transformation
    phase needs the per-transaction contained-litemset lookup.
    """

    def one_sequence_supports(self) -> dict[IdSequence, int]:
        """Supports of all large 1-sequences over the id alphabet."""
        ...

    def contained_ids(self, transaction: Iterable[int]) -> frozenset[int]:
        """Ids of every litemset contained in ``transaction``."""
        ...

    def expand_events(self, id_sequence: IdSequence) -> TransformedSequence:
        """Inflate an id sequence to bare frozenset events."""
        ...


@runtime_checkable
class PartitionedCountable(Protocol):
    """The out-of-core countable: a transformed database in K partitions.

    Satisfied by :class:`repro.db.partitioned.PartitionedSequences`. The
    counting engines (:mod:`repro.core.counting`) dispatch on this
    protocol — the single ``runtime_checkable`` one, checked once per
    pass — and then stream ``load_prepared`` partition by partition,
    which is what keeps a pass's peak memory at one partition. The
    ``prepare``/``load_prepared`` pair is the out-of-core analogue of the
    once-per-run compile contract: ``prepare(strategy)`` may build disk
    caches, and every later ``load_prepared`` must be a cheap load, not a
    recompute.
    """

    strategy: CountingStrategy

    @property
    def num_partitions(self) -> int: ...

    @property
    def length2_form(self) -> CountingStrategy:
        """Prepared form the length-2 occurring-pairs sweep should load."""
        ...

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator[TransformedSequence]: ...

    def prepare(self, strategy: CountingStrategy) -> "PartitionedCountable":
        """Record the run's strategy; build any per-partition caches."""
        ...

    def load_prepared(
        self, index: int, strategy: CountingStrategy | None = None
    ) -> object:
        """One partition in the active strategy's countable form."""
        ...

    def iter_prepared(
        self, strategy: CountingStrategy | None = None
    ) -> Iterator[object]:
        """Every partition in prepared form, one at a time."""
        ...


#: Everything a counting engine accepts as its database argument: the raw
#: transformed sequences, a once-per-run prepared form (the bitset
#: compile or its vertical inversion — structurally, anything iterable
#: over per-customer probes), or the disk-backed partitioned countable.
#: :data:`repro.core.counting.CountableSequences` is the concrete-class
#: twin of this alias, used where ``isinstance`` dispatch needs real
#: classes.
Countable = Union[TransformedSequences, Iterable[OccurrenceProbe], PartitionedCountable]


class TransformedView(Protocol):
    """The transformed database DT as the sequence phase sees it.

    Satisfied by :class:`repro.db.transform.TransformedDatabase`
    (in-memory) and
    :class:`repro.db.partitioned.PartitionedTransformedDatabase`
    (disk-backed). ``num_customers`` is the *original* customer count —
    the support denominator — not the count of surviving sequences.
    """

    @property
    def sequences(self) -> Union[TransformedSequences, PartitionedCountable]: ...

    @property
    def num_customers(self) -> int: ...

    @property
    def max_sequence_length(self) -> int:
        """Longest transformed customer sequence (bounds pattern length)."""
        ...

    @property
    def catalog(self) -> LitemsetCatalogLike: ...


# --------------------------------------------------------------------- #
# The checkpoint surface (durable pass-by-pass resume)
# --------------------------------------------------------------------- #


class PassCheckpoint(Protocol):
    """Durable memo of completed counting passes, replayed strictly in
    order.

    Satisfied by :class:`repro.io.checkpoint.CheckpointStore`. The
    counting engines consult it at the top of every pass: ``replay``
    returns the recorded counts if this exact pass (same kind, same
    input digest — see :mod:`repro.core.passkey`) is next in the stored
    sequence, ``None`` once the stored passes are exhausted (the run has
    caught up and must count for real), and raises if the resumed run
    diverged from the recording. ``record`` durably appends one freshly
    counted pass. Counts round-trip exactly, **insertion order
    included**, which is what makes a resumed run's downstream output
    byte-identical to an uninterrupted one.

    Keys are typed ``Any`` because pass kinds disagree: the raw-item
    pass counts ``int`` keys, every other pass counts id tuples.
    """

    def replay(self, kind: str, key: str) -> dict[Any, int] | None:
        """Counts of the next stored pass, or ``None`` past the end."""
        ...

    def record(self, kind: str, key: str, counts: Mapping[Any, int]) -> None:
        """Durably append one completed pass."""
        ...


# --------------------------------------------------------------------- #
# The counting-engine surface
# --------------------------------------------------------------------- #


class CountingEngine(Protocol):
    """The signature of one support-counting pass.

    :func:`repro.core.counting.count_candidates` is the canonical
    implementation; the sharded-parallel executor conforms as well
    (keyword-compatible, summing per-shard counts). The contract every
    implementation must honor: the result holds a count for **every**
    candidate (zero included), a customer contributes at most 1 per
    candidate, and counts are identical for every strategy/worker
    setting.
    """

    def __call__(
        self,
        sequences: Countable,
        candidates: Collection[IdSequence],
        *,
        strategy: CountingStrategy = ...,
        leaf_capacity: int = ...,
        branch_factor: int = ...,
        workers: int = ...,
        chunk_size: int | None = ...,
        parents: CandidateParents | None = ...,
        checkpoint: PassCheckpoint | None = ...,
    ) -> SupportCounts: ...


if TYPE_CHECKING:
    # Static conformance of the concrete implementations is asserted in
    # repro._typecheck (which may import every layer; this module may
    # not). The name is referenced here so readers find it.
    pass
