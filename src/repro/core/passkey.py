"""Canonical identities for counting passes — the checkpoint vocabulary.

Checkpoint/resume (``seqmine mine --checkpoint-dir`` + ``seqmine
resume``) works by treating a mining run as a deterministic sequence of
counting passes. Each pass is identified by a *kind* (which engine ran)
and a *digest* of its input — for a candidate pass, the candidate set
itself. On resume the store replays passes strictly in order, and the
digest is what detects divergence: if the resumed run generates a
different candidate set at the same position, the stored pass is stale
and replay must fail loudly rather than return wrong counts.

This module is the shared vocabulary between the producers (the counting
engines in :mod:`repro.core`) and the store
(:class:`repro.io.checkpoint.CheckpointStore`): the pass kinds, the
stable text encoding of count keys (ints for raw items, id tuples for
everything else), and the order-insensitive input digest.

Layering: core must not import io — hence the codec lives here, and the
disk format lives with the store.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable

__all__ = [
    "INT_KEY_KINDS",
    "PASS_KINDS",
    "decode_key",
    "encode_key",
    "pass_digest",
]

#: Every pass kind a mining run can emit, in the vocabulary's canonical
#: order: raw-item support scan (litemset pass 1), per-level candidate
#: itemsets, the occurring-pairs length-2 sweep, a candidate-sequence
#: pass, and DynamicSome's on-the-fly backward pass.
PASS_KINDS = ("items", "itemsets", "length2", "candidates", "onthefly")

#: Kinds whose count keys are bare ints; all others key by id tuple.
INT_KEY_KINDS = frozenset({"items"})


def encode_key(key: Any) -> str:
    """Stable text form of one count key (an int or a tuple of ints)."""
    if isinstance(key, int):
        return str(key)
    return " ".join(str(part) for part in key)


def decode_key(kind: str, text: str) -> Any:
    """Inverse of :func:`encode_key`, dispatched on the pass kind."""
    if kind in INT_KEY_KINDS:
        return int(text)
    return tuple(int(token) for token in text.split())


def pass_digest(kind: str, keys: Iterable[Any]) -> str:
    """Order-insensitive SHA-256 identity of one pass's input key set.

    Sorted before hashing, so the digest is a function of the *set* of
    inputs — candidate generation order may legitimately differ between
    the run that recorded a pass and the run replaying it, but the set
    may not.
    """
    hasher = hashlib.sha256()
    hasher.update(kind.encode("utf-8"))
    for encoded in sorted(encode_key(key) for key in keys):
        hasher.update(b"\x00")
        hasher.update(encoded.encode("utf-8"))
    return hasher.hexdigest()
