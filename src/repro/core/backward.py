"""The backward phase shared by AprioriSome and DynamicSome.

Both "Some" algorithms leave some candidate lengths uncounted after their
forward phases. The backward phase walks the lengths from longest to
shortest and, for every skipped length k:

1. deletes candidates contained in an already-known large sequence of a
   greater length — such a candidate is necessarily large (support is
   monotone under containment) but cannot be maximal, so counting it would
   be wasted work;
2. counts the surviving candidates in one database pass and records the
   large ones.

Counted lengths contribute their large sequences to the containment index
as the walk passes them, so every pruning decision at length k sees all
large sequences of lengths > k. Containment here is the itemset-aware
relation, which requires expanding id sequences through the litemset
catalog (see :mod:`repro.core.maximal`).

The paper folds non-maximal deletion of *counted* lengths into this phase
as well; this implementation leaves that to the shared final maximal
filter so that all three algorithms provably return identical answers.
"""

from __future__ import annotations

import time
from typing import Collection

from repro.core.counting import CountableSequences, count_candidates, filter_large
from repro.core.maximal import ContainmentIndex, SequenceExpander
from repro.core.phase import CountingOptions, SequencePhaseResult
from repro.core.protocols import TransformedView
from repro.core.sequence import IdSequence


def backward_phase(
    tdb: TransformedView,
    threshold: int,
    result: SequencePhaseResult,
    candidates_by_length: dict[int, Collection[IdSequence]],
    counted_lengths: set[int],
    *,
    counting: CountingOptions = CountingOptions(),
    sequences: CountableSequences | None = None,
) -> None:
    """Count all skipped candidate lengths, mutating ``result`` in place.

    ``sequences`` is the per-run database form the forward phase already
    prepared (the compiled bitmask database under the bitset strategy,
    the inverted id-list database under the vertical strategy); when
    omitted it is derived from ``counting`` — compiling/inverting at most
    once for all backward passes combined. A skipped length's candidates
    have, by definition, uncounted parents, so under the vertical
    strategy each pass here falls back to rebuilding its parent support
    lists from the base vertical lists (memoized within the pass; the
    longest-first walk then evicts each generation as it descends).
    """
    if not candidates_by_length:
        return
    if sequences is None:
        sequences = counting.prepare_sequences(tdb.sequences)
    expander = SequenceExpander(tdb.catalog)
    index = ContainmentIndex()
    stats = result.stats
    for length in range(max(candidates_by_length), 1, -1):
        if length in counted_lengths:
            for sequence in result.large_by_length.get(length, ()):
                index.add(expander.expand(sequence))
            continue
        candidates = candidates_by_length.get(length, ())
        if not candidates:
            continue
        remaining = [
            candidate
            for candidate in candidates
            if not index.contains_super_of(expander.expand(candidate))
        ]
        stats.skipped_by_containment += len(candidates) - len(remaining)
        started = time.perf_counter()
        counts = count_candidates(sequences, remaining, **counting.kwargs())
        result.record_counts(length, counts)
        large = filter_large(counts, threshold)
        counting.note_large(sequences, large)
        stats.record_pass(
            length=length,
            phase="backward",
            num_candidates=len(remaining),
            num_large=len(large),
            elapsed_seconds=time.perf_counter() - started,
        )
        if large:
            result.large_by_length[length] = large
            for sequence in large:
                index.add(expander.expand(sequence))
