"""AprioriSome (Section 3.4 of the paper).

AprioriSome exploits the fact that only *maximal* sequences are reported:
counting a length whose large sequences will mostly turn out to be
contained in longer ones is wasted work. Its forward phase therefore
counts only *some* lengths, chosen by the ``next(k)`` heuristic — skip
further ahead when the previous counted pass had a high hit ratio
``|L_k| / |C_k|`` (many large candidates ⇒ probably long maximal
sequences ⇒ intermediate lengths are mostly non-maximal). Candidates for
an uncounted length are generated from the previous *candidate* set, a
superset of the unknown large set, so completeness is preserved.

The backward phase (shared with DynamicSome, see
:mod:`repro.core.backward`) then counts the skipped lengths longest-first,
after deleting candidates contained in already-found longer large
sequences.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.backward import backward_phase
from repro.core.candidates import apriori_generate
from repro.core.counting import count_candidates, count_length2, filter_large
from repro.core.phase import CountingOptions, SequencePhaseResult
from repro.core.protocols import TransformedView
from repro.core.sequence import IdSequence
from repro.core.stats import AlgorithmStats


@dataclass(frozen=True, slots=True)
class NextLengthPolicy:
    """The paper's ``next(k)`` heuristic as a configurable object.

    ``breakpoints`` maps hit-ratio upper bounds to skip distances: with the
    defaults, hit ratio < 0.666 counts the very next length, < 0.75 skips
    one, < 0.80 skips two, < 0.85 skips three, and anything denser skips
    ``max_skip − 1`` lengths. The length-2 pass is always counted: the
    hit ratio at length 1 is 1.0 by construction (every litemset is a
    large 1-sequence), which would otherwise trigger a maximal skip before
    any evidence has been seen.
    """

    breakpoints: tuple[tuple[float, int], ...] = (
        (0.666, 1),
        (0.75, 2),
        (0.80, 3),
        (0.85, 4),
    )
    max_skip: int = 5

    def __post_init__(self) -> None:
        previous = 0.0
        for bound, step in self.breakpoints:
            if bound <= previous:
                raise ValueError("breakpoints must be strictly increasing")
            if step < 1:
                raise ValueError("skip distances must be >= 1")
            previous = bound
        if self.max_skip < 1:
            raise ValueError("max_skip must be >= 1")

    def next_length(self, last_counted: int, hit_ratio: float) -> int:
        """The next length to count after counting ``last_counted``."""
        if last_counted == 1:
            return 2
        for bound, step in self.breakpoints:
            if hit_ratio < bound:
                return last_counted + step
        return last_counted + self.max_skip


def apriori_some(
    tdb: TransformedView,
    threshold: int,
    *,
    counting: CountingOptions = CountingOptions(),
    next_policy: NextLengthPolicy = NextLengthPolicy(),
    max_length: int | None = None,
    collect_counts: bool = False,
) -> SequencePhaseResult:
    """Find all large sequences with the AprioriSome algorithm.

    ``collect_counts`` retains every pass's full counts for the
    incremental subsystem (see :class:`SequencePhaseResult`).
    """
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    stats = AlgorithmStats("apriorisome")
    result = SequencePhaseResult(stats=stats, collect_counts=collect_counts)

    # Bitset/vertical strategies: compile (and invert) the database once
    # for the whole run — forward passes and the backward phase all reuse
    # the prepared form. Under the vertical strategy the backward phase's
    # skipped lengths find no memoized parent lists and rebuild them from
    # the base vertical lists (see repro.core.vertical).
    sequences = counting.prepare_sequences(tdb.sequences)

    l1 = tdb.catalog.one_sequence_supports()
    result.large_by_length[1] = l1
    stats.record_generated(1, len(l1))
    stats.record_pass(
        length=1,
        phase="litemset",
        num_candidates=len(l1),
        num_large=len(l1),
        elapsed_seconds=0.0,
    )

    candidates_by_length: dict[int, list[IdSequence]] = {1: sorted(l1)}
    counted: set[int] = {1}
    last_counted = 1
    next_to_count = next_policy.next_length(1, 1.0)

    k = 2
    while candidates_by_length.get(k - 1) and result.large_by_length.get(last_counted):
        if max_length is not None and k > max_length:
            break
        if k == 2:
            # The policy always counts length 2, and C_2 is all |L_1|²
            # ordered pairs — use the occurring-pairs fast path instead of
            # materializing them (see count_length2).
            started = time.perf_counter()
            counts = count_length2(sequences, **counting.sharding_kwargs())
            result.length2_complete = True
            num_candidates = len(l1) * len(l1)
            candidates = sorted(counts)
        else:
            if (k - 1) in counted:
                candidates, parents = apriori_generate(
                    result.large_by_length[k - 1].keys(), with_parents=True
                )
            else:
                previous = candidates_by_length[k - 1]
                candidates, parents = apriori_generate(
                    previous, prune_universe=previous, with_parents=True
                )
            num_candidates = len(candidates)
        stats.record_generated(k, num_candidates)
        if not candidates:
            break
        candidates_by_length[k] = candidates
        if k == next_to_count:
            if k != 2:
                started = time.perf_counter()
                counts = count_candidates(
                    sequences, candidates, parents=parents, **counting.kwargs()
                )
            result.record_counts(k, counts)
            large = filter_large(counts, threshold)
            counting.note_large(sequences, large)
            stats.record_pass(
                length=k,
                phase="forward",
                num_candidates=num_candidates,
                num_large=len(large),
                elapsed_seconds=time.perf_counter() - started,
            )
            result.large_by_length[k] = large
            counted.add(k)
            last_counted = k
            next_to_count = next_policy.next_length(
                k, len(large) / num_candidates if num_candidates else 0.0
            )
            if not large:
                break
        k += 1

    # Lengths that have candidates but were skipped in the forward phase
    # are counted backward, longest first, with containment pruning.
    backward_phase(
        tdb,
        threshold,
        result,
        candidates_by_length,
        counted,
        counting=counting,
        sequences=sequences,
    )
    # Drop empty length entries (a counted-forward empty L_k terminator).
    result.large_by_length = {
        length: large for length, large in result.large_by_length.items() if large
    }
    return result
