"""Bitset-compiled database: the ``"bitset"`` counting backend.

The hash-tree and naive engines re-derive per-customer structure on
*every* counting pass: ``count_candidates`` builds a fresh
:class:`~repro.core.sequence.OccurrenceIndex` (a dict of position lists
over ``frozenset`` events) for each customer, each pass, and every
containment step is a Python-level set-membership loop. Vertical
bit-vector representations — SPADE's id-lists, SPAM's bitmaps — fix
exactly this cost in sequential mining, and this module brings the same
idea to the transformed database of the 1995 paper:

* Each transformed customer sequence is **compiled once per mining run**
  into a :class:`CompiledSequence`: for every litemset id an occurrence
  bitmask stored as an arbitrary-precision Python ``int``, with bit *e*
  set iff the id occurs in event *e*. Python ints have no word-size
  limit, so a 500-event history is one 500-bit mask, and all mask
  arithmetic runs in C.
* All the matching primitives of the sequence phase become integer
  shift/AND/``bit_length`` expressions: ``first_after`` is a right shift
  plus lowest-set-bit, greedy containment is a chain of those,
  ``earliest_end_index`` / ``latest_start_index`` (DynamicSome's join
  test) are the forward and mirrored sweeps, and the length-2
  occurring-pairs sweep reduces to comparing each id's lowest set bit
  against every id's highest set bit.

:class:`CompiledSequence` implements the same ``ids()`` /
``first_after()`` probe protocol as ``OccurrenceIndex``, so the sequence
hash tree descends a compiled customer without modification — the
``"bitset"`` strategy keeps the tree's candidate fan-out and swaps the
per-customer index for the precompiled masks.

:class:`CompiledDatabase` is an immutable, sliceable, picklable sequence
of compiled customers. Slicing yields a compiled shard (no recompilation),
which is how the parallel executor ships work: under ``fork`` the workers
inherit the parent's compiled database copy-on-write; under ``spawn`` the
compiled shards ride through the pool initializer exactly like raw
sequences. ``COMPILE_CALLS`` counts :meth:`CompiledDatabase.compile`
invocations so tests can assert the once-per-run contract.
"""

from __future__ import annotations

from typing import Iterator, KeysView, Sequence as PySequence, overload

from repro.core.sequence import IdEventSeq, IdSequence

#: Number of :meth:`CompiledDatabase.compile` calls since import — a test
#: hook for the once-per-mining-run compilation contract. Never reset by
#: library code; tests snapshot it before a run and diff after.
COMPILE_CALLS = 0


class CompiledSequence:
    """One customer's transformed sequence as per-id occurrence bitmasks.

    ``masks[litemset_id]`` has bit *e* set iff the id occurs in event
    *e*. Implements the ``ids()`` / ``first_after()`` probe protocol of
    :class:`~repro.core.sequence.OccurrenceIndex`, plus whole-pattern
    primitives used by the counting engines.
    """

    __slots__ = ("masks", "num_events")

    def __init__(self, masks: dict[int, int], num_events: int) -> None:
        self.masks = masks
        self.num_events = num_events

    @classmethod
    def from_events(cls, events: IdEventSeq) -> "CompiledSequence":
        masks: dict[int, int] = {}
        for index, event in enumerate(events):
            bit = 1 << index
            for litemset_id in event:
                masks[litemset_id] = masks.get(litemset_id, 0) | bit
        return cls(masks, len(events))

    # Pickling with __slots__ and no __dict__ needs explicit state.
    def __getstate__(self) -> tuple[dict[int, int], int]:
        return (self.masks, self.num_events)

    def __setstate__(self, state: tuple[dict[int, int], int]) -> None:
        self.masks, self.num_events = state

    def ids(self) -> KeysView[int]:
        """All distinct ids occurring in the customer sequence."""
        return self.masks.keys()

    def first_after(self, litemset_id: int, after: int) -> int | None:
        """Earliest event index strictly greater than ``after`` containing
        ``litemset_id``, or ``None`` — the occurrence-index probe, as two
        int ops: shift off everything up to ``after``, isolate the lowest
        surviving bit."""
        occ = self.masks.get(litemset_id)
        if occ is None:
            return None
        remaining = occ >> (after + 1)
        if not remaining:
            return None
        return after + (remaining & -remaining).bit_length()

    def contains(self, pattern: IdSequence) -> bool:
        """Greedy id-alphabet containment via mask arithmetic."""
        get = self.masks.get
        shift = 0  # events consumed so far (= last matched index + 1)
        for wanted in pattern:
            occ = get(wanted)
            if occ is None:
                return False
            remaining = occ >> shift
            if not remaining:
                return False
            shift += (remaining & -remaining).bit_length()
        return True

    def earliest_end_index(self, pattern: IdSequence) -> int | None:
        """Index where the greedy (earliest) match of ``pattern`` ends, or
        ``None`` — DynamicSome's prefix-side join coordinate."""
        masks = self.masks
        shift = 0
        for wanted in pattern:
            occ = masks.get(wanted)
            if occ is None:
                return None
            remaining = occ >> shift
            if not remaining:
                return None
            shift += (remaining & -remaining).bit_length()
        return shift - 1

    def latest_start_index(self, pattern: IdSequence) -> int | None:
        """Index where the latest possible match of ``pattern`` starts, or
        ``None`` — the mirrored sweep, keeping bits *below* the previous
        match and taking the highest one."""
        masks = self.masks
        limit = self.num_events  # exclusive upper bound for the next match
        start = None
        for wanted in reversed(pattern):
            occ = masks.get(wanted)
            if occ is None:
                return None
            below = occ & ((1 << limit) - 1)
            if not below:
                return None
            start = below.bit_length() - 1
            limit = start
        return start

    def occurring_pairs(self) -> list[tuple[int, int]]:
        """All ordered id pairs ``(a, b)`` contained in this customer.

        ``(a, b)`` is contained iff some occurrence of ``a`` precedes an
        occurrence of ``b`` strictly, i.e. iff ``a``'s lowest set bit lies
        below ``b``'s highest set bit. Each pair appears exactly once.
        """
        bounds = [
            (litemset_id, (mask & -mask).bit_length() - 1, mask.bit_length() - 1)
            for litemset_id, mask in self.masks.items()
        ]
        return [
            (first, second)
            for first, lowest, _ in bounds
            for second, _, highest in bounds
            if lowest < highest
        ]


class CompiledDatabase:
    """An immutable sequence of :class:`CompiledSequence` customers.

    Supports ``len``, indexing, iteration, and slicing (a slice is a
    compiled shard — no recompilation), so it drops into every API that
    takes the raw transformed sequence list, including the sharded
    parallel executor.
    """

    __slots__ = ("customers",)

    def __init__(self, customers: tuple[CompiledSequence, ...]) -> None:
        self.customers = customers

    @classmethod
    def compile(cls, sequences: PySequence[IdEventSeq]) -> "CompiledDatabase":
        """Compile every customer of a transformed database. Counted in
        :data:`COMPILE_CALLS`; callers compile once per run and reuse."""
        global COMPILE_CALLS
        COMPILE_CALLS += 1
        return cls(tuple(CompiledSequence.from_events(s) for s in sequences))

    def __getstate__(self) -> tuple[CompiledSequence, ...]:
        return self.customers

    def __setstate__(self, state: tuple[CompiledSequence, ...]) -> None:
        self.customers = state

    def __len__(self) -> int:
        return len(self.customers)

    def __iter__(self) -> Iterator[CompiledSequence]:
        return iter(self.customers)

    @overload
    def __getitem__(self, index: int) -> CompiledSequence: ...

    @overload
    def __getitem__(self, index: slice) -> "CompiledDatabase": ...

    def __getitem__(
        self, index: int | slice
    ) -> "CompiledSequence | CompiledDatabase":
        if isinstance(index, slice):
            return CompiledDatabase(self.customers[index])
        return self.customers[index]


def ensure_compiled(
    sequences: "PySequence[IdEventSeq] | CompiledDatabase",
) -> CompiledDatabase:
    """Pass through an already-compiled database, compile anything else."""
    if isinstance(sequences, CompiledDatabase):
        return sequences
    return CompiledDatabase.compile(sequences)
