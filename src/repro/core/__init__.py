"""The paper's primary contribution: the sequence phase and its pipeline."""
