"""Sequence hash tree for candidate counting (Section 3.3 of the paper).

The paper reuses the VLDB 1994 hash-tree idea "with sequences in place of
itemsets" to avoid testing every candidate against every customer
sequence. This implementation is position-aware: traversal state carries
the event index at which the candidate prefix's greedy match ended, and a
child is only descended when its id occurs in a *strictly later* event.
The per-customer lookup is abstracted behind the
:class:`~repro.core.sequence.OccurrenceProbe` protocol (``ids()`` +
``first_after()``): the ``"hashtree"`` strategy probes a fresh
:class:`~repro.core.sequence.OccurrenceIndex` per pass, while the
``"bitset"`` strategy probes the once-per-run compiled
:class:`~repro.core.bitset.CompiledSequence` bitmasks. Because greedy
earliest matching is optimal, every candidate reaching a leaf has a
contained path prefix; the leaf then verifies the remaining suffix
exactly, so hash collisions cannot yield false positives.

All candidates in one tree have equal length (the sequence phase counts
one candidate length per pass), which keeps splitting simple.

Leaves may exceed ``leaf_capacity``: a bucket splits only if hashing at
some remaining depth actually spreads it over more than one child.
A bucket whose candidates collide at *every* remaining depth — always
when a leaf sits at maximum depth, and also for pathological id sets
under a small ``branch_factor`` — stays an over-full leaf rather than
growing a useless chain of single-child nodes. This is safe for
correctness (leaves verify every candidate exactly); only probe fan-out
degrades, and only for buckets no amount of splitting could separate.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.bitset import CompiledSequence
from repro.core.sequence import IdSequence, OccurrenceProbe

DEFAULT_LEAF_CAPACITY = 16
DEFAULT_BRANCH_FACTOR = 32


class _Node:
    __slots__ = ("children", "bucket", "unspreadable")

    def __init__(self) -> None:
        self.children: dict[int, _Node] | None = None  # None ⇒ leaf
        self.bucket: list[IdSequence] = []
        # True ⇒ proven that every bucket entry hashes identically at
        # every remaining depth, so no split could spread it. Caches the
        # O(bucket × depth) spread scan: once set, each further insert
        # only compares the new candidate against bucket[0].
        self.unspreadable = False

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class SequenceHashTree:
    """Hash tree over equal-length id sequences."""

    def __init__(
        self,
        candidates: Iterable[IdSequence] = (),
        *,
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        branch_factor: int = DEFAULT_BRANCH_FACTOR,
    ) -> None:
        if leaf_capacity < 1:
            raise ValueError("leaf_capacity must be >= 1")
        if branch_factor < 2:
            raise ValueError("branch_factor must be >= 2")
        self._leaf_capacity = leaf_capacity
        self._branch_factor = branch_factor
        self._root = _Node()
        self._size = 0
        self._length: int | None = None
        for candidate in candidates:
            self.insert(candidate)

    def __len__(self) -> int:
        return self._size

    @property
    def sequence_length(self) -> int | None:
        """Length of the stored candidates (None while empty)."""
        return self._length

    def _hash(self, litemset_id: int) -> int:
        # The probe descents (_collect/_collect_masks) inline this modulo
        # in their per-id loops; keep the three in sync.
        return litemset_id % self._branch_factor

    def insert(self, candidate: IdSequence) -> None:
        if not candidate:
            raise ValueError("cannot insert an empty sequence")
        if self._length is None:
            self._length = len(candidate)
        elif len(candidate) != self._length:
            raise ValueError(
                f"tree holds {self._length}-sequences, got length {len(candidate)}"
            )
        node = self._root
        depth = 0
        while not node.is_leaf:
            node = node.children.setdefault(self._hash(candidate[depth]), _Node())
            depth += 1
        node.bucket.append(candidate)
        self._size += 1
        if len(node.bucket) <= self._leaf_capacity:
            return
        if node.unspreadable:
            # The pre-existing bucket is hash-uniform at every remaining
            # depth; only the newcomer can change that — an O(depth)
            # check instead of rescanning the whole bucket.
            if self._hash_uniform_with(node.bucket[0], candidate, depth):
                return
            node.unspreadable = False
        elif not self._can_spread(node.bucket, depth):
            node.unspreadable = True
            return
        self._split(node, depth)

    def _hash_uniform_with(
        self, reference: IdSequence, candidate: IdSequence, depth: int
    ) -> bool:
        """True iff ``candidate`` hashes like ``reference`` at every
        remaining depth (so adding it cannot make the bucket spreadable)."""
        return all(
            self._hash(candidate[d]) == self._hash(reference[d])
            for d in range(depth, self._length or 0)
        )

    def _can_spread(self, bucket: list[IdSequence], depth: int) -> bool:
        """True iff hashing at some depth ``>= depth`` separates ``bucket``.

        When False, splitting could only produce a chain of single-child
        nodes ending in the same over-full leaf, so the leaf is kept as
        is (see module docstring). Trivially False at maximum depth.
        """
        for d in range(depth, self._length or 0):
            first = self._hash(bucket[0][d])
            if any(self._hash(candidate[d]) != first for candidate in bucket):
                return True
        return False

    def _split(self, node: _Node, depth: int) -> None:
        bucket = node.bucket
        node.bucket = []
        node.children = {}
        for candidate in bucket:
            child = node.children.setdefault(self._hash(candidate[depth]), _Node())
            child.bucket.append(candidate)
        for child in node.children.values():
            if len(child.bucket) > self._leaf_capacity:
                if self._can_spread(child.bucket, depth + 1):
                    self._split(child, depth + 1)
                else:
                    child.unspreadable = True

    def contained_in(self, index: OccurrenceProbe) -> set[IdSequence]:
        """All stored candidates contained in the customer sequence behind
        ``index`` (id-alphabet containment).

        Any :class:`~repro.core.sequence.OccurrenceProbe` works; a
        compiled bitmask customer takes a specialized descent with the
        mask arithmetic inlined (no per-id probe calls) and one-call leaf
        verification — this is the hottest loop of the sequence phase.
        """
        found: set[IdSequence] = set()
        if self._size:
            if isinstance(index, CompiledSequence):
                self._collect_masks(self._root, -1, index, found)
            else:
                self._collect(self._root, 0, -1, index, found)
        return found

    def _collect(
        self,
        node: _Node,
        depth: int,
        last_pos: int,
        index: OccurrenceProbe,
        found: set[IdSequence],
    ) -> None:
        if node.is_leaf:
            for candidate in node.bucket:
                if candidate in found:
                    continue
                if self._verify_suffix(candidate, depth, last_pos, index):
                    found.add(candidate)
            return
        children = node.children
        branch = self._branch_factor
        # Try every distinct id with an occurrence after last_pos whose
        # bucket has a child. Distinct ids sharing a bucket are tried
        # separately because their earliest positions differ.
        for litemset_id in index.ids():
            child = children.get(litemset_id % branch)
            if child is None:
                continue
            pos = index.first_after(litemset_id, last_pos)
            if pos is not None:
                self._collect(child, depth + 1, pos, index, found)

    def _collect_masks(
        self,
        node: _Node,
        last_pos: int,
        customer: CompiledSequence,
        found: set[IdSequence],
    ) -> None:
        """The compiled-probe descent: ``first_after`` unfolded to
        shift/AND/``bit_length`` on the per-id occurrence masks, and leaves
        verified by one whole-pattern ``contains`` (which restarts the
        greedy match exactly like ``_verify_suffix``)."""
        if node.is_leaf:
            contains = customer.contains
            for candidate in node.bucket:
                if candidate not in found and contains(candidate):
                    found.add(candidate)
            return
        children = node.children
        branch = self._branch_factor
        shift = last_pos + 1
        for litemset_id, occ in customer.masks.items():
            child = children.get(litemset_id % branch)
            if child is None:
                continue
            remaining = occ >> shift
            if remaining:
                self._collect_masks(
                    child,
                    last_pos + (remaining & -remaining).bit_length(),
                    customer,
                    found,
                )

    @staticmethod
    def _verify_suffix(
        candidate: IdSequence, depth: int, last_pos: int, index: OccurrenceProbe
    ) -> bool:
        # The path guarantees only that *some* prefix assignment reached
        # last_pos; because hash buckets collide, the candidate's own
        # prefix may differ. Re-verify the whole candidate greedily — the
        # occurrence index makes this O(k log n).
        pos = -1
        for litemset_id in candidate:
            pos = index.first_after(litemset_id, pos)  # type: ignore[assignment]
            if pos is None:
                return False
        return True

    def __iter__(self) -> Iterator[IdSequence]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.bucket
            else:
                stack.extend(node.children.values())
