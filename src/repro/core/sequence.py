"""Sequence algebra for sequential pattern mining.

This module is the foundation of the whole library. It defines the value
types of the ICDE 1995 paper — *itemsets* (sets of items bought together in
one transaction) and *sequences* (ordered lists of itemsets) — plus the two
containment relations the five-phase method relies on:

* **Itemset-aware containment** (:func:`sequence_contains`): the paper's
  Definition — ``<a1 ... an>`` is contained in ``<b1 ... bm>`` iff there are
  indices ``i1 < ... < in`` with each ``aj`` a *subset* of ``b_{ij}``. Used
  by the maximal phase and the brute-force oracle.
* **Id-alphabet containment** (:func:`id_sequence_contains`): after the
  transformation phase every transaction becomes the set of litemset ids it
  contains, and a candidate sequence is a tuple of single ids. Containment
  is then ordered *membership* instead of subset. Used by all support
  counting in the sequence phase.

Both relations are decided by greedy left-to-right matching, which is
optimal for subsequence containment: matching each pattern element at the
earliest possible position never rules out a completion that some other
assignment would allow.

Items are plain ``int`` throughout the core; mapping of user-facing labels
(strings, SKUs, ...) to ints belongs to the I/O layer.
"""

from __future__ import annotations

import re
from bisect import bisect_right
from typing import Iterable, Iterator, Sequence as PySequence

# Canonical homes of the value aliases and of the probe protocol are in
# repro.core.protocols (the dependency leaf); re-exported here because
# this module is where the rest of the package historically imports them.
from repro.core.protocols import (
    IdEventSeq,
    IdSequence,
    Item,
    Itemset,
    OccurrenceProbe,
)

__all__ = [
    "IdEventSeq",
    "IdSequence",
    "Item",
    "Itemset",
    "OccurrenceIndex",
    "OccurrenceProbe",
    "Sequence",
    "SequenceFormatError",
    "earliest_end_index",
    "format_sequence",
    "id_sequence_contains",
    "is_proper_subsequence",
    "itemset_contains",
    "latest_start_index",
    "make_itemset",
    "parse_sequence",
    "sequence_contains",
]

_EVENT_RE = re.compile(r"\(([^()]*)\)")


class SequenceFormatError(ValueError):
    """Raised when parsing a textual sequence fails."""


def make_itemset(items: Iterable[Item]) -> Itemset:
    """Canonicalize ``items`` into a sorted, duplicate-free itemset tuple.

    Raises :class:`ValueError` for empty input or non-integer items, since
    an empty event is meaningless in the paper's model.
    """
    canonical = tuple(sorted(set(items)))
    if not canonical:
        raise ValueError("an itemset must contain at least one item")
    for item in canonical:
        if not isinstance(item, int) or isinstance(item, bool):
            raise ValueError(f"items must be ints, got {item!r}")
    return canonical


def itemset_contains(superset: Iterable[Item], subset: Itemset) -> bool:
    """Return ``True`` iff ``subset`` ⊆ ``superset``."""
    container = superset if isinstance(superset, (set, frozenset)) else set(superset)
    return all(item in container for item in subset)


class Sequence:
    """An immutable sequence of itemsets — the paper's pattern type.

    ``Sequence`` is the public boundary type: mining results, oracle
    answers, and I/O all speak ``Sequence``. The hot inner loops of the
    sequence phase instead work on bare :data:`IdSequence` tuples and only
    inflate to ``Sequence`` when reporting.
    """

    __slots__ = ("_events", "_hash", "_frozen")

    def __init__(self, events: Iterable[Iterable[Item]]) -> None:
        self._events: tuple[Itemset, ...] = tuple(make_itemset(e) for e in events)
        if not self._events:
            raise ValueError("a sequence must contain at least one event")
        self._hash = hash(self._events)
        self._frozen: tuple[frozenset[Item], ...] | None = None

    @property
    def events(self) -> tuple[Itemset, ...]:
        """The events (itemsets) of this sequence, in order."""
        return self._events

    def frozen_events(self) -> tuple[frozenset[Item], ...]:
        """The events as frozensets, built once and cached.

        :func:`sequence_contains` skips its per-event ``set()`` rebuild
        when pattern events are already sets, so repeated containment
        probes with the same pattern (the maximal phase, the brute-force
        oracle) should pass this form.
        """
        frozen = self._frozen
        if frozen is None:
            frozen = tuple(frozenset(event) for event in self._events)
            self._frozen = frozen
        return frozen

    @property
    def length(self) -> int:
        """Number of itemsets — the paper's notion of sequence length."""
        return len(self._events)

    @property
    def size(self) -> int:
        """Total number of items across all events."""
        return sum(len(e) for e in self._events)

    def items(self) -> frozenset[Item]:
        """The set of distinct items appearing anywhere in the sequence."""
        return frozenset(item for event in self._events for item in event)

    def contains(self, other: "Sequence") -> bool:
        """Return ``True`` iff ``other`` is contained in ``self``."""
        return sequence_contains(self._events, other.frozen_events())

    def is_contained_in(self, other: "Sequence") -> bool:
        """Return ``True`` iff ``self`` is contained in ``other``."""
        return sequence_contains(other._events, self.frozen_events())

    def concat(self, other: "Sequence") -> "Sequence":
        """Concatenate two sequences event-wise."""
        return Sequence(self._events + other._events)

    def drop_event(self, index: int) -> "Sequence":
        """Return the sequence with event ``index`` removed.

        Only valid for sequences of length ≥ 2 (a sequence may not be
        empty).
        """
        if self.length < 2:
            raise ValueError("cannot drop the only event of a sequence")
        events = self._events[:index] + self._events[index + 1 :]
        return Sequence(events)

    def sort_key(self) -> tuple[int, tuple[Itemset, ...]]:
        """Deterministic ordering key: by length, then lexicographic."""
        return (len(self._events), self._events)

    def __iter__(self) -> Iterator[Itemset]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __getitem__(self, index: int) -> Itemset:
        return self._events[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Sequence):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Sequence") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:
        return f"Sequence({format_sequence(self)!r})"

    def __str__(self) -> str:
        return format_sequence(self)


def sequence_contains(
    container: PySequence[Itemset | frozenset[Item]],
    pattern: PySequence[Itemset | frozenset[Item]],
) -> bool:
    """Itemset-aware containment: is ``pattern`` contained in ``container``?

    Greedy matching over events; each pattern event must be a subset of a
    strictly later container event than the previous match. Pattern events
    that already are ``set``/``frozenset`` are used as-is — callers probing
    one pattern against many containers (the maximal phase, the oracle)
    pre-freeze the pattern once instead of rebuilding a set per probe.
    """
    if len(pattern) > len(container):
        return False
    pos = 0
    limit = len(container)
    for event in pattern:
        event_set = event if isinstance(event, (set, frozenset)) else set(event)
        while pos < limit and not event_set.issubset(container[pos]):
            pos += 1
        if pos == limit:
            return False
        pos += 1
    return True


def is_proper_subsequence(
    pattern: PySequence[Itemset], container: PySequence[Itemset]
) -> bool:
    """True iff ``pattern`` is contained in ``container`` and differs from it."""
    if tuple(pattern) == tuple(container):
        return False
    return sequence_contains(container, pattern)


def id_sequence_contains(pattern: IdSequence, events: IdEventSeq) -> bool:
    """Id-alphabet containment over a transformed customer sequence.

    ``pattern`` is a tuple of litemset ids; ``events`` is the customer's
    transformed transaction list. Each pattern id must be a member of a
    strictly later event than the previous one.
    """
    pos = 0
    limit = len(events)
    for wanted in pattern:
        while pos < limit and wanted not in events[pos]:
            pos += 1
        if pos == limit:
            return False
        pos += 1
    return True


def earliest_end_index(pattern: IdSequence, events: IdEventSeq) -> int | None:
    """Index of the event where the greedy (earliest) match of ``pattern``
    ends, or ``None`` if the pattern is not contained.

    Used by DynamicSome's on-the-fly join: ``x . y`` is contained in a
    customer sequence iff ``earliest_end_index(x) < latest_start_index(y)``.
    """
    pos = 0
    limit = len(events)
    end = None
    for wanted in pattern:
        while pos < limit and wanted not in events[pos]:
            pos += 1
        if pos == limit:
            return None
        end = pos
        pos += 1
    return end


def latest_start_index(pattern: IdSequence, events: IdEventSeq) -> int | None:
    """Index of the event where the latest possible match of ``pattern``
    starts, or ``None`` if the pattern is not contained.

    Computed by greedy right-to-left matching, the mirror image of
    :func:`earliest_end_index`.
    """
    pos = len(events) - 1
    start = None
    for wanted in reversed(pattern):
        while pos >= 0 and wanted not in events[pos]:
            pos -= 1
        if pos < 0:
            return None
        start = pos
        pos -= 1
    return start


class OccurrenceIndex:
    """Per-customer index of id occurrences for fast prefix matching.

    For a transformed customer sequence, records for every litemset id the
    sorted list of event indices where it occurs. The sequence hash tree
    uses :meth:`first_after` to extend a greedy prefix match by one id in
    O(log occurrences), instead of rescanning events.
    """

    __slots__ = ("positions", "num_events")

    def __init__(self, events: IdEventSeq) -> None:
        positions: dict[int, list[int]] = {}
        for index, event in enumerate(events):
            for litemset_id in event:
                positions.setdefault(litemset_id, []).append(index)
        self.positions = positions
        self.num_events = len(events)

    def first_after(self, litemset_id: int, after: int) -> int | None:
        """Earliest event index strictly greater than ``after`` containing
        ``litemset_id``, or ``None``."""
        occ = self.positions.get(litemset_id)
        if occ is None:
            return None
        i = bisect_right(occ, after)
        if i == len(occ):
            return None
        return occ[i]

    def ids(self) -> Iterable[int]:
        """All distinct ids occurring in the customer sequence."""
        return self.positions.keys()


def format_sequence(sequence: Sequence | PySequence[Itemset]) -> str:
    """Render a sequence in the paper's notation: ``<(30)(40 70)>``."""
    events = sequence.events if isinstance(sequence, Sequence) else sequence
    inner = "".join("(" + " ".join(str(i) for i in event) + ")" for event in events)
    return f"<{inner}>"


def parse_sequence(text: str) -> Sequence:
    """Parse the paper's notation: ``<(30) (40 70)>`` → ``Sequence``.

    Whitespace between events is ignored; items within an event are
    whitespace- or comma-separated integers.
    """
    stripped = text.strip()
    if not (stripped.startswith("<") and stripped.endswith(">")):
        raise SequenceFormatError(f"sequence must be wrapped in <>: {text!r}")
    body = stripped[1:-1]
    remainder = _EVENT_RE.sub("", body).strip()
    if remainder:
        raise SequenceFormatError(f"unparsable fragment {remainder!r} in {text!r}")
    events = []
    for match in _EVENT_RE.finditer(body):
        raw = match.group(1).replace(",", " ").split()
        if not raw:
            raise SequenceFormatError(f"empty event in {text!r}")
        try:
            events.append([int(tok) for tok in raw])
        except ValueError as exc:
            raise SequenceFormatError(f"non-integer item in {text!r}") from exc
    if not events:
        raise SequenceFormatError(f"no events found in {text!r}")
    return Sequence(events)
