"""Support counting engines for the sequence phase.

One *pass* = one scan of the transformed database that counts how many
customers contain each candidate (a customer contributes at most 1 to each
candidate, per the paper's support definition). Two interchangeable
strategies are provided:

* ``"hashtree"`` — the paper's approach: build a
  :class:`~repro.core.hashtree.SequenceHashTree` over the candidates and
  probe it once per customer.
* ``"naive"`` — test every candidate against every customer with the
  greedy matcher. Quadratic, but simple; kept as the reference
  implementation and as the baseline of the counting ablation bench.

Both return identical counts (a property test enforces this).

Either strategy can run sharded-parallel: with ``workers > 1`` (or
``workers=0`` for all CPUs) the pass is routed through
:mod:`repro.parallel`, which partitions the customers into disjoint
shards, counts each shard in a ``multiprocessing`` worker, and sums the
per-shard counts — exact, because customer support is additive across
disjoint customer partitions. ``chunk_size`` optionally fixes the number
of customers per shard (default: one near-equal shard per worker).
``workers=1`` is the serial engine, in-process, no pool.
"""

from __future__ import annotations

from typing import Collection, Literal, Sequence as PySequence

from repro.core.hashtree import (
    DEFAULT_BRANCH_FACTOR,
    DEFAULT_LEAF_CAPACITY,
    SequenceHashTree,
)
from repro.core.sequence import IdSequence, OccurrenceIndex, id_sequence_contains

CountingStrategy = Literal["hashtree", "naive"]

TransformedSequences = PySequence[tuple[frozenset[int], ...]]


def count_candidates(
    sequences: TransformedSequences,
    candidates: Collection[IdSequence],
    *,
    strategy: CountingStrategy = "hashtree",
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
    branch_factor: int = DEFAULT_BRANCH_FACTOR,
    workers: int = 1,
    chunk_size: int | None = None,
) -> dict[IdSequence, int]:
    """Count customer support of every candidate in one database pass.

    Returns a dict holding a count for *every* candidate (zero included),
    so callers can filter against a threshold without ``.get`` defaults.
    With ``workers != 1`` the pass runs sharded-parallel (see module
    docstring); the counts are identical either way.
    """
    if workers != 1:
        from repro.parallel.executor import parallel_count_candidates

        return parallel_count_candidates(
            sequences,
            candidates,
            workers=workers,
            chunk_size=chunk_size,
            strategy=strategy,
            leaf_capacity=leaf_capacity,
            branch_factor=branch_factor,
        )
    counts: dict[IdSequence, int] = {candidate: 0 for candidate in candidates}
    if not counts:
        return counts
    if strategy == "hashtree":
        # One tree per candidate length (a tree holds equal-length
        # sequences); the algorithms pass uniform lengths, but the API
        # stays safe for mixed input.
        by_length: dict[int, list[IdSequence]] = {}
        for candidate in counts:
            by_length.setdefault(len(candidate), []).append(candidate)
        trees = [
            SequenceHashTree(
                group, leaf_capacity=leaf_capacity, branch_factor=branch_factor
            )
            for group in by_length.values()
        ]
        for events in sequences:
            index = OccurrenceIndex(events)
            for tree in trees:
                for candidate in tree.contained_in(index):
                    counts[candidate] += 1
    elif strategy == "naive":
        candidate_list = list(counts)
        for events in sequences:
            for candidate in candidate_list:
                if id_sequence_contains(candidate, events):
                    counts[candidate] += 1
    else:
        raise ValueError(f"unknown counting strategy {strategy!r}")
    return counts


def filter_large(
    counts: dict[IdSequence, int], threshold: int
) -> dict[IdSequence, int]:
    """Keep only candidates whose count meets the support threshold."""
    return {seq: count for seq, count in counts.items() if count >= threshold}


def count_length2(
    sequences: TransformedSequences,
    *,
    workers: int = 1,
    chunk_size: int | None = None,
) -> dict[IdSequence, int]:
    """Fast path for the length-2 pass.

    ``C_2`` is all |L_1|² ordered id pairs (every litemset is a large
    1-sequence), which is far too many to materialize and probe for large
    alphabets. Instead this counts, per customer, exactly the ordered
    pairs that *occur* — any pair never occurring has support 0 and cannot
    be large — by sweeping each customer sequence once with a running
    prefix union. Returns counts for occurring pairs only; callers report
    the analytic |L_1|² as the candidate count.

    Equivalence with the generic engine over the materialized ``C_2`` is
    enforced by a property test. ``workers``/``chunk_size`` shard the pass
    exactly as in :func:`count_candidates`.
    """
    if workers != 1:
        from repro.parallel.executor import parallel_count_length2

        return parallel_count_length2(
            sequences, workers=workers, chunk_size=chunk_size
        )
    counts: dict[IdSequence, int] = {}
    for events in sequences:
        seen: set[IdSequence] = set()
        prefix: set[int] = set()
        for event in events:
            for second in event:
                for first in prefix:
                    seen.add((first, second))
            prefix.update(event)
        for pair in seen:
            counts[pair] = counts.get(pair, 0) + 1
    return counts
