"""Support counting engines for the sequence phase.

One *pass* = one scan of the transformed database that counts how many
customers contain each candidate (a customer contributes at most 1 to each
candidate, per the paper's support definition). Four interchangeable
strategies are provided:

* ``"hashtree"`` — the paper's approach: build a
  :class:`~repro.core.hashtree.SequenceHashTree` over the candidates and
  probe it once per customer, via a fresh per-pass
  :class:`~repro.core.sequence.OccurrenceIndex`.
* ``"bitset"`` — the same hash-tree candidate fan-out, but probed against
  the :mod:`~repro.core.bitset` compiled database: each customer is
  compiled **once per mining run** into per-id occurrence bitmasks, and
  every matching primitive becomes C-speed integer shift/AND ops. No
  per-pass index reconstruction.
* ``"vertical"`` — candidate-driven instead of data-driven: the compiled
  database is inverted **once per mining run** into per-id vertical
  lists, and a candidate's support is the size of the join of its two
  join-parents' memoized support lists (:mod:`~repro.core.vertical`).
  Only the customers that supported both parents are touched — no
  database scan at all — and the lists roll forward pass to pass.
* ``"naive"`` — test every candidate against every customer with the
  greedy matcher. Quadratic, but simple; kept as the reference
  implementation and as the baseline of the counting ablation bench.

All strategies return identical counts (property tests enforce this).

The ``sequences`` argument of every engine accepts the raw transformed
sequence list, an already-compiled
:class:`~repro.core.bitset.CompiledDatabase`, an already-inverted
:class:`~repro.core.vertical.VerticalDatabase`, or the disk-backed
:class:`~repro.db.partitioned.PartitionedSequences`; the algorithms
prepare the right form once up front (via
:meth:`CountingOptions.prepare_sequences`), so the per-pass calls here
never recompile or re-invert. The partitioned form is counted **one
partition at a time** under any strategy — the per-partition counts sum
exactly because customer support is additive across disjoint customer
partitions — so a pass's peak memory is one partition, not the database.

Every strategy can run sharded-parallel: with ``workers > 1`` (or
``workers=0`` for all CPUs) the pass is routed through
:mod:`repro.parallel`. The scanning strategies partition the *customers*
into disjoint shards, count each shard in a ``multiprocessing`` worker,
and sum the per-shard counts — exact, because customer support is
additive across disjoint customer partitions. The vertical strategy
partitions the *candidates* instead (each parent join is independent and
already customer-complete) and merges disjoint count dicts.
``chunk_size`` optionally fixes the number of items (customers, or
candidates for vertical) per shard; ``workers=1`` is the serial engine,
in-process, no pool.
"""

from __future__ import annotations

from typing import Collection, Iterable, Union, cast

from repro.core.bitset import CompiledDatabase, CompiledSequence, ensure_compiled
from repro.core.hashtree import (
    DEFAULT_BRANCH_FACTOR,
    DEFAULT_LEAF_CAPACITY,
    SequenceHashTree,
)

# Canonical homes of the strategy alphabet and of the seam aliases are in
# repro.core.protocols; re-exported here because the rest of the package
# historically imports them from the counting module.
from repro.core.passkey import pass_digest
from repro.core.protocols import (
    COUNTING_STRATEGIES,
    CandidateParents,
    CountingStrategy,
    PartitionedCountable,
    PassCheckpoint,
    SupportCounts,
    TransformedSequence,
    TransformedSequences,
)
from repro.core.sequence import IdSequence, OccurrenceIndex, id_sequence_contains
from repro.core.vertical import (
    VerticalDatabase,
    count_candidates_vertical,
    ensure_vertical,
)

__all__ = [
    "COUNTING_STRATEGIES",
    "CandidateParents",
    "CountableSequences",
    "CountingStrategy",
    "SupportCounts",
    "TransformedSequences",
    "count_candidates",
    "count_candidates_partitioned",
    "count_length2",
    "filter_large",
]

#: What every counting engine scans: raw transformed sequences, the
#: bitset-compiled or vertical-inverted form of the same database, or the
#: disk-backed partitioned form (counted one partition at a time).
#: The partitioned member is the :class:`~repro.core.protocols.PartitionedCountable`
#: *protocol*, not the concrete ``repro.db`` class — the counting layer
#: dispatches structurally and never imports the storage layer.
CountableSequences = Union[
    TransformedSequences,
    CompiledDatabase,
    VerticalDatabase,
    PartitionedCountable,
]


def _build_trees(
    candidates: Collection[IdSequence], leaf_capacity: int, branch_factor: int
) -> list[SequenceHashTree]:
    """One tree per candidate length (a tree holds equal-length sequences);
    the algorithms pass uniform lengths, but the API stays safe for mixed
    input."""
    by_length: dict[int, list[IdSequence]] = {}
    for candidate in candidates:
        by_length.setdefault(len(candidate), []).append(candidate)
    return [
        SequenceHashTree(
            group, leaf_capacity=leaf_capacity, branch_factor=branch_factor
        )
        for group in by_length.values()
    ]


def count_candidates(
    sequences: CountableSequences,
    candidates: Collection[IdSequence],
    *,
    strategy: CountingStrategy = "hashtree",
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
    branch_factor: int = DEFAULT_BRANCH_FACTOR,
    workers: int = 1,
    chunk_size: int | None = None,
    parents: CandidateParents | None = None,
    checkpoint: PassCheckpoint | None = None,
) -> dict[IdSequence, int]:
    """Count customer support of every candidate in one database pass.

    Returns a dict holding a count for *every* candidate (zero included),
    so callers can filter against a threshold without ``.get`` defaults.
    With ``workers != 1`` the pass runs sharded-parallel (see module
    docstring); the counts are identical either way.

    ``parents`` optionally supplies each candidate's two join parents
    (from ``apriori_generate(..., with_parents=True)``). Only the
    candidate-driven ``"vertical"`` strategy consumes it; when absent it
    derives the parentage by slicing, so callers that only kept the
    candidates (the backward phase, raw engine calls) need no extra
    bookkeeping.

    ``checkpoint`` plugs in the durable pass store: a pass already on
    disk is replayed instead of counted, a freshly counted pass is
    recorded before returning. Consulted *before* any work — including
    the workers dispatch, so a replayed pass spawns no pool.
    """
    if checkpoint is not None:
        key = pass_digest("candidates", candidates)
        cached = checkpoint.replay("candidates", key)
        if cached is not None:
            return cached
        counts = count_candidates(
            sequences,
            candidates,
            strategy=strategy,
            leaf_capacity=leaf_capacity,
            branch_factor=branch_factor,
            workers=workers,
            chunk_size=chunk_size,
            parents=parents,
        )
        checkpoint.record("candidates", key, counts)
        return counts
    if workers != 1:
        from repro.parallel.executor import parallel_count_candidates

        return parallel_count_candidates(
            sequences,
            candidates,
            workers=workers,
            chunk_size=chunk_size,
            strategy=strategy,
            leaf_capacity=leaf_capacity,
            branch_factor=branch_factor,
            parents=parents,
        )
    if isinstance(sequences, PartitionedCountable):
        return count_candidates_partitioned(
            sequences,
            candidates,
            strategy=strategy,
            leaf_capacity=leaf_capacity,
            branch_factor=branch_factor,
            parents=parents,
        )
    if strategy == "vertical":
        if not candidates:
            return {}
        return count_candidates_vertical(
            ensure_vertical(sequences), candidates, parents=parents
        )
    if isinstance(sequences, VerticalDatabase):
        # A vertical-prepared database keeps the row-oriented compiled
        # form alongside; the scanning strategies use that.
        sequences = sequences.compiled
    counts: dict[IdSequence, int] = {candidate: 0 for candidate in candidates}
    if not counts:
        return counts
    if strategy == "hashtree":
        trees = _build_trees(counts, leaf_capacity, branch_factor)
        for events in sequences:
            index = (
                events if isinstance(events, CompiledSequence)
                else OccurrenceIndex(events)
            )
            for tree in trees:
                for candidate in tree.contained_in(index):
                    counts[candidate] += 1
    elif strategy == "bitset":
        # Compiled path: reuse the caller's compiled database (the
        # algorithms compile once per run); compile here only when handed
        # raw sequences directly.
        compiled = ensure_compiled(sequences)
        trees = _build_trees(counts, leaf_capacity, branch_factor)
        for customer in compiled:
            for tree in trees:
                for candidate in tree.contained_in(customer):
                    counts[candidate] += 1
    elif strategy == "naive":
        candidate_list = list(counts)
        if isinstance(sequences, CompiledDatabase):
            for customer in sequences:
                for candidate in candidate_list:
                    if customer.contains(candidate):
                        counts[candidate] += 1
        else:
            for events in sequences:
                for candidate in candidate_list:
                    if id_sequence_contains(candidate, events):
                        counts[candidate] += 1
    else:
        raise ValueError(f"unknown counting strategy {strategy!r}")
    return counts


def count_candidates_partitioned(
    sequences: PartitionedCountable,
    candidates: Collection[IdSequence],
    *,
    strategy: CountingStrategy = "hashtree",
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
    branch_factor: int = DEFAULT_BRANCH_FACTOR,
    parents: CandidateParents | None = None,
    partition_indices: range | None = None,
) -> dict[IdSequence, int]:
    """One out-of-core counting pass over (a subset of) the partitions.

    Loads one prepared partition at a time and sums its counts — exact
    because customer support is additive across disjoint customer
    partitions. Per-pass candidate structures (the hash trees of the
    scanning strategies) are built **once** and scan every partition;
    only the customer data is cycled through memory. The parallel
    executor's partition shards call this with their ``partition_indices``
    range, so worker processes share the same code path.
    """
    counts: dict[IdSequence, int] = {candidate: 0 for candidate in candidates}
    if not counts:
        return counts
    indices = (
        range(sequences.num_partitions)
        if partition_indices is None
        else partition_indices
    )
    if strategy == "vertical":
        from repro.parallel.sharding import merge_counts

        return merge_counts(
            (
                count_candidates_vertical(
                    cast(VerticalDatabase, sequences.load_prepared(index, "vertical")),
                    counts,
                    parents=parents,
                )
                for index in indices
            ),
            base=counts,
        )
    if strategy == "naive":
        candidate_list = list(counts)
        for index in indices:
            raw = cast(TransformedSequences, sequences.load_prepared(index, "naive"))
            for events in raw:
                for candidate in candidate_list:
                    if id_sequence_contains(candidate, events):
                        counts[candidate] += 1
        return counts
    if strategy not in ("hashtree", "bitset"):
        raise ValueError(f"unknown counting strategy {strategy!r}")
    trees = _build_trees(counts, leaf_capacity, branch_factor)
    for index in indices:
        part = cast(
            "Iterable[TransformedSequence | CompiledSequence]",
            sequences.load_prepared(index, strategy),
        )
        for events in part:
            index_or_compiled = (
                events if isinstance(events, CompiledSequence)
                else OccurrenceIndex(events)
            )
            for tree in trees:
                for candidate in tree.contained_in(index_or_compiled):
                    counts[candidate] += 1
    return counts


def filter_large(
    counts: dict[IdSequence, int], threshold: int
) -> dict[IdSequence, int]:
    """Keep only candidates whose count meets the support threshold."""
    return {seq: count for seq, count in counts.items() if count >= threshold}


def count_length2(
    sequences: CountableSequences,
    *,
    workers: int = 1,
    chunk_size: int | None = None,
    checkpoint: PassCheckpoint | None = None,
) -> dict[IdSequence, int]:
    """Fast path for the length-2 pass.

    ``C_2`` is all |L_1|² ordered id pairs (every litemset is a large
    1-sequence), which is far too many to materialize and probe for large
    alphabets. Instead this counts, per customer, exactly the ordered
    pairs that *occur* — any pair never occurring has support 0 and cannot
    be large. Over raw sequences, each customer is swept once with a
    running prefix union; per-id *watermarks* record how much of the
    prefix an id has already been paired with, so an id recurring in many
    events is paired only against prefix ids it has not seen yet, and each
    pair is emitted exactly once (no per-customer dedup set). Over a
    :class:`~repro.core.bitset.CompiledDatabase` the sweep is pure mask
    arithmetic: ``(a, b)`` occurs iff ``a``'s lowest set bit lies below
    ``b``'s highest set bit.

    Returns counts for occurring pairs only; callers report the analytic
    |L_1|² as the candidate count. Equivalence with the generic engine
    over the materialized ``C_2`` is enforced by a property test.
    ``workers``/``chunk_size`` shard the pass exactly as in
    :func:`count_candidates`. A vertical-prepared database is unwrapped
    to its compiled form first — the occurring-pairs sweep is inherently
    per-customer, and the inversion keeps the compiled form alongside.
    ``checkpoint`` replays/records the pass as in
    :func:`count_candidates`; its input is the whole database, so the
    pass identity is the constant empty key set.
    """
    if checkpoint is not None:
        key = pass_digest("length2", ())
        cached = checkpoint.replay("length2", key)
        if cached is not None:
            return cached
        counts = count_length2(sequences, workers=workers, chunk_size=chunk_size)
        checkpoint.record("length2", key, counts)
        return counts
    if isinstance(sequences, VerticalDatabase):
        sequences = sequences.compiled
    if workers != 1:
        from repro.parallel.executor import parallel_count_length2

        return parallel_count_length2(
            sequences, workers=workers, chunk_size=chunk_size
        )
    if isinstance(sequences, PartitionedCountable):
        # Out-of-core: run the fast path per partition (raw or compiled,
        # per the prepared strategy) and sum the sparse dicts.
        from repro.parallel.sharding import merge_counts

        return merge_counts(
            count_length2(cast(CountableSequences, part))
            for part in sequences.iter_prepared(sequences.length2_form)
        )
    counts: dict[IdSequence, int] = {}
    if isinstance(sequences, CompiledDatabase):
        # occurring_pairs yields each contained pair exactly once per
        # customer, so the merge adds exactly 0 or 1.
        for customer in sequences:
            for pair in customer.occurring_pairs():
                if pair in counts:
                    counts[pair] += 1
                else:
                    counts[pair] = 1
        return counts
    for events in sequences:
        prefix: list[int] = []  # distinct prefix ids, in first-seen order
        in_prefix: set[int] = set()
        watermark: dict[int, int] = {}  # id -> prefix length already paired
        pairs: list[IdSequence] = []
        for event in events:
            depth = len(prefix)
            if depth:
                for second in event:
                    start = watermark.get(second, 0)
                    if start < depth:
                        for i in range(start, depth):
                            pairs.append((prefix[i], second))
                        watermark[second] = depth
            for litemset_id in event:
                if litemset_id not in in_prefix:
                    in_prefix.add(litemset_id)
                    prefix.append(litemset_id)
        # Each pair occurs at most once per customer (watermarks advance
        # monotonically), so this merge adds exactly 0 or 1 per pair.
        for pair in pairs:
            if pair in counts:
                counts[pair] += 1
            else:
                counts[pair] = 1
    return counts
