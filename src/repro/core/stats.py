"""Instrumentation shared by all three sequence-phase algorithms.

The paper's evaluation discusses not only wall-clock time but *how many
candidates each algorithm counts* (AprioriSome's win comes from skipping
non-maximal candidates; DynamicSome's loss from its exploding intermediate
phase). These counters are the raw material of the Fig. 7 reproduction and
of the ablation benches, so they are first-class results rather than debug
output.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class PassStats:
    """One counting pass of the sequence phase."""

    length: int
    phase: str  # "forward", "initialization", "backward"
    num_candidates: int
    num_large: int
    elapsed_seconds: float

    @property
    def hit_ratio(self) -> float:
        """|L_k| / |C_k| — drives AprioriSome's next(k) heuristic."""
        if self.num_candidates == 0:
            return 0.0
        return self.num_large / self.num_candidates


@dataclass(slots=True)
class AlgorithmStats:
    """Aggregate counters for one sequence-phase run."""

    algorithm: str
    passes: list[PassStats] = field(default_factory=list)
    generated_candidates: dict[int, int] = field(default_factory=dict)
    skipped_by_containment: int = 0  # backward-phase candidates never counted

    @property
    def total_candidates_counted(self) -> int:
        return sum(p.num_candidates for p in self.passes)

    @property
    def total_large(self) -> int:
        return sum(p.num_large for p in self.passes)

    @property
    def total_generated(self) -> int:
        return sum(self.generated_candidates.values())

    @property
    def counted_lengths(self) -> list[int]:
        return sorted({p.length for p in self.passes})

    def record_pass(
        self,
        *,
        length: int,
        phase: str,
        num_candidates: int,
        num_large: int,
        elapsed_seconds: float,
    ) -> None:
        self.passes.append(
            PassStats(
                length=length,
                phase=phase,
                num_candidates=num_candidates,
                num_large=num_large,
                elapsed_seconds=elapsed_seconds,
            )
        )

    def record_generated(self, length: int, count: int) -> None:
        self.generated_candidates[length] = (
            self.generated_candidates.get(length, 0) + count
        )


@dataclass(frozen=True, slots=True)
class PhaseTimings:
    """Wall-clock seconds per pipeline phase (paper Section 3 structure)."""

    sort_seconds: float
    litemset_seconds: float
    transform_seconds: float
    sequence_seconds: float
    maximal_seconds: float

    @property
    def total_seconds(self) -> float:
        return (
            self.sort_seconds
            + self.litemset_seconds
            + self.transform_seconds
            + self.sequence_seconds
            + self.maximal_seconds
        )

    def as_row(self) -> dict[str, float]:
        return {
            "sort": round(self.sort_seconds, 4),
            "litemset": round(self.litemset_seconds, 4),
            "transform": round(self.transform_seconds, 4),
            "sequence": round(self.sequence_seconds, 4),
            "maximal": round(self.maximal_seconds, 4),
            "total": round(self.total_seconds, 4),
        }
