"""Shared types for the sequence phase (phase 4).

All three algorithms — AprioriAll, AprioriSome, DynamicSome — consume a
:class:`~repro.db.transform.TransformedDatabase` plus an integer support
threshold, and produce a :class:`SequencePhaseResult`: the large sequences
of every length, over the litemset-id alphabet, with exact support counts
and instrumentation. The maximal phase then runs once, identically, over
whichever algorithm produced the result — which is what makes the
three-way equivalence property tests possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.counting import CountingStrategy
from repro.core.hashtree import DEFAULT_BRANCH_FACTOR, DEFAULT_LEAF_CAPACITY
from repro.core.sequence import IdSequence
from repro.core.stats import AlgorithmStats


@dataclass(frozen=True, slots=True)
class CountingOptions:
    """Knobs of the support-counting engine, threaded through every pass."""

    strategy: CountingStrategy = "hashtree"
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY
    branch_factor: int = DEFAULT_BRANCH_FACTOR

    def kwargs(self) -> dict:
        return {
            "strategy": self.strategy,
            "leaf_capacity": self.leaf_capacity,
            "branch_factor": self.branch_factor,
        }


@dataclass(slots=True)
class SequencePhaseResult:
    """Large sequences by length, with supports, plus run counters."""

    large_by_length: dict[int, dict[IdSequence, int]] = field(default_factory=dict)
    stats: AlgorithmStats = field(default_factory=lambda: AlgorithmStats("unknown"))

    def all_large(self) -> dict[IdSequence, int]:
        """Union of large sequences across lengths (id alphabet)."""
        merged: dict[IdSequence, int] = {}
        for by_len in self.large_by_length.values():
            merged.update(by_len)
        return merged

    @property
    def max_length(self) -> int:
        lengths = [k for k, v in self.large_by_length.items() if v]
        return max(lengths, default=0)

    def num_large(self) -> int:
        return sum(len(v) for v in self.large_by_length.values())
