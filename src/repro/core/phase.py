"""Shared types for the sequence phase (phase 4).

All three algorithms — AprioriAll, AprioriSome, DynamicSome — consume a
:class:`~repro.db.transform.TransformedDatabase` plus an integer support
threshold, and produce a :class:`SequencePhaseResult`: the large sequences
of every length, over the litemset-id alphabet, with exact support counts
and instrumentation. The maximal phase then runs once, identically, over
whichever algorithm produced the result — which is what makes the
three-way equivalence property tests possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Any, Collection, Mapping

from repro.core.counting import (
    COUNTING_STRATEGIES,
    CountableSequences,
    CountingStrategy,
    TransformedSequences,
)
from repro.core.hashtree import DEFAULT_BRANCH_FACTOR, DEFAULT_LEAF_CAPACITY
from repro.core.protocols import PartitionedCountable, PassCheckpoint
from repro.core.sequence import IdSequence
from repro.core.stats import AlgorithmStats
from repro.core.vertical import VerticalDatabase, ensure_vertical


@dataclass(frozen=True, slots=True)
class CountingOptions:
    """Knobs of the support-counting engine, threaded through every pass.

    ``strategy`` picks the per-pass engine: ``"hashtree"`` (the paper's
    candidate hash tree over a per-pass occurrence index), ``"bitset"``
    (the same tree probed against the once-per-run compiled bitmask
    database — see :mod:`repro.core.bitset`), ``"vertical"`` (the
    once-per-run inverted id-list database with cross-pass support-list
    memoization — candidates are counted by joining their parents' lists,
    no database scan; see :mod:`repro.core.vertical`), or ``"naive"``
    (the quadratic reference). ``workers`` selects the sharded-parallel
    executor: ``1`` (default) counts serially in-process, ``N > 1``
    partitions the work into shards counted by ``N`` worker processes
    (customer shards for the scanning strategies, candidate shards for
    vertical), and ``0`` means one worker per CPU. ``chunk_size``
    optionally fixes the items-per-shard (default: one near-equal shard
    per worker). Counts are identical for every setting; only wall-clock
    time changes. See :mod:`repro.parallel`.

    ``checkpoint`` (``None`` by default — zero cost when unused) plugs a
    durable pass store (:class:`~repro.core.protocols.PassCheckpoint`)
    into every counting pass: completed passes are recorded as they
    finish and replayed in order on resume, which is what backs
    ``seqmine mine --checkpoint-dir`` / ``seqmine resume``. It changes
    no counts, only whether a pass is recomputed.
    """

    strategy: CountingStrategy = "hashtree"
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY
    branch_factor: int = DEFAULT_BRANCH_FACTOR
    workers: int = 1
    chunk_size: int | None = None
    checkpoint: PassCheckpoint | None = None

    def __post_init__(self) -> None:
        if self.strategy not in COUNTING_STRATEGIES:
            raise ValueError(
                f"unknown counting strategy {self.strategy!r}; "
                f"expected one of {COUNTING_STRATEGIES}"
            )
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")

    def prepare_sequences(
        self, sequences: TransformedSequences | PartitionedCountable
    ) -> CountableSequences:
        """The per-run database form every counting pass should scan.

        The bitset strategy compiles the transformed sequences into the
        bitmask form exactly once here — every subsequent pass (forward,
        on-the-fly, backward, sharded-parallel) reuses the compiled
        database instead of rebuilding per-customer indexes. The vertical
        strategy additionally inverts the compiled form into per-id
        vertical lists, again exactly once, and the returned
        :class:`~repro.core.vertical.VerticalDatabase` carries the
        cross-pass support-list cache for the whole run. The other
        strategies scan the raw sequences unchanged.

        A disk-backed partitioned countable (structurally, anything
        satisfying :class:`~repro.core.protocols.PartitionedCountable` —
        concretely :class:`~repro.db.partitioned.PartitionedSequences`)
        prepares *itself*: under bitset/vertical it compiles each
        partition once and caches the compiled form on disk, so later
        passes (and worker processes) deserialize instead of recompiling;
        it is returned unchanged and the counting layer streams it one
        partition at a time.
        """
        if isinstance(sequences, PartitionedCountable):
            return sequences.prepare(self.strategy)
        if self.strategy == "bitset":
            from repro.core.bitset import ensure_compiled

            return ensure_compiled(sequences)
        if self.strategy == "vertical":
            return ensure_vertical(sequences)
        return sequences

    def note_large(
        self, sequences: CountableSequences, large: Collection[IdSequence]
    ) -> None:
        """Tell a stateful backend which candidates survived a pass.

        The vertical backend memoizes a support list per counted
        candidate; only the *large* ones can be join parents of the next
        pass, so the losers' lists are dropped here. A no-op for the
        stateless strategies — algorithms call it unconditionally after
        every support filter. (Partitioned databases are also a no-op:
        their per-partition vertical inversions live only for the
        duration of one partition's count.)
        """
        if isinstance(sequences, VerticalDatabase):
            sequences.cache.retain_surviving(large)

    def kwargs(self) -> dict[str, Any]:
        """Keyword arguments for :func:`repro.core.counting.count_candidates`."""
        return {
            "strategy": self.strategy,
            "leaf_capacity": self.leaf_capacity,
            "branch_factor": self.branch_factor,
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "checkpoint": self.checkpoint,
        }

    def sharding_kwargs(self) -> dict[str, Any]:
        """Keyword arguments for passes that only shard (no strategy knobs),
        like :func:`repro.core.counting.count_length2`."""
        return {
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "checkpoint": self.checkpoint,
        }


@dataclass(slots=True)
class SequencePhaseResult:
    """Large sequences by length, with supports, plus run counters.

    With ``collect_counts`` enabled (the algorithms take it as a
    keyword; :func:`repro.miner.mine` sets it for
    ``collect_state=True`` runs), ``counted_by_length`` retains every
    counting pass's full result — the large sequences *and* the
    negative border (candidates counted but below threshold), with
    exact supports. A key's presence means its count is exact for this
    database; absence means the run never counted it (it may have been
    skipped, pruned, or never generated). ``length2_complete`` marks
    that the length-2 pass counted **every occurring pair** over the
    run's litemset alphabet, so an absent length-2 pair over that
    alphabet has support exactly 0. Both feed the incremental
    subsystem's :class:`~repro.incremental.state.MiningState` snapshot.
    Runs that never asked for a snapshot keep ``collect_counts`` off,
    so each pass's counts are dropped after its support filter exactly
    as before — no retention cost.
    """

    large_by_length: dict[int, dict[IdSequence, int]] = field(default_factory=dict)
    stats: AlgorithmStats = field(default_factory=lambda: AlgorithmStats("unknown"))
    counted_by_length: dict[int, dict[IdSequence, int]] = field(
        default_factory=dict
    )
    length2_complete: bool = False
    collect_counts: bool = False

    def record_counts(self, length: int, counts: Mapping[IdSequence, int]) -> None:
        """Retain one pass's exact counts (large and small alike); no-op
        unless this run collects state."""
        if self.collect_counts:
            self.counted_by_length.setdefault(length, {}).update(counts)

    def all_large(self) -> dict[IdSequence, int]:
        """Union of large sequences across lengths (id alphabet)."""
        merged: dict[IdSequence, int] = {}
        for by_len in self.large_by_length.values():
            merged.update(by_len)
        return merged

    @property
    def max_length(self) -> int:
        lengths = [k for k, v in self.large_by_length.items() if v]
        return max(lengths, default=0)

    def num_large(self) -> int:
        return sum(len(v) for v in self.large_by_length.values())
