"""Compatibility shim: the pipeline now lives at :mod:`repro.miner`.

The miner orchestrates *every* layer — it constructs databases, runs the
litemset and transformation phases, and drives the sequence algorithms —
so it was never really a ``core`` module; keeping it here forced the
``core → db`` imports the layering rule (``python -m tools.lint``) now
forbids. The module moved up to :mod:`repro.miner`; this shim re-exports
its public names lazily (PEP 562) so existing ``repro.core.miner``
imports keep working without making :mod:`repro.core` depend on the
storage layer at import time.
"""

from __future__ import annotations

from importlib import import_module
from typing import Any

#: Names forwarded to :mod:`repro.miner`.
_FORWARDED = (
    "ALGORITHM_NAMES",
    "AlgorithmName",
    "MiningParams",
    "MiningResult",
    "Pattern",
    "mine",
    "mine_from_transactions",
    "mine_sequential_patterns",
)

__all__ = list(_FORWARDED)


def __getattr__(name: str) -> Any:
    if name not in _FORWARDED:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module("repro.miner"), name)
    globals()[name] = value  # cache: next access skips this hook
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_FORWARDED))
