"""Candidate generation for the sequence phase: ``apriori_generate``.

Works over the litemset-id alphabet produced by the transformation phase,
where a candidate k-sequence is a tuple of k ids. The procedure is the
sequence analogue of the VLDB 1994 join:

* **Join** — ``s1`` joins ``s2`` when dropping the first id of ``s1``
  equals dropping the last id of ``s2``; the candidate is ``s1`` extended
  with the last id of ``s2``. For k = 2 the shared part is empty, so the
  join yields *all ordered pairs*, including ``(x, x)`` — a customer can
  buy the same litemset twice.
* **Prune** — a candidate is kept only if every (k−1)-subsequence obtained
  by deleting one id is in the prune universe (normally ``L_{k-1}``;
  AprioriSome prunes against ``C_{k-1}`` when ``L_{k-1}`` was never
  counted).

Unlike the itemset join, sequence order matters, so there is no
"first k−2 items equal" symmetry trick; the join is indexed by the
(k−2)-length overlap instead.
"""

from __future__ import annotations

from typing import Collection, Iterable, Literal, overload

from repro.core.sequence import IdSequence

#: ``candidate -> (joined sequence, extender)`` join parentage.
Parentage = dict[IdSequence, tuple[IdSequence, IdSequence]]


@overload
def apriori_generate(
    large_prev: Collection[IdSequence],
    *,
    prune_universe: Collection[IdSequence] | None = ...,
    with_parents: Literal[False] = ...,
) -> list[IdSequence]: ...


@overload
def apriori_generate(
    large_prev: Collection[IdSequence],
    *,
    prune_universe: Collection[IdSequence] | None = ...,
    with_parents: Literal[True],
) -> tuple[list[IdSequence], Parentage]: ...


def apriori_generate(
    large_prev: Collection[IdSequence],
    *,
    prune_universe: Collection[IdSequence] | None = None,
    with_parents: bool = False,
) -> list[IdSequence] | tuple[list[IdSequence], Parentage]:
    """Generate candidate k-sequences from (k−1)-sequences.

    ``prune_universe`` defaults to ``large_prev``. The result is sorted
    for determinism.

    With ``with_parents=True`` the return value is ``(candidates,
    parents)``, where ``parents`` maps every candidate to the two
    (k−1)-sequences whose join produced it — the parentage contract the
    vertical counting backend's candidate-driven joins consume. By the
    join construction these are always ``candidate[:-1]`` (the joined
    sequence) and ``candidate[1:]`` (the extender), and each candidate
    arises from exactly one join pair.
    """
    prev = sorted(set(large_prev))
    if not prev:
        return ([], {}) if with_parents else []
    k_minus_1 = len(prev[0])
    if any(len(s) != k_minus_1 for s in prev):
        raise ValueError("all sequences must have equal length for the join")
    if prune_universe is None:
        universe = set(prev)
        parents_in_universe = True
    else:
        universe = set(prune_universe)
        # Skipping the join parents in the prune probe is valid only when
        # both (members of ``prev``) are certain to pass the universe
        # check; one O(|prev|) superset test decides that for the pass.
        parents_in_universe = universe.issuperset(prev)

    by_overlap: dict[IdSequence, list[IdSequence]] = {}
    for seq in prev:
        by_overlap.setdefault(seq[:-1], []).append(seq)

    candidates: list[IdSequence] = []
    parents: dict[IdSequence, tuple[IdSequence, IdSequence]] = {}
    for seq in prev:
        overlap = seq[1:]
        for extender in by_overlap.get(overlap, ()):
            candidate = seq + (extender[-1],)
            if has_all_subsequences(
                candidate, universe, skip_join_parents=parents_in_universe
            ):
                candidates.append(candidate)
                if with_parents:
                    parents[candidate] = (seq, extender)
    candidates.sort()
    return (candidates, parents) if with_parents else candidates


def join_parents(candidate: IdSequence) -> tuple[IdSequence, IdSequence]:
    """The two join parents of a generated k-candidate (k ≥ 2): dropping
    the last id recovers the joined sequence, dropping the first recovers
    the extender. Counterpart of the ``with_parents`` mapping for callers
    that only kept the candidate itself (e.g. the backward phase)."""
    return candidate[:-1], candidate[1:]


def has_all_subsequences(
    candidate: IdSequence,
    universe: Collection[IdSequence],
    *,
    skip_join_parents: bool = False,
) -> bool:
    """True iff every delete-one subsequence of ``candidate`` is in
    ``universe``.

    With ``skip_join_parents=True`` the two subsequences that formed the
    join — ``candidate[1:]`` (drop position 0) and ``candidate[:-1]``
    (drop the last position) — are not re-probed; they are in the
    universe by construction, so only the interior deletions need the
    hash lookup (~2/k of the probes eliminated). Callers must guarantee
    the construction invariant (``apriori_generate`` verifies it once per
    pass); the default re-checks everything.
    """
    k = len(candidate)
    drops = range(1, k - 1) if skip_join_parents else range(k)
    for drop in drops:
        if candidate[:drop] + candidate[drop + 1 :] not in universe:
            return False
    return True


def delete_one_subsequences(candidate: IdSequence) -> Iterable[IdSequence]:
    """All (k−1)-subsequences of a k-sequence (delete each position once)."""
    for drop in range(len(candidate)):
        yield candidate[:drop] + candidate[drop + 1 :]
