"""Candidate generation for the sequence phase: ``apriori_generate``.

Works over the litemset-id alphabet produced by the transformation phase,
where a candidate k-sequence is a tuple of k ids. The procedure is the
sequence analogue of the VLDB 1994 join:

* **Join** — ``s1`` joins ``s2`` when dropping the first id of ``s1``
  equals dropping the last id of ``s2``; the candidate is ``s1`` extended
  with the last id of ``s2``. For k = 2 the shared part is empty, so the
  join yields *all ordered pairs*, including ``(x, x)`` — a customer can
  buy the same litemset twice.
* **Prune** — a candidate is kept only if every (k−1)-subsequence obtained
  by deleting one id is in the prune universe (normally ``L_{k-1}``;
  AprioriSome prunes against ``C_{k-1}`` when ``L_{k-1}`` was never
  counted).

Unlike the itemset join, sequence order matters, so there is no
"first k−2 items equal" symmetry trick; the join is indexed by the
(k−2)-length overlap instead.
"""

from __future__ import annotations

from typing import Collection, Iterable

from repro.core.sequence import IdSequence


def apriori_generate(
    large_prev: Collection[IdSequence],
    *,
    prune_universe: Collection[IdSequence] | None = None,
) -> list[IdSequence]:
    """Generate candidate k-sequences from (k−1)-sequences.

    ``prune_universe`` defaults to ``large_prev``. The result is sorted for
    determinism.
    """
    prev = sorted(set(large_prev))
    if not prev:
        return []
    k_minus_1 = len(prev[0])
    if any(len(s) != k_minus_1 for s in prev):
        raise ValueError("all sequences must have equal length for the join")
    universe = set(prune_universe) if prune_universe is not None else set(prev)

    by_overlap: dict[IdSequence, list[IdSequence]] = {}
    for seq in prev:
        by_overlap.setdefault(seq[:-1], []).append(seq)

    candidates: list[IdSequence] = []
    for seq in prev:
        overlap = seq[1:]
        for extender in by_overlap.get(overlap, ()):
            candidate = seq + (extender[-1],)
            if has_all_subsequences(candidate, universe):
                candidates.append(candidate)
    candidates.sort()
    return candidates


def has_all_subsequences(
    candidate: IdSequence, universe: Collection[IdSequence]
) -> bool:
    """True iff every delete-one subsequence of ``candidate`` is in
    ``universe``. (The two subsequences that formed the join are included
    by construction, but checking all of them keeps the code obviously
    correct and costs k hash lookups.)"""
    for drop in range(len(candidate)):
        if candidate[:drop] + candidate[drop + 1 :] not in universe:
            return False
    return True


def delete_one_subsequences(candidate: IdSequence) -> Iterable[IdSequence]:
    """All (k−1)-subsequences of a k-sequence (delete each position once)."""
    for drop in range(len(candidate)):
        yield candidate[:drop] + candidate[drop + 1 :]
