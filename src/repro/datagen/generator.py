"""Customer-sequence assembly — the sequential Quest generator (§4.1).

Each customer gets a Poisson number of transactions of Poisson target
sizes, then is filled with potentially-large sequences picked from the
sequence table by weight:

* each picked sequence is first *corrupted* — itemsets are dropped while a
  uniform draw stays below the sequence's corruption level, then items are
  dropped from each surviving itemset the same way (its own corruption
  level) — modelling that a sought-after pattern rarely occurs complete;
* the surviving itemsets are planted into distinct transactions in order
  (a random increasing assignment), so the pattern is genuinely contained
  in the customer's history;
* if a sequence does not fit in the customer's remaining item budget it is
  planted anyway half the time and carried over to the next customer
  otherwise — the same 50 % rule the VLDB 1994 generator applies to
  itemsets that overflow a transaction.

The generator is fully deterministic for a given (params, seed) pair.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.sequence import Itemset
from repro.datagen.params import SyntheticParams
from repro.datagen.tables import PatternTables, generate_pattern_tables
from repro.db.database import CustomerSequence, SequenceDatabase
from repro.db.records import Transaction


class _WeightedPicker:
    """O(log n) weighted index picking via a cumulative table."""

    def __init__(self, probs: np.ndarray) -> None:
        self._cumulative = np.cumsum(probs)
        # Guard against floating point drift at the top end.
        self._cumulative[-1] = 1.0

    def pick(self, rng: np.random.Generator) -> int:
        return int(np.searchsorted(self._cumulative, rng.random(), side="right"))


def _corrupt_sequence(
    tables: PatternTables, sequence_index: int, rng: np.random.Generator
) -> list[list[int]]:
    """A corrupted copy of one potentially-large sequence (may be empty)."""
    elements = list(tables.sequences[sequence_index])
    corruption = float(tables.sequence_corruption[sequence_index])
    while elements and rng.random() < corruption:
        del elements[int(rng.integers(0, len(elements)))]
    events: list[list[int]] = []
    for itemset_index in elements:
        items = list(tables.itemsets[itemset_index])
        item_corruption = float(tables.itemset_corruption[itemset_index])
        while items and rng.random() < item_corruption:
            del items[int(rng.integers(0, len(items)))]
        if items:
            events.append(items)
    return events


def _plant(
    events: list[list[int]],
    transactions: list[set[int]],
    rng: np.random.Generator,
) -> int:
    """Plant corrupted events into distinct transactions, in order.

    Returns the number of items added. If the sequence has more events
    than the customer has transactions, the overflow events are dropped —
    one more source of partial occurrences.
    """
    num_transactions = len(transactions)
    usable = events[:num_transactions]
    if not usable:
        return 0
    positions = sorted(
        int(p) for p in rng.choice(num_transactions, size=len(usable), replace=False)
    )
    added = 0
    for position, event in zip(positions, usable):
        target = transactions[position]
        for item in event:
            if item not in target:
                target.add(item)
                added += 1
    return added


def _build_customer(
    params: SyntheticParams,
    tables: PatternTables,
    picker: _WeightedPicker,
    rng: np.random.Generator,
    carried: int | None,
) -> tuple[tuple[Itemset, ...], int | None]:
    """One customer's events, plus a possibly carried-over sequence index."""
    num_transactions = max(
        1, int(rng.poisson(params.avg_transactions_per_customer))
    )
    sizes = np.maximum(
        1, rng.poisson(params.avg_items_per_transaction, size=num_transactions)
    )
    budget = int(sizes.sum())
    transactions: list[set[int]] = [set() for _ in range(num_transactions)]

    used = 0
    placed_any = False
    attempts = 0
    max_attempts = 4 * num_transactions + 8
    while used < budget and attempts < max_attempts:
        attempts += 1
        if carried is not None:
            sequence_index, carried = carried, None
        else:
            sequence_index = picker.pick(rng)
        events = _corrupt_sequence(tables, sequence_index, rng)
        cost = sum(len(event) for event in events)
        if cost == 0:
            continue
        if used + cost > budget and placed_any:
            if rng.random() < 0.5:
                used += _plant(events, transactions, rng)
                placed_any = True
            else:
                carried = sequence_index
            break
        used += _plant(events, transactions, rng)
        placed_any = True

    if not placed_any:
        # Corruption wiped everything; keep the customer non-degenerate
        # with a single random item.
        transactions[0].add(int(rng.integers(1, params.num_items + 1)))

    events_out = tuple(
        tuple(sorted(t)) for t in transactions if t
    )
    return events_out, carried


def iter_customer_sequences(
    params: SyntheticParams, seed: int = 0
) -> Iterator[CustomerSequence]:
    """Generate customers one at a time, never holding the database.

    This is the streaming source of the out-of-core path (``seqmine
    generate --stream-out``): a billion-customer dataset costs the memory
    of the pattern tables plus one customer. Yields ids 1..n in order,
    with events already in canonical (sorted-tuple) form, and draws the
    rng in exactly the same order as :func:`generate_database` — the two
    produce identical customers for a given (params, seed) pair.
    """
    rng = np.random.default_rng(seed)
    tables = generate_pattern_tables(params, rng)
    picker = _WeightedPicker(tables.sequence_probs)
    carried: int | None = None
    for customer_id in range(1, params.num_customers + 1):
        events, carried = _build_customer(params, tables, picker, rng, carried)
        yield CustomerSequence(customer_id=customer_id, events=events)


def generate_database(
    params: SyntheticParams, seed: int = 0
) -> SequenceDatabase:
    """Generate a full synthetic customer-sequence database in memory."""
    return SequenceDatabase(list(iter_customer_sequences(params, seed)))


def generate_transactions(
    params: SyntheticParams, seed: int = 0
) -> Iterator[Transaction]:
    """The same data as raw transaction rows (times 1..n per customer)."""
    db = generate_database(params, seed)
    for customer in db:
        for when, items in enumerate(customer.events, start=1):
            yield Transaction(
                customer_id=customer.customer_id,
                transaction_time=when,
                items=items,
            )
