"""Quest-style synthetic data generator extended for sequences (Section 4.1)."""
