"""Potentially-large itemset and sequence tables (VLDB 1994 §, extended).

The Quest generator first builds two tables of "potentially large"
patterns that will be planted into customer histories:

* an **itemset table** of N_I itemsets whose sizes are Poisson with mean
  |I|, consecutive entries sharing a correlated fraction of items;
* a **sequence table** of N_S sequences of those itemsets whose lengths
  are Poisson with mean |S|, consecutive entries sharing a correlated
  fraction of elements.

Every table entry carries a pick probability (Exp(1) weights, normalized)
and a corruption level (clipped normal) that controls how completely the
pattern survives being planted. The sequential extension mirrors the
itemset machinery one level up, exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sequence import Itemset
from repro.datagen.params import SyntheticParams


@dataclass(frozen=True, slots=True)
class PatternTables:
    """The two generated tables, with weights and corruption levels."""

    itemsets: tuple[Itemset, ...]
    itemset_probs: np.ndarray
    itemset_corruption: np.ndarray
    sequences: tuple[tuple[int, ...], ...]  # indices into `itemsets`
    sequence_probs: np.ndarray
    sequence_corruption: np.ndarray

    def sequence_events(self, sequence_index: int) -> tuple[Itemset, ...]:
        """The item-level events of one potentially-large sequence."""
        return tuple(
            self.itemsets[itemset_index]
            for itemset_index in self.sequences[sequence_index]
        )


def _poisson_size(rng: np.random.Generator, mean: float) -> int:
    """Poisson draw clipped to >= 1 (empty patterns are meaningless)."""
    return max(1, int(rng.poisson(mean)))


def _correlated_fraction(rng: np.random.Generator, level: float) -> float:
    """Fraction of elements copied from the previous table entry."""
    if level <= 0.0:
        return 0.0
    return min(1.0, float(rng.exponential(level)))


def _corruption_levels(
    rng: np.random.Generator, count: int, mean: float, sd: float
) -> np.ndarray:
    return np.clip(rng.normal(mean, sd, size=count), 0.0, 1.0)


def _normalized_weights(rng: np.random.Generator, count: int) -> np.ndarray:
    weights = rng.exponential(1.0, size=count)
    total = weights.sum()
    if total <= 0:  # pathological but possible with count == 0 guards upstream
        return np.full(count, 1.0 / count)
    return weights / total


def generate_itemset_table(
    params: SyntheticParams, rng: np.random.Generator
) -> tuple[tuple[Itemset, ...], np.ndarray, np.ndarray]:
    """N_I potentially-large itemsets + pick probabilities + corruption."""
    itemsets: list[Itemset] = []
    previous: tuple[int, ...] = ()
    for _ in range(params.num_pattern_itemsets):
        size = min(
            _poisson_size(rng, params.avg_pattern_itemset_size), params.num_items
        )
        chosen: set[int] = set()
        if previous:
            fraction = _correlated_fraction(rng, params.correlation_level)
            num_copied = min(len(previous), size, round(fraction * size))
            if num_copied:
                chosen.update(
                    rng.choice(previous, size=num_copied, replace=False).tolist()
                )
        while len(chosen) < size:
            needed = size - len(chosen)
            fresh = rng.integers(1, params.num_items + 1, size=needed)
            chosen.update(int(i) for i in fresh)
        itemset = tuple(sorted(chosen))
        itemsets.append(itemset)
        previous = itemset
    probs = _normalized_weights(rng, len(itemsets))
    corruption = _corruption_levels(
        rng, len(itemsets), params.corruption_mean, params.corruption_sd
    )
    return tuple(itemsets), probs, corruption


def generate_sequence_table(
    params: SyntheticParams,
    rng: np.random.Generator,
    num_itemsets: int,
    itemset_probs: np.ndarray,
) -> tuple[tuple[tuple[int, ...], ...], np.ndarray, np.ndarray]:
    """N_S potentially-large sequences of itemset indices + weights."""
    sequences: list[tuple[int, ...]] = []
    previous: tuple[int, ...] = ()
    for _ in range(params.num_pattern_sequences):
        length = _poisson_size(rng, params.avg_pattern_sequence_length)
        elements: list[int] = []
        if previous:
            fraction = _correlated_fraction(rng, params.correlation_level)
            num_copied = min(len(previous), length, round(fraction * length))
            if num_copied:
                start = int(rng.integers(0, len(previous) - num_copied + 1))
                elements.extend(previous[start : start + num_copied])
        while len(elements) < length:
            elements.append(int(rng.choice(num_itemsets, p=itemset_probs)))
        sequence = tuple(elements)
        sequences.append(sequence)
        previous = sequence
    probs = _normalized_weights(rng, len(sequences))
    corruption = _corruption_levels(
        rng, len(sequences), params.corruption_mean, params.corruption_sd
    )
    return tuple(sequences), probs, corruption


def generate_pattern_tables(
    params: SyntheticParams, rng: np.random.Generator
) -> PatternTables:
    """Build both tables from one RNG stream (fully seed-deterministic)."""
    itemsets, itemset_probs, itemset_corruption = generate_itemset_table(params, rng)
    sequences, sequence_probs, sequence_corruption = generate_sequence_table(
        params, rng, len(itemsets), itemset_probs
    )
    return PatternTables(
        itemsets=itemsets,
        itemset_probs=itemset_probs,
        itemset_corruption=itemset_corruption,
        sequences=sequences,
        sequence_probs=sequence_probs,
        sequence_corruption=sequence_corruption,
    )
