"""Parameters of the synthetic data generator (paper Table 1).

The paper names datasets by four of the knobs — ``C10-T2.5-S4-I1.25`` means
an average of 10 transactions per customer, 2.5 items per transaction,
potentially-large sequences averaging 4 itemsets, each itemset averaging
1.25 items. The remaining knobs were fixed in the paper at |D| = 250 000
customers, N = 10 000 items, N_S = 5 000 potentially large sequences and
N_I = 25 000 potentially large itemsets.

This reproduction keeps the item universe and itemset table at the
published size (N = 10 000, N_I = 25 000) so per-item density — which
drives the litemset phase — matches the paper, but scales the customer
count down (default |D| = 2 500) so every experiment runs in seconds.
Because pattern supports scale with |D| / N_S, the sequence table is
shrunk to N_S = 1 250 to keep the embedded patterns mineable at the same
relative minsup band the paper sweeps;
:meth:`SyntheticParams.paper_scale` restores the published values for
anyone with the patience.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace

_NAME_RE = re.compile(
    r"^C(?P<C>\d+(?:\.\d+)?)-T(?P<T>\d+(?:\.\d+)?)"
    r"-S(?P<S>\d+(?:\.\d+)?)-I(?P<I>\d+(?:\.\d+)?)$"
)


def _fmt(value: float) -> str:
    """Format a knob value the way the paper does: 2.5 but 10, not 10.0."""
    return f"{value:g}"


@dataclass(frozen=True, slots=True)
class SyntheticParams:
    """All knobs of the sequential Quest generator.

    Field ↔ paper-notation correspondence:

    ==========================================  ======
    ``num_customers``                           |D|
    ``avg_transactions_per_customer``           |C|
    ``avg_items_per_transaction``               |T|
    ``avg_pattern_sequence_length``             |S|
    ``avg_pattern_itemset_size``                |I|
    ``num_pattern_sequences``                   N_S
    ``num_pattern_itemsets``                    N_I
    ``num_items``                               N
    ==========================================  ======

    ``correlation_level``, ``corruption_mean`` and ``corruption_sd`` come
    from the VLDB 1994 generator the paper extends: consecutive
    potentially-large itemsets/sequences share a fraction of their
    elements drawn from Exp(correlation_level), and each potentially-large
    itemset/sequence has a corruption level drawn from
    N(corruption_mean, corruption_sd²) clipped to [0, 1] that drops
    elements when it is planted in a customer's history.
    """

    num_customers: int = 2500
    avg_transactions_per_customer: float = 10.0
    avg_items_per_transaction: float = 2.5
    avg_pattern_sequence_length: float = 4.0
    avg_pattern_itemset_size: float = 1.25
    num_pattern_sequences: int = 1250
    num_pattern_itemsets: int = 25_000
    num_items: int = 10_000
    correlation_level: float = 0.25
    corruption_mean: float = 0.5
    corruption_sd: float = 0.1

    def __post_init__(self) -> None:
        if self.num_customers < 0:
            raise ValueError("num_customers must be >= 0")
        for name in (
            "avg_transactions_per_customer",
            "avg_items_per_transaction",
            "avg_pattern_sequence_length",
            "avg_pattern_itemset_size",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")
        if self.num_items < 1:
            raise ValueError("num_items must be >= 1")
        if self.num_pattern_itemsets < 1:
            raise ValueError("num_pattern_itemsets must be >= 1")
        if self.num_pattern_sequences < 1:
            raise ValueError("num_pattern_sequences must be >= 1")
        if self.avg_pattern_itemset_size > self.num_items:
            raise ValueError("avg_pattern_itemset_size cannot exceed num_items")
        if not 0.0 <= self.correlation_level <= 1.0:
            raise ValueError("correlation_level must be in [0, 1]")
        if not 0.0 <= self.corruption_mean <= 1.0:
            raise ValueError("corruption_mean must be in [0, 1]")
        if self.corruption_sd < 0.0:
            raise ValueError("corruption_sd must be >= 0")

    @property
    def name(self) -> str:
        """The paper-style dataset name, e.g. ``C10-T2.5-S4-I1.25``."""
        return (
            f"C{_fmt(self.avg_transactions_per_customer)}"
            f"-T{_fmt(self.avg_items_per_transaction)}"
            f"-S{_fmt(self.avg_pattern_sequence_length)}"
            f"-I{_fmt(self.avg_pattern_itemset_size)}"
        )

    @classmethod
    def from_name(cls, name: str, **overrides: float | int) -> "SyntheticParams":
        """Parse a paper-style dataset name; other knobs via overrides."""
        match = _NAME_RE.match(name.strip())
        if match is None:
            raise ValueError(
                f"dataset name {name!r} does not match C<n>-T<n>-S<n>-I<n>"
            )
        return cls(
            avg_transactions_per_customer=float(match.group("C")),
            avg_items_per_transaction=float(match.group("T")),
            avg_pattern_sequence_length=float(match.group("S")),
            avg_pattern_itemset_size=float(match.group("I")),
            **overrides,
        )

    def paper_scale(self) -> "SyntheticParams":
        """The published full-scale fixed knobs (|D|=250k, N=10k, ...)."""
        return replace(
            self,
            num_customers=250_000,
            num_items=10_000,
            num_pattern_sequences=5_000,
            num_pattern_itemsets=25_000,
        )

    def scaled(self, factor: float) -> "SyntheticParams":
        """Scale the customer count by ``factor`` (for scale-up figures)."""
        if factor <= 0:
            raise ValueError("factor must be > 0")
        return replace(self, num_customers=max(1, round(self.num_customers * factor)))

    def with_(self, **changes: float | int) -> "SyntheticParams":
        """A copy with the given fields replaced."""
        return replace(self, **changes)
