"""A minimal stdlib client for the pattern server.

``seqmine query --url`` and the runnable example speak to a running
:class:`~repro.serving.server.PatternServer` through these helpers;
they are deliberately thin (``urllib`` + JSON) so scripted consumers
can copy the shape without pulling an HTTP library.
"""

from __future__ import annotations

import json
from typing import Any
from urllib.error import HTTPError, URLError
from urllib.parse import urlencode
from urllib.request import Request, urlopen

__all__ = [
    "ServerResponseError",
    "match",
    "predict",
    "reload_server",
    "request_json",
    "server_stats",
]


class ServerResponseError(ValueError):
    """A non-2xx JSON response from the pattern server."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"server returned {status}: {message}")
        self.status = status


def request_json(
    url: str,
    *,
    method: str = "GET",
    body: dict[str, Any] | None = None,
    timeout: float = 10.0,
) -> dict[str, Any]:
    """One JSON round-trip with the server.

    Raises :class:`ServerResponseError` for an HTTP error status (the
    server's ``error`` field becomes the message) and :class:`OSError`
    when the server is unreachable — both of which the CLI renders as
    its usual one-line failure.
    """
    data = json.dumps(body).encode("utf-8") if body is not None else None
    headers = {"Content-Type": "application/json"} if data else {}
    request = Request(url, data=data, method=method, headers=headers)
    try:
        with urlopen(request, timeout=timeout) as response:
            payload = json.loads(response.read().decode("utf-8"))
    except HTTPError as exc:
        try:
            detail = json.loads(exc.read().decode("utf-8")).get("error", "")
        except (ValueError, OSError):
            detail = exc.reason if isinstance(exc.reason, str) else str(exc)
        raise ServerResponseError(exc.code, str(detail)) from exc
    except URLError as exc:
        raise OSError(f"cannot reach {url}: {exc.reason}") from exc
    if not isinstance(payload, dict):
        raise ServerResponseError(200, "response is not a JSON object")
    return payload


def match(base_url: str, seq_text: str, *, timeout: float = 10.0) -> dict[str, Any]:
    """``GET /match`` for a query in the paper's notation (``<>`` ok)."""
    query = urlencode({"seq": seq_text})
    return request_json(f"{base_url.rstrip('/')}/match?{query}", timeout=timeout)


def predict(
    base_url: str, seq_text: str, k: int = 5, *, timeout: float = 10.0
) -> dict[str, Any]:
    """``GET /predict`` for a query in the paper's notation."""
    query = urlencode({"seq": seq_text, "k": k})
    return request_json(f"{base_url.rstrip('/')}/predict?{query}", timeout=timeout)


def server_stats(base_url: str, *, timeout: float = 10.0) -> dict[str, Any]:
    return request_json(f"{base_url.rstrip('/')}/stats", timeout=timeout)


def reload_server(base_url: str, *, timeout: float = 30.0) -> dict[str, Any]:
    """``POST /reload`` — ask the server to hot-swap its snapshot."""
    return request_json(
        f"{base_url.rstrip('/')}/reload", method="POST", timeout=timeout
    )
