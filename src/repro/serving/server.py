"""An asyncio HTTP service over a :class:`~repro.serving.index.PatternIndex`.

Stdlib only: ``asyncio.start_server`` plus a deliberately minimal
HTTP/1.1 implementation (request line, headers, optional
``Content-Length`` body, keep-alive) — enough for the four JSON
endpoints without pulling a web framework into the dependency set:

* ``GET /match?seq=<(30)(40 70)>`` (or ``POST`` with a JSON
  ``{"sequence": [[30], [40, 70]]}`` body) — the mined patterns
  contained in the query sequence;
* ``GET /predict?seq=...&k=5`` (or ``POST``) — ranked next-event
  candidates;
* ``GET /healthz`` and ``GET /stats`` — liveness and counters;
* ``POST /reload`` — hot-swap to a freshly mined snapshot.

**Hot swap.** The server never mutates an index. It holds one
:class:`IndexSnapshot` — an immutable (index, generation, source)
triple — and a reload builds the *next* snapshot off the event loop (in
a worker thread), then publishes it with a single attribute assignment.
Every request handler captures the snapshot reference exactly once and
answers entirely from it, so a response is always internally consistent
with exactly one generation: there is no moment at which a request can
see half the old and half the new pattern set, and in-flight requests
simply finish on the snapshot they started with. A failed reload (file
missing, truncated, torn mid-write) leaves the published snapshot
untouched — the service keeps serving the old generation and reports
the failure in ``/stats``. ``SIGHUP`` triggers the same reload path
(fire-and-forget), so ``seqmine update ... --output patterns.txt &&
kill -HUP $(cat server.pid)`` is a zero-downtime deploy.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Awaitable, Callable

from repro.serving.index import (
    PatternIndex,
    QueryEvents,
    canonical_query,
    parse_query,
    pattern_payload,
    prediction_payload,
)

__all__ = [
    "IndexSnapshot",
    "PatternServer",
    "RequestError",
    "ServingError",
]

#: Hard cap on request bodies — queries are short; anything bigger is a
#: client bug or abuse.
MAX_BODY_BYTES = 1 << 20


class ServingError(ValueError):
    """An operational serving failure (bad snapshot, reload failure)."""


class RequestError(ValueError):
    """A malformed client request; rendered as an HTTP 4xx."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass(frozen=True, slots=True)
class IndexSnapshot:
    """One immutable served generation of the pattern index."""

    index: PatternIndex
    generation: int
    source: str
    loaded_at: float

    @property
    def num_patterns(self) -> int:
        return self.index.num_patterns


class PatternServer:
    """The serving tier: an index snapshot behind an asyncio HTTP server.

    Lifecycle: construct with the pattern-file path, ``await start()``
    (loads the first snapshot, binds the socket, installs the SIGHUP
    handler where the platform has one), then either ``await
    serve_forever()`` or drive requests from the same loop; ``await
    close()`` tears down. ``port=0`` binds an ephemeral port, published
    as :attr:`port` after ``start()``.
    """

    def __init__(
        self,
        patterns_path: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._patterns_path = str(patterns_path)
        self._host = host
        self._requested_port = port
        self._snapshot: IndexSnapshot | None = None
        self._server: asyncio.base_events.Server | None = None
        self._reload_lock = asyncio.Lock()
        self._sighup_installed = False
        self._started_at = 0.0
        self._request_counts: dict[str, int] = {}
        self._reloads_ok = 0
        self._reloads_failed = 0
        self._last_reload_error: str | None = None

    # ------------------------------------------------------------- #
    # Lifecycle
    # ------------------------------------------------------------- #

    @property
    def snapshot(self) -> IndexSnapshot:
        """The currently published snapshot (requires ``start()``)."""
        if self._snapshot is None:
            raise ServingError("server not started: no snapshot loaded")
        return self._snapshot

    @property
    def port(self) -> int:
        if self._server is None:
            raise ServingError("server not started: no bound port")
        sock = self._server.sockets[0]
        return int(sock.getsockname()[1])

    @property
    def address(self) -> str:
        return f"http://{self._host}:{self.port}"

    async def start(self) -> None:
        """Load the initial snapshot and bind the listening socket."""
        index = PatternIndex.from_file(self._patterns_path)
        self._snapshot = IndexSnapshot(
            index=index,
            generation=1,
            source=self._patterns_path,
            loaded_at=time.time(),
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._requested_port
        )
        self._started_at = time.monotonic()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGHUP, self._sighup)
            self._sighup_installed = True
        except (NotImplementedError, RuntimeError):
            # No signal support on this platform/loop (e.g. Windows,
            # or a loop embedded in a thread): /reload still works.
            self._sighup_installed = False

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ServingError("server not started")
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._sighup_installed:
            asyncio.get_running_loop().remove_signal_handler(signal.SIGHUP)
            self._sighup_installed = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------- #
    # Hot swap
    # ------------------------------------------------------------- #

    async def reload(self) -> IndexSnapshot:
        """Build the next snapshot from the pattern file and publish it.

        The index is built in a worker thread, so the event loop keeps
        answering requests from the old snapshot for the whole build;
        the publish itself is one attribute assignment. Raises
        :class:`ServingError` on any load failure, in which case the
        old snapshot remains published and serving.
        """
        async with self._reload_lock:
            old = self.snapshot
            loop = asyncio.get_running_loop()
            try:
                index = await loop.run_in_executor(
                    None, PatternIndex.from_file, self._patterns_path
                )
            except (ValueError, OSError) as exc:
                self._reloads_failed += 1
                self._last_reload_error = str(exc)
                raise ServingError(
                    f"reload failed, still serving generation "
                    f"{old.generation}: {exc}"
                ) from exc
            snapshot = IndexSnapshot(
                index=index,
                generation=old.generation + 1,
                source=self._patterns_path,
                loaded_at=time.time(),
            )
            self._snapshot = snapshot
            self._reloads_ok += 1
            self._last_reload_error = None
            return snapshot

    def _sighup(self) -> None:
        """SIGHUP → background reload; failures land in ``/stats``."""

        async def _run() -> None:
            try:
                await self.reload()
            except ServingError:
                pass  # counted in _reloads_failed, old snapshot serving

        asyncio.get_running_loop().create_task(_run())

    # ------------------------------------------------------------- #
    # HTTP plumbing
    # ------------------------------------------------------------- #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = await self._handle_one_request(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_one_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one request; returns whether to keep the connection."""
        request_line = await reader.readline()
        if not request_line:
            return False
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            await self._respond(
                writer, 400, {"error": "malformed request line"}, close=True
            )
            return False
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            await self._respond(
                writer, 400, {"error": f"bad Content-Length {length_text!r}"},
                close=True,
            )
            return False
        if length > MAX_BODY_BYTES:
            await self._respond(
                writer, 413, {"error": "request body too large"}, close=True
            )
            return False
        if length:
            body = await reader.readexactly(length)
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        try:
            status, payload = await self._route(method.upper(), target, body)
        except RequestError as exc:
            status, payload = exc.status, {"error": str(exc)}
        except ServingError as exc:
            status, payload = 500, {"error": str(exc)}
        await self._respond(writer, status, payload, close=not keep_alive)
        return keep_alive

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        *,
        close: bool,
    ) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed", 413: "Payload Too Large",
                   500: "Internal Server Error"}
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Error')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------- #
    # Routing
    # ------------------------------------------------------------- #

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        from urllib.parse import parse_qs, unquote, urlsplit

        split = urlsplit(target)
        path = unquote(split.path)
        params = {
            key: values[-1]
            for key, values in parse_qs(split.query).items()
        }
        self._request_counts[path] = self._request_counts.get(path, 0) + 1
        handlers: dict[str, Callable[[], Awaitable[tuple[int, dict[str, Any]]]]] = {
            "/match": lambda: self._handle_match(method, params, body),
            "/predict": lambda: self._handle_predict(method, params, body),
            "/healthz": lambda: self._handle_healthz(method),
            "/stats": lambda: self._handle_stats(method),
            "/reload": lambda: self._handle_reload(method),
        }
        handler = handlers.get(path)
        if handler is None:
            raise RequestError(404, f"unknown path {path!r}")
        return await handler()

    def _query_from(
        self, method: str, params: dict[str, str], body: bytes
    ) -> tuple[QueryEvents, dict[str, str]]:
        """The query events of a /match or /predict request.

        GET passes ``seq=<(30)(40 70)>``; POST passes a JSON body
        ``{"sequence": [[30], [40, 70]], ...}`` whose remaining keys
        (e.g. ``k``) merge into the parameter map.
        """
        if method == "POST" and body:
            try:
                decoded = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise RequestError(400, f"bad JSON body: {exc}") from exc
            if not isinstance(decoded, dict) or "sequence" not in decoded:
                raise RequestError(
                    400, "POST body must be a JSON object with 'sequence'"
                )
            raw = decoded["sequence"]
            if not isinstance(raw, list) or not all(
                isinstance(event, list) for event in raw
            ):
                raise RequestError(400, "'sequence' must be a list of lists")
            try:
                events = canonical_query(raw)
            except ValueError as exc:
                raise RequestError(400, f"bad sequence: {exc}") from exc
            merged = dict(params)
            for key, value in decoded.items():
                if key != "sequence":
                    merged[key] = str(value)
            return events, merged
        if method not in ("GET", "POST"):
            raise RequestError(405, f"method {method} not allowed")
        seq_text = params.get("seq")
        if seq_text is None:
            raise RequestError(
                400, "missing 'seq' parameter (or POST a JSON body)"
            )
        try:
            return parse_query(seq_text), params
        except ValueError as exc:
            raise RequestError(400, f"bad seq: {exc}") from exc

    async def _handle_match(
        self, method: str, params: dict[str, str], body: bytes
    ) -> tuple[int, dict[str, Any]]:
        events, _ = self._query_from(method, params, body)
        # One snapshot read per request: everything below — matching,
        # generation, pattern payloads — comes from this object, so the
        # response can never mix generations mid-swap.
        snapshot = self.snapshot
        matched = snapshot.index.match(events)
        return 200, {
            "generation": snapshot.generation,
            "num_matched": len(matched),
            "patterns": [pattern_payload(pattern) for pattern in matched],
        }

    async def _handle_predict(
        self, method: str, params: dict[str, str], body: bytes
    ) -> tuple[int, dict[str, Any]]:
        events, merged = self._query_from(method, params, body)
        k_text = merged.get("k", "5")
        try:
            k = int(k_text)
        except ValueError as exc:
            raise RequestError(400, f"bad k {k_text!r}") from exc
        if k < 0:
            raise RequestError(400, f"k must be >= 0, got {k}")
        snapshot = self.snapshot
        predictions = snapshot.index.predict_next(events, k)
        return 200, {
            "generation": snapshot.generation,
            "predictions": [
                prediction_payload(prediction) for prediction in predictions
            ],
        }

    async def _handle_healthz(self, method: str) -> tuple[int, dict[str, Any]]:
        if method != "GET":
            raise RequestError(405, f"method {method} not allowed")
        snapshot = self.snapshot
        return 200, {
            "status": "ok",
            "generation": snapshot.generation,
            "patterns": snapshot.num_patterns,
        }

    async def _handle_stats(self, method: str) -> tuple[int, dict[str, Any]]:
        if method != "GET":
            raise RequestError(405, f"method {method} not allowed")
        snapshot = self.snapshot
        return 200, {
            "generation": snapshot.generation,
            "source": snapshot.source,
            "patterns": snapshot.num_patterns,
            "index_nodes": snapshot.index.num_nodes,
            "max_pattern_length": snapshot.index.max_pattern_length,
            "uptime_seconds": time.monotonic() - self._started_at,
            "requests": dict(sorted(self._request_counts.items())),
            "reloads": {
                "ok": self._reloads_ok,
                "failed": self._reloads_failed,
                "last_error": self._last_reload_error,
            },
        }

    async def _handle_reload(self, method: str) -> tuple[int, dict[str, Any]]:
        if method != "POST":
            raise RequestError(
                405, "reload is a POST (it changes served state)"
            )
        snapshot = await self.reload()
        return 200, {
            "generation": snapshot.generation,
            "patterns": snapshot.num_patterns,
            "source": snapshot.source,
        }
