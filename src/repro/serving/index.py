"""The read-path index over mined patterns: match and predict queries.

Mining ends with a pattern file; serving starts here. A
:class:`PatternIndex` compiles the mined pattern set into a prefix trie
whose edges are labeled with *events* (itemsets) and answers the two
questions a downstream consumer asks about a customer's history:

* :meth:`PatternIndex.match` — which mined patterns are contained in
  this sequence? Containment is the paper's subsequence relation: the
  pattern's events must embed in strictly increasing positions, each
  pattern event a *subset* of the customer event it maps to (never a
  substring/adjacency relation).
* :meth:`PatternIndex.predict_next` — given the history so far, what
  event do the mined patterns say comes next? Every trie edge leaving a
  matched pattern prefix is a candidate; candidates are ranked by the
  best support in the subtree behind the edge.

Both run as one left-to-right sweep over the query. The trie is walked
NFA-style: a node is *active* when the pattern prefix it spells is
contained in the query consumed so far. The root (empty prefix) is
always active, activated nodes stay active (subsequence semantics — a
later query event may always be skipped), and each query event expands
the frontier by the edges whose label is a subset of that event. Per
query event the work is bounded by the size of the active frontier and
its out-edges — a property of the *index*, not of the query — so a
query costs O(len(query)) frontier sweeps. Exactness: the active set
after consuming a prefix of the query is precisely the set of pattern
prefixes contained in that query prefix (greedy subset matching loses
nothing because activation is monotone), so ``match`` agrees with a
brute-force ``sequence_contains`` post-filter over the whole pattern
set — a property the test suite fuzzes.

The index is immutable once built; the serving tier swaps whole
instances (see :mod:`repro.serving.server`) rather than mutating one.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.sequence import Itemset, make_itemset, parse_sequence
from repro.io.patterns import read_patterns
from repro.miner import Pattern

__all__ = [
    "PatternIndex",
    "Prediction",
    "QueryEvents",
    "canonical_query",
    "parse_query",
    "pattern_payload",
    "prediction_payload",
]

#: A query — a customer's event history — in canonical form: a tuple of
#: frozenset events. May be empty (a brand-new customer).
QueryEvents = tuple[frozenset[int], ...]


def canonical_query(events: Iterable[Iterable[int]]) -> QueryEvents:
    """Canonicalize raw query events (any iterables of ints) for matching.

    Each event is validated like a transaction itemset (non-empty, int
    items); the query as a whole may be empty.
    """
    return tuple(frozenset(make_itemset(event)) for event in events)


def parse_query(text: str) -> QueryEvents:
    """Parse a query in the paper's notation, allowing the empty ``<>``.

    Patterns are never empty, but a *query* legitimately is (a customer
    with no history yet — every prediction then ranks pattern openings),
    so this accepts what :func:`~repro.core.sequence.parse_sequence`
    rejects.
    """
    stripped = text.strip()
    if stripped == "<>":
        return ()
    return canonical_query(parse_sequence(stripped).events)


@dataclass(frozen=True, slots=True)
class Prediction:
    """One ranked next-event candidate.

    ``count``/``support`` are those of the best-supported mined pattern
    that explains the candidate: a pattern with a prefix contained in
    the query whose next event is ``event``.
    """

    event: Itemset
    count: int
    support: float


def pattern_payload(pattern: Pattern) -> dict[str, object]:
    """The JSON-ready form of one matched pattern.

    Shared by the HTTP server and the CLI's in-process ``query`` so
    both surfaces answer byte-identically.
    """
    return {
        "pattern": str(pattern.sequence),
        "events": [list(event) for event in pattern.sequence.events],
        "count": pattern.count,
        "support": pattern.support,
    }


def prediction_payload(prediction: Prediction) -> dict[str, object]:
    """The JSON-ready form of one ranked prediction."""
    return {
        "event": list(prediction.event),
        "count": prediction.count,
        "support": prediction.support,
    }


class _Node:
    """One trie node: the pattern prefix spelled by the path to it."""

    __slots__ = ("children", "label_sets", "pattern", "best_count", "best_support")

    def __init__(self) -> None:
        self.children: dict[Itemset, _Node] = {}
        #: Pre-frozen edge labels, parallel to ``children`` — the subset
        #: probe per query event runs on these.
        self.label_sets: dict[Itemset, frozenset[int]] = {}
        self.pattern: Pattern | None = None
        #: Best (count, support) over every pattern in this subtree,
        #: the terminal of this node included. Computed once at build.
        self.best_count = 0
        self.best_support = 0.0


class PatternIndex:
    """An immutable prefix-trie index over one mined pattern set."""

    __slots__ = ("_root", "_num_patterns", "_num_nodes", "_max_pattern_length")

    def __init__(self, patterns: Iterable[Pattern]) -> None:
        self._root = _Node()
        self._num_patterns = 0
        self._num_nodes = 1
        self._max_pattern_length = 0
        for pattern in sorted(patterns, key=lambda p: p.sequence.sort_key()):
            self._insert(pattern)
        self._finalize(self._root)

    @classmethod
    def from_file(cls, path: str | Path) -> "PatternIndex":
        """Build an index from a ``seqmine mine --output`` pattern file.

        Strict read: the file must carry the versioned header and an
        intact footer (:mod:`repro.io.patterns`) — an index must never
        be built from a truncated pattern set.
        """
        return cls(read_patterns(path, strict=True))

    def _insert(self, pattern: Pattern) -> None:
        node = self._root
        for event in pattern.sequence.events:
            child = node.children.get(event)
            if child is None:
                child = _Node()
                node.children[event] = child
                node.label_sets[event] = frozenset(event)
                self._num_nodes += 1
            node = child
        if node.pattern is not None:
            raise ValueError(
                f"duplicate pattern {pattern.sequence}: an index is built "
                f"from one mined set, which never repeats a sequence"
            )
        node.pattern = pattern
        self._num_patterns += 1
        self._max_pattern_length = max(
            self._max_pattern_length, pattern.sequence.length
        )

    def _finalize(self, node: _Node) -> tuple[int, float]:
        """Post-order pass filling each node's subtree-best support."""
        best_count = node.pattern.count if node.pattern is not None else 0
        best_support = node.pattern.support if node.pattern is not None else 0.0
        for child in node.children.values():
            child_count, child_support = self._finalize(child)
            if child_count > best_count:
                best_count, best_support = child_count, child_support
        node.best_count, node.best_support = best_count, best_support
        return best_count, best_support

    @property
    def num_patterns(self) -> int:
        return self._num_patterns

    @property
    def num_nodes(self) -> int:
        """Trie size, shared prefixes counted once (root included)."""
        return self._num_nodes

    @property
    def max_pattern_length(self) -> int:
        return self._max_pattern_length

    def _active_nodes(self, events: QueryEvents) -> list[_Node]:
        """The NFA frontier after consuming ``events``.

        Invariant: a node is in the returned list iff its pattern prefix
        is contained (subsequence + itemset-subset) in ``events``. New
        activations are collected per event and appended *after* the
        event's scan, so a prefix never consumes two of its events from
        one query event (strictly-later semantics). A node has exactly
        one parent, activation is monotone, and activated nodes are
        skipped on re-probe, so each node is activated at most once per
        query.
        """
        active: list[_Node] = [self._root]
        seen: set[int] = {id(self._root)}
        for event in events:
            additions: list[_Node] = []
            for node in active:
                for label, child in node.children.items():
                    if id(child) in seen:
                        continue
                    if node.label_sets[label].issubset(event):
                        additions.append(child)
                        seen.add(id(child))
            active.extend(additions)
        return active

    def match(self, query: Iterable[Iterable[int]]) -> list[Pattern]:
        """Every mined pattern contained in ``query``, in canonical order.

        Byte-for-byte equivalent to filtering the pattern set with
        :func:`repro.core.sequence.sequence_contains` — the property the
        serving test suite fuzzes — but computed in one sweep.
        """
        events = canonical_query(query)
        matched = [
            node.pattern
            for node in self._active_nodes(events)
            if node.pattern is not None
        ]
        matched.sort(key=lambda p: p.sequence.sort_key())
        return matched

    def predict_next(
        self, query: Iterable[Iterable[int]], k: int = 5
    ) -> list[Prediction]:
        """The ``k`` best next-event candidates after ``query``.

        A candidate is the label of any trie edge leaving an active
        node: some mined pattern has a prefix contained in the query and
        names that event next. Its score is the best pattern support in
        the subtree behind the edge (the strongest pattern the
        prediction can appeal to); candidates are ranked by descending
        count, ties broken by the event's canonical order so responses
        are deterministic.
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        events = canonical_query(query)
        best: dict[Itemset, tuple[int, float]] = {}
        for node in self._active_nodes(events):
            for label, child in node.children.items():
                current = best.get(label)
                if current is None or child.best_count > current[0]:
                    best[label] = (child.best_count, child.best_support)
        ranked = sorted(best.items(), key=lambda entry: (-entry[1][0], entry[0]))
        return [
            Prediction(event=label, count=count, support=support)
            for label, (count, support) in ranked[:k]
        ]

    def patterns(self) -> Iterator[Pattern]:
        """Every indexed pattern, in trie (prefix) order."""

        def walk(node: _Node) -> Iterator[Pattern]:
            if node.pattern is not None:
                yield node.pattern
            for label in sorted(node.children):
                yield from walk(node.children[label])

        yield from walk(self._root)
