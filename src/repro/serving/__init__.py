"""The pattern-serving tier: the read path over mined patterns.

Mining (every other subsystem in this package) is the write path; this
package is what the millions-of-users story actually queries. It has
three pieces:

* :mod:`repro.serving.index` — :class:`PatternIndex`, a prefix-trie
  index compiled from one mined pattern file, answering ``match`` and
  ``predict_next`` in a single sweep of the query sequence;
* :mod:`repro.serving.server` — :class:`PatternServer`, an asyncio HTTP
  service with hot-swappable, generation-stamped snapshots (zero
  downtime, no torn reads);
* :mod:`repro.serving.client` — stdlib helpers for talking to a running
  server (used by ``seqmine query --url`` and the examples).

Layering: serving sits *above* the mining pipeline and reads only its
published artifact — the pattern file. It imports :mod:`repro.io` and
:mod:`repro.core` surfaces but never the database internals
(``repro.db``), the CLI, or the mining executors; the
``serving-layering`` lint rule enforces this mechanically.
"""

from repro.serving.index import (
    PatternIndex,
    Prediction,
    QueryEvents,
    canonical_query,
    parse_query,
)
from repro.serving.server import (
    IndexSnapshot,
    PatternServer,
    RequestError,
    ServingError,
)

__all__ = [
    "IndexSnapshot",
    "PatternIndex",
    "PatternServer",
    "Prediction",
    "QueryEvents",
    "RequestError",
    "ServingError",
    "canonical_query",
    "parse_query",
]
