"""Static conformance assertions for :mod:`repro.core.protocols`.

Nothing imports this module at runtime. ``mypy --strict src/repro``
checks it like any other module, and each assignment below fails type
checking the moment a concrete class drifts from the protocol it claims
to implement — the ``assert_type``-style replacement for runtime
``isinstance`` conformance tests. New implementations of a seam (a
PrefixSpan engine, a vectorized kernel, a serving snapshot) should add
one line here.

The functions are declared under ``TYPE_CHECKING`` because several of
the concrete classes live in layers (:mod:`repro.db`) that the protocol
module itself must never import; the guard keeps this file import-safe
from anywhere without creating runtime edges the layering lint rule
(``python -m tools.lint``) would have to special-case.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core import protocols
    from repro.core.bitset import CompiledSequence
    from repro.core.counting import count_candidates
    from repro.core.sequence import OccurrenceIndex
    from repro.db.database import CustomerSequence, SequenceDatabase
    from repro.db.partitioned import (
        PartitionedDatabase,
        PartitionedSequences,
        PartitionedTransformedDatabase,
    )
    from repro.db.transform import TransformedDatabase
    from repro.io.checkpoint import CheckpointStore
    from repro.itemsets.litemsets import LitemsetCatalog

    def _occurrence_probes(
        per_pass: OccurrenceIndex, compiled: CompiledSequence
    ) -> list[protocols.OccurrenceProbe]:
        """Both probe backends satisfy the hash-tree traversal surface."""
        return [per_pass, compiled]

    def _customer_records(record: CustomerSequence) -> protocols.CustomerRecord:
        return record

    def _sequence_databases(
        in_memory: SequenceDatabase, on_disk: PartitionedDatabase
    ) -> list[protocols.SequenceDatabaseLike]:
        """Both storage paths satisfy the mining-pipeline database surface."""
        return [in_memory, on_disk]

    def _partitioned_countables(
        sequences: PartitionedSequences,
    ) -> protocols.PartitionedCountable:
        return sequences

    def _partitioned_record_streams(
        on_disk: PartitionedDatabase,
    ) -> protocols.PartitionedRecordStream:
        """The raw partitioned database satisfies the per-partition stream
        surface the PrefixSpan engine mines out-of-core through."""
        return on_disk

    def _transformed_views(
        in_memory: TransformedDatabase, on_disk: PartitionedTransformedDatabase
    ) -> list[protocols.TransformedView]:
        """Both DT forms satisfy what the sequence-phase algorithms consume."""
        return [in_memory, on_disk]

    def _litemset_catalogs(catalog: LitemsetCatalog) -> protocols.LitemsetCatalogLike:
        return catalog

    def _counting_engines() -> protocols.CountingEngine:
        return count_candidates

    def _pass_checkpoints(store: CheckpointStore) -> protocols.PassCheckpoint:
        """The durable pass store satisfies the counting-layer surface."""
        return store
