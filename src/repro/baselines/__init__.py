"""Reference implementations used as oracles and comparison baselines."""
