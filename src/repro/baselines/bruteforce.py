"""Brute-force reference miner — the test oracle.

Enumerates, for every customer, *every* sequence contained in that
customer's history (every ordered choice of transactions crossed with
every non-empty subset of each chosen transaction), counts supports by
direct containment scans, filters by the threshold, and keeps the maximal
survivors. Exponential, deliberately so: it encodes the problem statement
with no algorithmic cleverness, which makes it the ground truth that the
property-based equivalence tests hold AprioriAll, AprioriSome and
DynamicSome against.

A safety limit guards against accidentally feeding it a real dataset.
"""

from __future__ import annotations

from itertools import combinations

from repro.core.maximal import (
    EventsTuple,
    maximal_sequences_naive,
    sequence_of_events,
)
from repro.core.sequence import Itemset, Sequence, sequence_contains
from repro.db.database import SequenceDatabase


class BruteForceLimitError(RuntimeError):
    """Raised when enumeration exceeds the configured safety limit."""


def nonempty_subsets(itemset: Itemset) -> list[Itemset]:
    """All non-empty subsets of an itemset, as canonical tuples."""
    items = tuple(sorted(itemset))
    subsets: list[Itemset] = []
    for size in range(1, len(items) + 1):
        subsets.extend(combinations(items, size))
    return subsets


def enumerate_contained_sequences(
    events: tuple[Itemset, ...],
    *,
    max_pattern_length: int | None = None,
    limit: int = 500_000,
) -> set[EventsTuple]:
    """Every sequence contained in a single customer history."""
    subsets_per_event = [nonempty_subsets(event) for event in events]
    found: set[EventsTuple] = set()
    max_len = len(events) if max_pattern_length is None else min(
        len(events), max_pattern_length
    )
    for length in range(1, max_len + 1):
        for positions in combinations(range(len(events)), length):
            stack: list[tuple[int, tuple[frozenset[int], ...]]] = [(0, ())]
            while stack:
                depth, prefix = stack.pop()
                if depth == length:
                    found.add(prefix)
                    if len(found) > limit:
                        raise BruteForceLimitError(
                            f"more than {limit} contained sequences; "
                            "this database is too large for the oracle"
                        )
                    continue
                for subset in subsets_per_event[positions[depth]]:
                    stack.append((depth + 1, prefix + (frozenset(subset),)))
    return found


def brute_force_mine(
    db: SequenceDatabase,
    minsup: float,
    *,
    max_pattern_length: int | None = None,
    limit: int = 500_000,
) -> list[tuple[Sequence, int]]:
    """All maximal sequential patterns with supports, by exhaustion.

    Returns ``(sequence, support_count)`` pairs in deterministic order.
    ``max_pattern_length`` restricts the pattern length the same way the
    miner's ``max_pattern_length`` parameter does.
    """
    threshold = db.threshold(minsup)
    candidates: set[EventsTuple] = set()
    for customer in db:
        candidates |= enumerate_contained_sequences(
            customer.events, max_pattern_length=max_pattern_length, limit=limit
        )
        if len(candidates) > limit:
            raise BruteForceLimitError(
                f"more than {limit} candidate sequences; "
                "this database is too large for the oracle"
            )

    supported: dict[EventsTuple, int] = {}
    customer_events = [customer.events for customer in db]
    for pattern in candidates:
        count = sum(
            1 for events in customer_events if sequence_contains(events, pattern)
        )
        if count >= threshold:
            supported[pattern] = count

    maximal = maximal_sequences_naive(supported)
    results = [
        (sequence_of_events(events), count) for events, count in maximal.items()
    ]
    results.sort(key=lambda pair: pair[0].sort_key())
    return results
