"""PrefixSpan baseline (Pei et al., IEEE TKDE 2004).

The pattern-growth successor to the 1995 paper's candidate-generate-and-
test algorithms, included as an independently-implemented comparator:

* it shares **no code path** with the Apriori* miners — no litemset
  phase, no transformation, no candidate generation — so agreement
  between the two families is strong evidence both are right
  (``tests/test_prefixspan.py`` makes that a property test);
* it is the baseline every follow-up paper compares against, which makes
  the AprioriAll-vs-PrefixSpan bench (``benchmarks/bench_baselines.py``)
  the natural "who wins" ablation.

The algorithm grows patterns depth-first. For a current pattern (the
*prefix*) it keeps a pseudo-projection — per customer, the index of the
event where the prefix's last element matched earliest — and counts two
kinds of single-item extensions in one scan:

* **s-extension**: item ``x`` opens a new event; it counts for a customer
  if ``x`` occurs in any event strictly after the matched position.
* **i-extension**: item ``x`` joins the last event ``e``; it counts if
  some event at or after the matched position contains ``e ∪ {x}``.
  Enumeration stays canonical by requiring ``x > max(e)``.

Earliest-match positions dominate all alternatives for both extension
kinds, so the greedy projection is lossless. PrefixSpan reports **all**
frequent sequences; apply :func:`repro.core.maximal.maximal_sequences`
to compare with the 1995 answer (the miner's ``maximal=True`` does it).

The projection/scan helpers are shared with the production engine
(:mod:`repro.core.prefixspan`), so the two implementations see the
identical projected view of a database; what stays independent — and is
what the differential oracle leans on — is the *search itself* (this
module recurses depth-first with per-prefix projection scans; the engine
grows a level-synchronous frontier with two streaming sweeps per round).
The database is consumed in two streaming scans: an item-support scan
that retains nothing but a counter, and one materializing scan that
keeps only the frequent-item projection — never the raw database, so a
disk-backed :class:`~repro.db.partitioned.PartitionedDatabase` is
scanned via its merge-free unordered stream instead of paying a full
K-way-merge materialization.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.core.maximal import maximal_sequences
from repro.core.prefixspan import (
    count_item_supports,
    first_event_containing,
    first_event_with_item,
    project_events,
)
from repro.core.protocols import SequenceDatabaseLike
from repro.miner import Pattern
from repro.core.sequence import Sequence


def prefixspan_mine(
    db: SequenceDatabaseLike,
    minsup: float,
    *,
    max_pattern_length: int | None = None,
    maximal: bool = False,
) -> list[Pattern]:
    """Mine frequent sequences with PrefixSpan.

    ``max_pattern_length`` caps the number of events, matching the core
    miner's knob. With ``maximal=True`` the result is filtered to maximal
    sequences — the 1995 paper's answer set.
    """
    threshold = db.threshold(minsup)
    results: dict[tuple[frozenset[int], ...], int] = {}

    # Scan 1 (streaming): per-item customer supports — the length-1
    # seeds. Shared with the engine; retains only the counter.
    item_counts = count_item_supports(db)
    frequent_items = frozenset(
        item for item, count in item_counts.items() if count >= threshold
    )

    # Scan 2 (streaming): keep only each customer's frequent-item
    # projection (infrequent items can appear in no frequent pattern;
    # events left empty are dropped). Unordered is fine — projection
    # scans below are order-independent — and lets a partitioned
    # database stream partition files directly, skipping the merge.
    unordered = getattr(db, "iter_unordered", None)
    stream = unordered() if unordered is not None else iter(db)
    customers: list[tuple[frozenset[int], ...]] = []
    for customer in stream:
        events = project_events(customer.events, frequent_items)
        if events:
            customers.append(events)

    for item in sorted(frequent_items):
        projection = []
        for cust_index, events in enumerate(customers):
            position = first_event_with_item(events, item, 0)
            if position is not None:
                projection.append((cust_index, position))
        prefix = (frozenset((item,)),)
        results[prefix] = len(projection)
        _grow(
            prefix,
            projection,
            customers,
            threshold,
            max_pattern_length,
            results,
        )

    if maximal:
        results = maximal_sequences(results)

    num_customers = db.num_customers
    patterns = [
        Pattern(
            sequence=Sequence(tuple(sorted(event)) for event in events),
            count=count,
            support=count / num_customers if num_customers else 0.0,
        )
        for events, count in results.items()
    ]
    patterns.sort(key=lambda p: p.sequence.sort_key())
    return patterns


def _grow(
    prefix: tuple[frozenset[int], ...],
    projection: list[tuple[int, int]],
    customers: list[tuple[frozenset[int], ...]],
    threshold: int,
    max_pattern_length: int | None,
    results: dict[tuple[frozenset[int], ...], int],
) -> None:
    last_event = prefix[-1]
    last_max = max(last_event)
    can_s_extend = (
        max_pattern_length is None or len(prefix) < max_pattern_length
    )

    s_counts: Counter[int] = Counter()
    i_counts: Counter[int] = Counter()
    for cust_index, position in projection:
        events = customers[cust_index]
        if can_s_extend:
            s_seen: set[int] = set()
            for index in range(position + 1, len(events)):
                s_seen |= events[index]
            for item in s_seen:
                s_counts[item] += 1
        i_seen: set[int] = set()
        for index in range(position, len(events)):
            event = events[index]
            if last_event <= event:
                for item in event:
                    if item > last_max:
                        i_seen.add(item)
        for item in i_seen:
            i_counts[item] += 1

    for item in sorted(i for i, c in i_counts.items() if c >= threshold):
        extended_event = last_event | {item}
        new_projection = []
        for cust_index, position in projection:
            new_position = first_event_containing(
                customers[cust_index], extended_event, position
            )
            if new_position is not None:
                new_projection.append((cust_index, new_position))
        new_prefix = prefix[:-1] + (extended_event,)
        results[new_prefix] = len(new_projection)
        _grow(
            new_prefix,
            new_projection,
            customers,
            threshold,
            max_pattern_length,
            results,
        )

    if not can_s_extend:
        return
    for item in sorted(i for i, c in s_counts.items() if c >= threshold):
        needed = frozenset((item,))
        new_projection = []
        for cust_index, position in projection:
            new_position = first_event_with_item(
                customers[cust_index], item, position + 1
            )
            if new_position is not None:
                new_projection.append((cust_index, new_position))
        new_prefix = prefix + (needed,)
        results[new_prefix] = len(new_projection)
        _grow(
            new_prefix,
            new_projection,
            customers,
            threshold,
            max_pattern_length,
            results,
        )


def prefixspan_frequent_set(
    db: SequenceDatabaseLike, minsup: float
) -> dict[Sequence, int]:
    """Convenience: the full frequent set as a {Sequence: count} map."""
    return {
        p.sequence: p.count for p in prefixspan_mine(db, minsup)
    }


def iter_frequent_counts(
    patterns: Iterable[Pattern],
) -> Iterable[tuple[str, int]]:
    """(rendered sequence, count) pairs — handy for goldens and reports."""
    for pattern in patterns:
        yield str(pattern.sequence), pattern.count
