"""PrefixSpan baseline (Pei et al., IEEE TKDE 2004).

The pattern-growth successor to the 1995 paper's candidate-generate-and-
test algorithms, included as an independently-implemented comparator:

* it shares **no code path** with the Apriori* miners — no litemset
  phase, no transformation, no candidate generation — so agreement
  between the two families is strong evidence both are right
  (``tests/test_prefixspan.py`` makes that a property test);
* it is the baseline every follow-up paper compares against, which makes
  the AprioriAll-vs-PrefixSpan bench (``benchmarks/bench_baselines.py``)
  the natural "who wins" ablation.

The algorithm grows patterns depth-first. For a current pattern (the
*prefix*) it keeps a pseudo-projection — per customer, the index of the
event where the prefix's last element matched earliest — and counts two
kinds of single-item extensions in one scan:

* **s-extension**: item ``x`` opens a new event; it counts for a customer
  if ``x`` occurs in any event strictly after the matched position.
* **i-extension**: item ``x`` joins the last event ``e``; it counts if
  some event at or after the matched position contains ``e ∪ {x}``.
  Enumeration stays canonical by requiring ``x > max(e)``.

Earliest-match positions dominate all alternatives for both extension
kinds, so the greedy projection is lossless. PrefixSpan reports **all**
frequent sequences; apply :func:`repro.core.maximal.maximal_sequences`
to compare with the 1995 answer (the miner's ``maximal=True`` does it).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.core.maximal import maximal_sequences
from repro.miner import Pattern
from repro.core.sequence import Sequence
from repro.db.database import SequenceDatabase


def prefixspan_mine(
    db: SequenceDatabase,
    minsup: float,
    *,
    max_pattern_length: int | None = None,
    maximal: bool = False,
) -> list[Pattern]:
    """Mine frequent sequences with PrefixSpan.

    ``max_pattern_length`` caps the number of events, matching the core
    miner's knob. With ``maximal=True`` the result is filtered to maximal
    sequences — the 1995 paper's answer set.
    """
    threshold = db.threshold(minsup)
    customers = [
        tuple(frozenset(event) for event in customer.events) for customer in db
    ]
    results: dict[tuple[frozenset[int], ...], int] = {}

    # Length-1 seeds: frequent single items.
    item_counts: Counter = Counter()
    for events in customers:
        seen: set[int] = set()
        for event in events:
            seen |= event
        for item in seen:
            item_counts[item] += 1

    for item in sorted(item for item, c in item_counts.items() if c >= threshold):
        projection = []
        for cust_index, events in enumerate(customers):
            position = _first_event_with(events, frozenset((item,)), 0)
            if position is not None:
                projection.append((cust_index, position))
        prefix = (frozenset((item,)),)
        results[prefix] = len(projection)
        _grow(
            prefix,
            projection,
            customers,
            threshold,
            max_pattern_length,
            results,
        )

    if maximal:
        results = maximal_sequences(results)

    num_customers = db.num_customers
    patterns = [
        Pattern(
            sequence=Sequence(tuple(sorted(event)) for event in events),
            count=count,
            support=count / num_customers if num_customers else 0.0,
        )
        for events, count in results.items()
    ]
    patterns.sort(key=lambda p: p.sequence.sort_key())
    return patterns


def _first_event_with(
    events: tuple[frozenset[int], ...], needed: frozenset[int], start: int
) -> int | None:
    for index in range(start, len(events)):
        if needed <= events[index]:
            return index
    return None


def _grow(
    prefix: tuple[frozenset[int], ...],
    projection: list[tuple[int, int]],
    customers: list[tuple[frozenset[int], ...]],
    threshold: int,
    max_pattern_length: int | None,
    results: dict[tuple[frozenset[int], ...], int],
) -> None:
    last_event = prefix[-1]
    last_max = max(last_event)
    can_s_extend = (
        max_pattern_length is None or len(prefix) < max_pattern_length
    )

    s_counts: Counter = Counter()
    i_counts: Counter = Counter()
    for cust_index, position in projection:
        events = customers[cust_index]
        if can_s_extend:
            s_seen: set[int] = set()
            for index in range(position + 1, len(events)):
                s_seen |= events[index]
            for item in s_seen:
                s_counts[item] += 1
        i_seen: set[int] = set()
        for index in range(position, len(events)):
            event = events[index]
            if last_event <= event:
                for item in event:
                    if item > last_max:
                        i_seen.add(item)
        for item in i_seen:
            i_counts[item] += 1

    for item in sorted(i for i, c in i_counts.items() if c >= threshold):
        extended_event = last_event | {item}
        new_projection = []
        for cust_index, position in projection:
            new_position = _first_event_with(
                customers[cust_index], extended_event, position
            )
            if new_position is not None:
                new_projection.append((cust_index, new_position))
        new_prefix = prefix[:-1] + (extended_event,)
        results[new_prefix] = len(new_projection)
        _grow(
            new_prefix,
            new_projection,
            customers,
            threshold,
            max_pattern_length,
            results,
        )

    if not can_s_extend:
        return
    for item in sorted(i for i, c in s_counts.items() if c >= threshold):
        needed = frozenset((item,))
        new_projection = []
        for cust_index, position in projection:
            new_position = _first_event_with(
                customers[cust_index], needed, position + 1
            )
            if new_position is not None:
                new_projection.append((cust_index, new_position))
        new_prefix = prefix + (needed,)
        results[new_prefix] = len(new_projection)
        _grow(
            new_prefix,
            new_projection,
            customers,
            threshold,
            max_pattern_length,
            results,
        )


def prefixspan_frequent_set(
    db: SequenceDatabase, minsup: float
) -> dict[Sequence, int]:
    """Convenience: the full frequent set as a {Sequence: count} map."""
    return {
        p.sequence: p.count for p in prefixspan_mine(db, minsup)
    }


def iter_frequent_counts(
    patterns: Iterable[Pattern],
) -> Iterable[tuple[str, int]]:
    """(rendered sequence, count) pairs — handy for goldens and reports."""
    for pattern in patterns:
        yield str(pattern.sequence), pattern.count
