"""Partitioning a customer database into shards, and merging shard counts.

These helpers are deliberately process-free: they define *what* a sharded
counting pass computes, independently of *how* it is executed. The
executor (and the tests, which check parallel ≡ serial) build on exactly
two facts established here:

1. :func:`partition` splits the customer list into contiguous, disjoint,
   covering shards — every customer appears in exactly one shard;
2. :func:`merge_counts` sums per-shard dicts — valid because customer
   support is additive over disjoint customer sets.
"""

from __future__ import annotations

from typing import Iterable, Sequence as PySequence, TypeVar

T = TypeVar("T")

#: Counts keyed by an arbitrary hashable candidate type.
Counts = dict


def shard_bounds(
    num_items: int, num_shards: int, chunk_size: int | None = None
) -> list[tuple[int, int]]:
    """Half-open ``(start, stop)`` index ranges covering ``0..num_items``.

    With ``chunk_size`` set, every shard holds exactly that many items
    (the last may be short) and ``num_shards`` is ignored; otherwise the
    items are spread over ``num_shards`` near-equal shards (sizes differ
    by at most one, large shards first). Empty shards are never returned.
    """
    if num_items < 0:
        raise ValueError("num_items must be >= 0")
    if num_items == 0:
        return []
    if chunk_size is not None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        return [
            (start, min(start + chunk_size, num_items))
            for start in range(0, num_items, chunk_size)
        ]
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    num_shards = min(num_shards, num_items)
    base, extra = divmod(num_items, num_shards)
    bounds: list[tuple[int, int]] = []
    start = 0
    for shard in range(num_shards):
        stop = start + base + (1 if shard < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def partition(
    items: PySequence[T], num_shards: int, chunk_size: int | None = None
) -> list[PySequence[T]]:
    """Split ``items`` into contiguous disjoint shards covering all items."""
    return [
        items[start:stop]
        for start, stop in shard_bounds(len(items), num_shards, chunk_size)
    ]


def merge_counts(per_shard: Iterable[Counts], base: Counts | None = None) -> Counts:
    """Sum per-shard count dicts.

    ``base`` seeds the result (typically ``{candidate: 0 for ...}`` so the
    merged dict has a key for every candidate, zeros included, in the same
    insertion order as the serial engine); it is not mutated. Keys absent
    from ``base`` are appended as encountered. ``per_shard`` is iterated
    exactly once, so out-of-core callers pass a generator and keep only
    one partition's dict alive at a time.
    """
    merged: Counts = dict(base) if base is not None else {}
    for counts in per_shard:
        for key, value in counts.items():
            merged[key] = merged.get(key, 0) + value
    return merged
