"""Process-pool execution of sharded counting passes.

One pool is spawned per counting pass. Per-pass state that every shard
needs — the candidate list (from which each worker rebuilds its hash
tree), the counting strategy, or the time constraints — is shipped to
each worker exactly *once*, through the pool initializer, rather than
once per shard. A shard task carries only its ``(start, stop)`` customer
bounds: under the ``fork`` start method (preferred whenever the platform
offers it) the workers inherit the parent's sequence list copy-on-write,
so no sequence data is pickled at all; under ``spawn`` the sequences ride
along in the initializer, once per worker. Either way a task returns a
sparse ``{candidate: count}`` dict (zero counts are dropped on the wire
and restored in the merge).

The database handed in may be the raw transformed sequence list or a
:class:`~repro.core.bitset.CompiledDatabase` (the bitset strategy's
once-per-run compiled form; likewise compiled timed histories for the
constrained pass). Slicing a compiled database yields a compiled shard
with zero recompilation, so under ``fork`` the workers inherit the
parent's compiled bitmasks copy-on-write and under ``spawn`` compiled
shards are pickled exactly like raw ones — either way each customer is
compiled once per run, in the parent.

The ``"vertical"`` strategy shards differently: its per-candidate parent
joins are already complete over all customers, so the pass partitions
the **candidates** (``chunk_size`` then means candidates per shard) and
ships the whole :class:`~repro.core.vertical.VerticalDatabase` — inverted
once, in the parent — to every worker (inherited copy-on-write under
``fork``). Each worker counts a disjoint candidate subset, so the merged
dicts never overlap. One honest caveat: the parent's cross-pass
support-list cache is not updated by worker-side counting, so a
parallel vertical pass rebuilds its parent lists inside the workers
(memoized per worker, shared across that worker's candidates) instead of
rolling lists forward pass to pass as the serial engine does.

A disk-backed :class:`~repro.db.partitioned.PartitionedSequences` shards
by **partition**: the object shipped to the pool is just the list of
partition file paths (plus counts), each worker receives a range of
partition *indices* and opens the binlog (or on-disk compiled cache)
itself, counts one partition at a time with the serial engine, and
returns a sparse merged dict. No sequence data is pickled under either
``fork`` or ``spawn``, and worker peak memory stays one partition —
which is the whole point of the out-of-core path. ``chunk_size`` then
means partitions per shard.

The worker entry points are module-level functions so they are picklable
under every ``multiprocessing`` start method.

Serial equivalence (the tests' contract): for any database, candidate
set, worker count, and strategy, the merged counts equal the serial
engine's output exactly. ``workers == 1`` (or a single shard) never
spawns a pool at all — it falls through to the serial engine in-process.

Worker loss is survived, not fatal: shards are dispatched as individual
futures, a died-worker (``BrokenProcessPool``) or failing shard is
re-dispatched with exponential backoff up to ``SHARD_MAX_ATTEMPTS``
times — through a fresh pool when the old one broke — and a shard that
keeps failing degrades to in-process serial counting. Retries and
degradations are logged on ``repro.parallel``; merged counts are
identical either way (see :func:`_run_sharded`).

Passes hand their state to forked workers through module globals
(``_SEQUENCES``/``_STATE``), so at most one counting pass may be in
flight per parent process at a time. The library itself always counts
one pass at a time and scales *within* a pass via this executor; callers
wanting concurrent mining runs should use separate processes, not
threads.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Collection,
    Sequence as PySequence,
    cast,
)

from repro.core.hashtree import DEFAULT_BRANCH_FACTOR, DEFAULT_LEAF_CAPACITY
from repro.parallel.sharding import merge_counts, shard_bounds

if TYPE_CHECKING:
    from multiprocessing.context import BaseContext

    from repro.core.counting import CountableSequences
    from repro.core.maximal import EventsTuple
    from repro.core.protocols import (
        CandidateParents,
        CountingStrategy,
        IdSequence,
        SequenceDatabaseLike,
    )
    from repro.extensions.timeconstraints import TimeConstraints

#: Dispatch attempts per shard (first try included) before the shard
#: degrades to in-process serial counting.
SHARD_MAX_ATTEMPTS = 3

#: Base delay between re-dispatch rounds; doubles every round. Tests
#: monkeypatch it to 0.
SHARD_BACKOFF_SECONDS = 0.05

_LOGGER = logging.getLogger("repro.parallel")

#: The sequence list of the pass in flight. In the parent it is set just
#: before the pool forks (children inherit it copy-on-write) and cleared
#: after the pass; in a spawned worker the initializer assigns it.
_SEQUENCES: Any = None

#: Per-pass worker state installed by the pool initializer, keyed by the
#: kind of counting pass.
_STATE: dict[str, tuple[Any, ...]] = {}


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count knob: ``0``/``None`` means all CPUs."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def _context() -> "BaseContext":
    # Prefer fork only on Linux: it is the platform default there and
    # lets workers inherit the database copy-on-write. macOS lists fork
    # too, but CPython made spawn its default because forking a process
    # whose system libraries have started threads is unsafe — respect
    # the platform default everywhere else.
    if sys.platform.startswith("linux"):
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
    return multiprocessing.get_context(None)


def _pool(
    context: "BaseContext", workers: int, initargs: tuple[Any, ...]
) -> ProcessPoolExecutor:
    """Create the worker pool (separated out so tests can intercept it)."""
    return ProcessPoolExecutor(
        max_workers=workers,
        mp_context=context,
        initializer=_init_worker,
        initargs=initargs,
    )


def _init_worker(sequences: Any, kind: str, state: tuple[Any, ...]) -> None:
    global _SEQUENCES
    if sequences is not None:  # spawn/forkserver: data arrives here
        _SEQUENCES = sequences
    _STATE[kind] = state


def _run_sharded(sequences: Any, workers: int, chunk_size: int | None,
                 kind: str, state: tuple[Any, ...],
                 task: "Callable[[tuple[int, int]], dict]", *,
                 num_items: int | None = None) -> list[dict]:
    """Map ``task`` over shard bounds in a fresh worker pool, surviving
    worker loss.

    Bounds cover the customers by default; ``num_items`` overrides the
    sharded dimension (the vertical pass shards candidates instead).

    Fault tolerance: each shard is submitted as its own future, so a
    lost worker (OOM kill, crash — surfacing as ``BrokenProcessPool``)
    or a shard-level exception fails only the shards that were in
    flight, not the pass. Failed shards are re-dispatched — through a
    fresh pool when the old one broke — with exponential backoff
    between rounds, up to ``SHARD_MAX_ATTEMPTS`` dispatch attempts per
    shard; a shard that keeps failing degrades to in-process serial
    counting (a deterministic error then propagates from there with its
    real traceback). Every retry and degradation is logged on the
    ``repro.parallel`` logger — never silent — and merged counts are
    identical to a clean run because a shard's counts are recorded only
    once, on success. Pool *creation* errors propagate untouched.
    """
    global _SEQUENCES
    bounds = shard_bounds(
        len(sequences) if num_items is None else num_items, workers, chunk_size
    )
    workers = min(workers, len(bounds))  # never spawn idle processes
    context = _context()
    ship = context.get_start_method() != "fork"
    _SEQUENCES = sequences
    # The parent holds the per-pass state too (forked children inherit
    # it; spawned ones get it via the initializer) so a degraded shard
    # can run ``task`` in-process.
    _STATE[kind] = state
    initargs = (sequences if ship else None, kind, state)
    results: list[dict | None] = [None] * len(bounds)
    pool = _pool(context, workers, initargs)
    try:
        todo = list(range(len(bounds)))
        attempts = [0] * len(bounds)
        round_number = 0
        while todo:
            futures = [(index, pool.submit(task, bounds[index])) for index in todo]
            retry: list[int] = []
            pool_broken = False
            for index, future in futures:
                try:
                    results[index] = future.result()
                except BrokenProcessPool as exc:
                    # A worker died; every in-flight future on this pool
                    # fails with it. Innocent shards burn an attempt too
                    # (the culprit is unknowable), but the bound holds.
                    pool_broken = True
                    attempts[index] += 1
                    _LOGGER.warning(
                        "worker lost during shard %d/%d (attempt %d/%d): %s",
                        index + 1, len(bounds), attempts[index],
                        SHARD_MAX_ATTEMPTS, exc,
                    )
                    retry.append(index)
                except Exception as exc:
                    attempts[index] += 1
                    _LOGGER.warning(
                        "shard %d/%d failed (attempt %d/%d): %s",
                        index + 1, len(bounds), attempts[index],
                        SHARD_MAX_ATTEMPTS, exc,
                    )
                    retry.append(index)
            todo = []
            for index in retry:
                if attempts[index] >= SHARD_MAX_ATTEMPTS:
                    _LOGGER.error(
                        "shard %d/%d failed %d times; degrading to "
                        "in-process serial counting",
                        index + 1, len(bounds), attempts[index],
                    )
                    results[index] = task(bounds[index])
                else:
                    todo.append(index)
            if todo:
                time.sleep(SHARD_BACKOFF_SECONDS * (2 ** round_number))
                round_number += 1
                if pool_broken:
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = _pool(context, workers, initargs)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
        _SEQUENCES = None
        _STATE.pop(kind, None)
    return cast("list[dict]", results)


# --- Generic candidate counting (customer shards or candidate shards) ----


def _count_shard(bounds: tuple[int, int]) -> dict:
    from repro.core.counting import count_candidates

    candidates, strategy, leaf_capacity, branch_factor = _STATE["count"]
    counts = count_candidates(
        _SEQUENCES[bounds[0] : bounds[1]],
        candidates,
        strategy=strategy,
        leaf_capacity=leaf_capacity,
        branch_factor=branch_factor,
    )
    return {candidate: count for candidate, count in counts.items() if count}


def _count_partitioned_shard(bounds: tuple[int, int]) -> dict:
    """One shard of an out-of-core pass: a range of partition indices.

    ``_SEQUENCES`` is the (tiny, path-holding) partitioned description;
    the worker opens each of its partitions from disk in the prepared
    strategy form and counts it serially — with per-pass candidate
    structures built once for the whole shard — so shipping the work
    costs bytes of paths, not sequences.
    """
    from repro.core.counting import count_candidates_partitioned

    candidates, strategy, leaf_capacity, branch_factor = _STATE["partitioned"]
    counts = count_candidates_partitioned(
        _SEQUENCES,
        candidates,
        strategy=strategy,
        leaf_capacity=leaf_capacity,
        branch_factor=branch_factor,
        partition_indices=range(bounds[0], bounds[1]),
    )
    return {candidate: count for candidate, count in counts.items() if count}


def _count_vertical_shard(bounds: tuple[int, int]) -> dict:
    """One candidate shard of a vertical pass: the whole database, a
    disjoint slice of the candidates. The join parentage is re-derived by
    slicing in the engine (guaranteed identical to the generator's
    mapping), so the parents dict never rides the wire."""
    from repro.core.counting import count_candidates

    (candidates,) = _STATE["vertical"]
    counts = count_candidates(
        _SEQUENCES,
        candidates[bounds[0] : bounds[1]],
        strategy="vertical",
    )
    return {candidate: count for candidate, count in counts.items() if count}


def parallel_count_candidates(
    sequences: "CountableSequences",
    candidates: "Collection[IdSequence]",
    *,
    workers: int = 0,
    chunk_size: int | None = None,
    strategy: "CountingStrategy" = "hashtree",
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
    branch_factor: int = DEFAULT_BRANCH_FACTOR,
    parents: "CandidateParents | None" = None,
) -> dict:
    """Sharded-parallel equivalent of :func:`repro.core.counting.count_candidates`.

    Returns a count for every candidate (zeros included) in the same
    insertion order as the serial engine. The scanning strategies shard
    customers; ``"vertical"`` shards candidates (see module docstring).
    ``parents`` — the join parentage from ``apriori_generate(...,
    with_parents=True)`` — is used only on the serial fallback path;
    sharded workers re-derive it by slicing instead of pickling it.
    """
    from repro.core.counting import count_candidates
    from repro.core.vertical import VerticalDatabase, ensure_vertical
    from repro.db.partitioned import PartitionedSequences

    workers = resolve_workers(workers)
    base = {candidate: 0 for candidate in candidates}
    if isinstance(sequences, PartitionedSequences):
        num_items = sequences.num_partitions
        if (
            not base
            or not len(sequences)
            or workers == 1
            or len(shard_bounds(num_items, workers, chunk_size)) == 1
        ):
            return count_candidates(
                sequences,
                base,
                strategy=strategy,
                leaf_capacity=leaf_capacity,
                branch_factor=branch_factor,
                parents=parents,
            )
        state = (list(base), strategy, leaf_capacity, branch_factor)
        per_shard = _run_sharded(
            sequences, workers, chunk_size, "partitioned", state,
            _count_partitioned_shard, num_items=num_items,
        )
        return merge_counts(per_shard, base=base)
    if strategy == "vertical":
        # Invert once, in the parent; workers inherit (fork) or receive
        # (spawn) the inverted database whole, never a customer slice.
        if base and len(sequences):
            sequences = ensure_vertical(sequences)
        num_items = len(base)
    else:
        if isinstance(sequences, VerticalDatabase):
            sequences = sequences.compiled
        num_items = len(sequences)
    if (
        not base
        or not len(sequences)
        or workers == 1
        or len(shard_bounds(num_items, workers, chunk_size)) == 1
    ):
        return count_candidates(
            sequences,
            base,
            strategy=strategy,
            leaf_capacity=leaf_capacity,
            branch_factor=branch_factor,
            parents=parents,
        )
    if strategy == "vertical":
        state = (list(base),)
        per_shard = _run_sharded(
            sequences, workers, chunk_size, "vertical", state,
            _count_vertical_shard, num_items=num_items,
        )
    else:
        state = (list(base), strategy, leaf_capacity, branch_factor)
        per_shard = _run_sharded(
            sequences, workers, chunk_size, "count", state, _count_shard
        )
    return merge_counts(per_shard, base=base)


# --- Length-2 fast path -------------------------------------------------


def _count_length2_shard(bounds: tuple[int, int]) -> dict:
    from repro.core.counting import count_length2

    return count_length2(_SEQUENCES[bounds[0] : bounds[1]])


def _count_length2_partitioned_shard(bounds: tuple[int, int]) -> dict:
    from repro.core.counting import count_length2

    (strategy,) = _STATE["length2_partitioned"]
    return merge_counts(
        count_length2(_SEQUENCES.load_prepared(index, strategy))
        for index in range(bounds[0], bounds[1])
    )


def parallel_count_length2(
    sequences: "CountableSequences", *, workers: int = 0,
    chunk_size: int | None = None
) -> dict:
    """Sharded-parallel equivalent of :func:`repro.core.counting.count_length2`.

    Like the serial fast path, returns counts for *occurring* pairs only.
    """
    from repro.core.counting import count_length2
    from repro.db.partitioned import PartitionedSequences

    workers = resolve_workers(workers)
    if isinstance(sequences, PartitionedSequences):
        # Shard by partition; each worker opens its own partition files.
        strategy = sequences.length2_form
        if (
            not len(sequences)
            or workers == 1
            or len(shard_bounds(sequences.num_partitions, workers, chunk_size)) == 1
        ):
            return count_length2(sequences)
        per_shard = _run_sharded(
            sequences, workers, chunk_size, "length2_partitioned", (strategy,),
            _count_length2_partitioned_shard, num_items=sequences.num_partitions,
        )
        return merge_counts(per_shard)
    if (
        not sequences
        or workers == 1
        or len(shard_bounds(len(sequences), workers, chunk_size)) == 1
    ):
        return count_length2(sequences)
    per_shard = _run_sharded(
        sequences, workers, chunk_size, "length2", (), _count_length2_shard
    )
    return merge_counts(per_shard)


# --- PrefixSpan seed-sharded pattern growth -----------------------------


def _prefixspan_shard(bounds: tuple[int, int]) -> dict:
    """One seed shard of a pattern-growth run: the whole (projected or
    partition-described) database, a disjoint range of the frequent
    length-1 seed items. Every pattern is grown from exactly one seed —
    the smallest item of its first event — so shard results never
    overlap and the merge is plain union."""
    from repro.core.prefixspan import grow_seed_range

    seeds, frequent_items, threshold, max_pattern_length = _STATE["prefixspan"]
    return grow_seed_range(
        _SEQUENCES,
        seeds[bounds[0] : bounds[1]],
        frequent_items,
        threshold,
        max_pattern_length,
    )


def parallel_prefixspan(
    db: "SequenceDatabaseLike",
    seed_items: PySequence[int],
    frequent_items: frozenset[int],
    threshold: int,
    max_pattern_length: int | None,
    *,
    workers: int = 0,
    chunk_size: int | None = None,
) -> "dict[EventsTuple, int]":
    """Sharded-parallel pattern growth: seed items across a process pool.

    Each worker grows the complete frequent subtree of its seed range
    with :func:`repro.core.prefixspan.grow_seed_range`. An in-memory
    database is projected to the frequent items once, in the parent
    (workers inherit the projection copy-on-write under ``fork``); a
    partitioned database ships as its path-holding description and every
    worker streams its own partitions from disk, so the out-of-core
    memory contract is unchanged. ``chunk_size`` means seeds per shard;
    ``workers == 1`` (or a single shard) grows in-process. The merged
    union equals the serial engine's output exactly for every setting,
    and shards ride :func:`_run_sharded`'s retry/degrade fault tolerance.
    """
    from repro.core.prefixspan import grow_seed_range, project_events
    from repro.core.protocols import PartitionedRecordStream

    workers = resolve_workers(workers)
    seeds = list(seed_items)
    data: Any
    if isinstance(db, PartitionedRecordStream):
        data = db
    else:
        data = []
        for customer in db:
            events = project_events(customer.events, frequent_items)
            if events:
                data.append(events)
    if (
        not seeds
        or workers == 1
        or len(shard_bounds(len(seeds), workers, chunk_size)) == 1
    ):
        return grow_seed_range(
            data, seeds, frequent_items, threshold, max_pattern_length
        )
    state = (seeds, frequent_items, threshold, max_pattern_length)
    per_shard = _run_sharded(
        data, workers, chunk_size, "prefixspan", state, _prefixspan_shard,
        num_items=len(seeds),
    )
    merged: "dict[EventsTuple, int]" = {}
    for counts in per_shard:
        merged.update(counts)
    return merged


# --- Time-constrained containment counting ------------------------------


def _count_timed_shard(bounds: tuple[int, int]) -> dict:
    from repro.extensions.timeconstraints import contains_timed

    candidates, constraints = _STATE["timed"]
    counts: dict = {}
    for events in _SEQUENCES[bounds[0] : bounds[1]]:
        for candidate in candidates:
            if contains_timed(events, candidate, constraints):
                counts[candidate] = counts.get(candidate, 0) + 1
    return counts


def parallel_count_timed(
    sequences: PySequence,
    candidates: Collection,
    constraints: "TimeConstraints",
    *,
    workers: int = 0,
    chunk_size: int | None = None,
) -> dict:
    """Count constraint-aware support of every candidate over customer shards.

    Parallel version of the candidate-containment loop of
    :func:`repro.extensions.timeconstraints.mine_time_constrained`;
    ``workers == 1`` runs the loop in-process without touching the
    pool machinery.
    """
    from repro.extensions.timeconstraints import contains_timed

    workers = resolve_workers(workers)
    base = {candidate: 0 for candidate in candidates}
    if not base or not sequences:
        return base
    if workers == 1 or len(shard_bounds(len(sequences), workers, chunk_size)) == 1:
        counts = dict(base)
        for events in sequences:
            for candidate in counts:
                if contains_timed(events, candidate, constraints):
                    counts[candidate] += 1
        return counts
    per_shard = _run_sharded(
        sequences, workers, chunk_size, "timed", (list(base), constraints),
        _count_timed_shard,
    )
    return merge_counts(per_shard, base=base)
