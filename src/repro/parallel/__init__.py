"""Sharded parallel support counting.

The dominant cost of the sequence phase is the counting pass: one scan of
the transformed database per candidate length. Customer support is
*additive across disjoint customer partitions* — a customer contributes at
most 1 to each candidate, and each customer lives in exactly one shard —
so a counting pass parallelizes embarrassingly: partition the customers
into shards, count every shard independently, and sum the per-shard count
dicts. This package provides that machinery:

* :mod:`repro.parallel.sharding` — pure partition/merge helpers (no
  processes involved), property-tested on their own.
* :mod:`repro.parallel.executor` — a ``multiprocessing`` pool that runs
  one counting function per shard, building per-worker state (hash tree,
  candidate list) once per worker instead of once per shard.

Callers normally do not import this package directly: passing
``workers > 1`` through :class:`repro.core.phase.CountingOptions` (or the
CLI's ``--workers``) routes every counting pass of every algorithm —
AprioriAll, AprioriSome, DynamicSome, and the time-constrained miner —
through the shard executor. Parallel counts are bit-identical to serial
counts; the equivalence is enforced by tests.

Sharding composes with every counting strategy: under ``"bitset"`` the
parent compiles the database once (see :mod:`repro.core.bitset`) and the
shards handed to workers are *slices of the compiled form* — inherited
copy-on-write under ``fork``, pickled once per worker under ``spawn`` —
so parallelism never causes recompilation.
"""

from repro.parallel.executor import (
    parallel_count_candidates,
    parallel_count_length2,
    parallel_count_timed,
    resolve_workers,
)
from repro.parallel.sharding import merge_counts, partition, shard_bounds

__all__ = [
    "merge_counts",
    "parallel_count_candidates",
    "parallel_count_length2",
    "parallel_count_timed",
    "partition",
    "resolve_workers",
    "shard_bounds",
]
