"""Comparison of mining results.

Used by the experiment harness to check that different algorithms (or the
same algorithm under different knobs) return identical answers, and to
quantify disagreement when they deliberately should not (e.g. capped
pattern length vs. uncapped).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.miner import MiningResult, Pattern
from repro.core.sequence import Sequence


@dataclass(frozen=True, slots=True)
class ResultDiff:
    """Set-level comparison of two pattern collections."""

    num_left: int
    num_right: int
    common: tuple[Sequence, ...]
    only_left: tuple[Sequence, ...]
    only_right: tuple[Sequence, ...]
    support_mismatches: tuple[tuple[Sequence, int, int], ...]

    @property
    def identical(self) -> bool:
        return (
            not self.only_left
            and not self.only_right
            and not self.support_mismatches
        )

    @property
    def jaccard(self) -> float:
        union = len(self.common) + len(self.only_left) + len(self.only_right)
        if union == 0:
            return 1.0
        return len(self.common) / union

    def completeness_of_right(self) -> float:
        """Fraction of left's patterns that right found (recall of right)."""
        if self.num_left == 0:
            return 1.0
        return len(self.common) / self.num_left

    def describe(self) -> str:
        if self.identical:
            return f"identical ({self.num_left} patterns)"
        parts = [
            f"{len(self.common)} common",
            f"{len(self.only_left)} only-left",
            f"{len(self.only_right)} only-right",
        ]
        if self.support_mismatches:
            parts.append(f"{len(self.support_mismatches)} support mismatches")
        return ", ".join(parts)


def _as_support_map(
    patterns: Iterable[Pattern] | MiningResult,
) -> dict[Sequence, int]:
    if isinstance(patterns, MiningResult):
        patterns = patterns.patterns
    return {p.sequence: p.count for p in patterns}


def compare_results(
    left: Iterable[Pattern] | MiningResult,
    right: Iterable[Pattern] | MiningResult,
) -> ResultDiff:
    """Compare two pattern collections by sequence identity and support."""
    left_map = _as_support_map(left)
    right_map = _as_support_map(right)
    common = sorted(
        (s for s in left_map if s in right_map), key=Sequence.sort_key
    )
    mismatches = tuple(
        (s, left_map[s], right_map[s]) for s in common if left_map[s] != right_map[s]
    )
    return ResultDiff(
        num_left=len(left_map),
        num_right=len(right_map),
        common=tuple(common),
        only_left=tuple(
            sorted((s for s in left_map if s not in right_map), key=Sequence.sort_key)
        ),
        only_right=tuple(
            sorted((s for s in right_map if s not in left_map), key=Sequence.sort_key)
        ),
        support_mismatches=mismatches,
    )


def pattern_length_histogram(
    patterns: Iterable[Pattern] | MiningResult,
) -> dict[int, int]:
    """Count of maximal patterns per length — a common summary in follow-up
    papers and a quick sanity check on mined output."""
    if isinstance(patterns, MiningResult):
        patterns = patterns.patterns
    histogram: dict[int, int] = {}
    for pattern in patterns:
        histogram[pattern.sequence.length] = (
            histogram.get(pattern.sequence.length, 0) + 1
        )
    return dict(sorted(histogram.items()))
