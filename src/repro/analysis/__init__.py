"""Result comparison and report formatting for the experiment harness."""
