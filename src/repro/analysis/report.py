"""Plain-text rendering of experiment output.

The paper reports its evaluation as figures (execution time vs. minimum
support, relative time vs. scale) and tables. In a terminal-only
reproduction those become aligned text tables and ASCII charts; every
bench prints through these helpers so EXPERIMENTS.md rows can be pasted
verbatim.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence as PySequence


def format_table(
    headers: PySequence[str],
    rows: Iterable[PySequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Align columns; numbers right-aligned, text left-aligned."""
    materialized = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        rendered = []
        for index, value in enumerate(row):
            if _is_number(value):
                rendered.append(value.rjust(widths[index]))
            else:
                rendered.append(value.ljust(widths[index]))
        lines.append("  ".join(rendered))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _is_number(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


def format_series_chart(
    series: Mapping[str, PySequence[tuple[float, float]]],
    *,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    width: int = 60,
    height: int = 16,
) -> str:
    """A minimal ASCII scatter/line chart for runtime-vs-knob figures.

    Each named series gets a marker character; points are plotted on a
    linear grid. Good enough to eyeball the crossovers the paper's figures
    show, without any plotting dependency.
    """
    markers = "*o+x#@%&"
    points = [
        (x, y) for values in series.values() for x, y in values
    ]
    lines = []
    if title:
        lines.append(title)
    if not points:
        lines.append("(no data)")
        return "\n".join(lines)
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in values:
            col = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            grid[row][col] = marker
    for row_index, row in enumerate(grid):
        prefix = f"{y_max:10.2f} |" if row_index == 0 else (
            f"{y_min:10.2f} |" if row_index == height - 1 else " " * 11 + "|"
        )
        lines.append(prefix + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(
        " " * 12 + f"{x_min:g}".ljust(width - 8) + f"{x_max:g} ({x_label})"
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"  [{y_label}]  {legend}")
    return "\n".join(lines)
