"""The mining-state snapshot: what one run must remember to be updatable.

A later delta re-mine (:mod:`repro.incremental.update`) needs, for every
candidate the original run counted, its **exact** support over the
original database — large and small (the *negative border*) alike.
Support of a retained candidate over the grown database is then the old
count plus its count over the delta only; only candidates the original
run never counted require touching the old data again.

Sequences are stored in **expanded form** — tuples of itemsets, not
litemset ids — because the litemset catalog (the id alphabet) is itself
recomputed by every update: an itemset's id depends on which itemsets
are large, which the delta can change. Expanded-form supports are
catalog-independent, so a snapshot taken under one alphabet seeds a
re-mine under another.

A snapshot is algorithm-agnostic on both ends: AprioriAll, AprioriSome
and DynamicSome runs all produce one (they record every counting pass's
counts in :class:`~repro.core.phase.SequencePhaseResult`), and the
update consumes it purely as a count cache — a candidate missing from
the cache is simply recounted, so the skip-ahead algorithms' sparser
borders cost extra work, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.core.sequence import Itemset
from repro.db.database import support_threshold

if TYPE_CHECKING:
    from repro.core.phase import SequencePhaseResult
    from repro.itemsets.apriori import LitemsetResult
    from repro.itemsets.litemsets import LitemsetCatalog

#: A sequence over the item alphabet: one canonical (ascending) itemset
#: tuple per event. The catalog-independent key of the count cache.
ExpandedSequence = tuple[Itemset, ...]

STATE_FORMAT = "seqmine-mining-state"
STATE_VERSION = 1


@dataclass(slots=True)
class MiningState:
    """Snapshot of one mining run over one database generation.

    ``item_counts`` holds the exact customer support of **every** item
    seen in the database (the litemset phase counts all of them);
    ``itemset_counts`` of every counted candidate itemset of length ≥ 2;
    ``sequence_counts`` of every counted candidate sequence of length
    ≥ 2, in expanded form. Presence of a key means the count is exact
    for the snapshot's database; absence means the run never counted it.
    ``length2_complete`` additionally promises that every *occurring*
    length-2 sequence over the run's litemset alphabet is present, so an
    absent pair over that alphabet has support exactly 0.
    """

    minsup: float
    algorithm: str
    strategy: str
    num_customers: int
    generation: int
    length2_complete: bool
    item_counts: dict[int, int] = field(default_factory=dict)
    itemset_counts: dict[Itemset, int] = field(default_factory=dict)
    sequence_counts: dict[ExpandedSequence, int] = field(default_factory=dict)
    max_pattern_length: int | None = None
    max_litemset_size: int | None = None

    @property
    def threshold(self) -> int:
        """The snapshot run's integer support threshold."""
        return support_threshold(self.minsup, self.num_customers)

    def large_itemsets(self) -> dict[Itemset, int]:
        """The snapshot's litemset catalog content (all lengths), i.e.
        every counted itemset that met the snapshot's threshold."""
        threshold = self.threshold
        large = {
            (item,): count
            for item, count in self.item_counts.items()
            if count >= threshold
        }
        large.update(
            (itemset, count)
            for itemset, count in self.itemset_counts.items()
            if count >= threshold
        )
        return large

    def num_border_itemsets(self) -> int:
        threshold = self.threshold
        small_items = sum(
            1 for count in self.item_counts.values() if count < threshold
        )
        return small_items + sum(
            1 for count in self.itemset_counts.values() if count < threshold
        )

    def num_border_sequences(self) -> int:
        threshold = self.threshold
        return sum(
            1 for count in self.sequence_counts.values() if count < threshold
        )


def build_mining_state(
    *,
    minsup: float,
    algorithm: str,
    strategy: str,
    num_customers: int,
    generation: int,
    litemset_result: "LitemsetResult",
    catalog: "LitemsetCatalog",
    phase_result: "SequencePhaseResult",
    max_pattern_length: int | None = None,
    max_litemset_size: int | None = None,
) -> MiningState:
    """Assemble a snapshot from the artifacts of one mining run.

    The sequence-phase counts arrive over the run's litemset-id alphabet
    and are expanded through ``catalog`` here, making the stored state
    independent of the id assignment.
    """
    sequence_counts: dict[ExpandedSequence, int] = {}
    for length, counts in phase_result.counted_by_length.items():
        if length < 2:
            continue  # length 1 is derivable from the itemset supports
        for id_sequence, count in counts.items():
            expanded = tuple(
                catalog.itemset_of(lid) for lid in id_sequence
            )
            sequence_counts[expanded] = count
    return MiningState(
        minsup=minsup,
        algorithm=algorithm,
        strategy=strategy,
        num_customers=num_customers,
        generation=generation,
        length2_complete=phase_result.length2_complete,
        item_counts=dict(litemset_result.item_counts),
        itemset_counts=dict(litemset_result.counted_supports),
        sequence_counts=sequence_counts,
        max_pattern_length=max_pattern_length,
        max_litemset_size=max_litemset_size,
    )
