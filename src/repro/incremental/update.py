"""The delta re-mine: update mined patterns after ``append_delta``.

Given a :class:`~repro.db.partitioned.PartitionedDatabase` that has
grown past a :class:`~repro.incremental.state.MiningState` snapshot,
:func:`update_mining` produces exactly what a full re-mine of the grown
database would — the identical maximal pattern set with identical
supports — while touching the pre-existing data as little as possible:

1. **Delta isolation.** :meth:`~repro.db.partitioned.PartitionedDatabase.
   delta_since` yields the appended generations as *additions* (new
   customers, plus overlaid customers' merged sequences) and *removals*
   (overlaid customers' pre-delta sequences). Customer support is
   additive across disjoint customer sets — the invariant the
   partitioned counting layer already relies on — so for any candidate
   the snapshot counted::

       new_count = old_count + count(additions) − count(removals)

2. **Frontier replay.** Both Apriori loops (litemset and sequence
   phase) re-run level-wise, but each candidate whose exact old count
   is in the snapshot — the large sets *and* the negative border — is
   counted against the delta only. Border candidates whose updated
   count crosses the (new) threshold are promoted and grow candidates
   at the next level exactly as in a fresh run.

3. **Full-scan fallback.** A candidate the snapshot never counted
   (generated from a promoted or brand-new parent) has no old count;
   all such candidates of one level are counted in a single streaming
   scan of the merged database. This is the only path that reads old
   data, and it vanishes when the frontier is stable.

4. **Maximal phase.** Re-run from scratch over the updated large sets
   (it is cheap and purely in-memory).

Correctness does not depend on the snapshot's completeness: the
snapshot is a count *cache*, and every cache miss is recounted. That is
what makes the update algorithm-agnostic — AprioriSome/DynamicSome
snapshots have sparser borders (skipped or containment-pruned lengths
were never counted) and simply cause more fallback work.

Delta counting runs through the ordinary counting engines, so every
strategy (hashtree, naive, bitset, vertical) and worker count works
unchanged; the counts are identical for all of them. The full-scan
fallback is the one exception: it must re-transform each customer
through the *new* catalog on the fly, so it always streams serially
with a hash tree regardless of ``counting.strategy``/``workers`` —
acceptable because it is the rare path (zero passes when the frontier
is stable), and the strategy/worker knobs still govern every cached
delta pass around it.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence as PySequence

from repro.core.candidates import apriori_generate
from repro.core.counting import (
    CountableSequences,
    count_candidates,
    count_length2,
    filter_large,
)
from repro.core.hashtree import SequenceHashTree
from repro.core.maximal import maximal_sequences, sequence_of_events
from repro.miner import MiningParams, MiningResult, Pattern
from repro.core.phase import CountingOptions, SequencePhaseResult
from repro.core.sequence import IdSequence, OccurrenceIndex
from repro.core.stats import AlgorithmStats, PhaseTimings
from repro.db.database import CustomerSequence, support_threshold
from repro.db.partitioned import PartitionedDatabase
from repro.incremental.state import MiningState, build_mining_state
from repro.itemsets.apriori import (
    LitemsetPassStats,
    LitemsetResult,
    count_itemset_supports,
    generate_candidate_itemsets,
)
from repro.itemsets.litemsets import LitemsetCatalog


@dataclass(slots=True)
class UpdateStats:
    """How much work the delta re-mine did, and of which kind."""

    new_customers: int = 0
    overlaid_customers: int = 0
    cached_itemset_candidates: int = 0
    new_itemset_candidates: int = 0
    cached_sequence_candidates: int = 0
    new_sequence_candidates: int = 0
    full_scan_passes: int = 0
    promoted_from_border: int = 0
    demoted_from_large: int = 0

    def summary(self) -> str:
        return (
            f"delta: {self.new_customers} new + {self.overlaid_customers} "
            f"overlaid customers; candidates from cache: "
            f"{self.cached_itemset_candidates} itemsets + "
            f"{self.cached_sequence_candidates} sequences; recounted in "
            f"{self.full_scan_passes} full scans: "
            f"{self.new_itemset_candidates} itemsets + "
            f"{self.new_sequence_candidates} sequences; "
            f"{self.promoted_from_border} promoted, "
            f"{self.demoted_from_large} demoted"
        )


@dataclass(slots=True)
class UpdateOutcome:
    """Everything one ``update`` run produces."""

    result: MiningResult
    state: MiningState
    update_stats: UpdateStats = field(default_factory=UpdateStats)


def update_mining(
    db: PartitionedDatabase,
    state: MiningState,
    *,
    counting: CountingOptions = CountingOptions(),
) -> UpdateOutcome:
    """Re-mine ``db`` incrementally from ``state`` (see module docstring).

    ``state`` must describe an earlier generation of exactly this
    database (``ValueError`` otherwise). ``counting`` configures the
    delta counting passes — strategy and workers — independently of
    what the snapshot run used. Returns the updated
    :class:`~repro.miner.MiningResult` (identical patterns and
    supports to a full re-mine), the successor snapshot covering the
    grown database, and work statistics.
    """
    if state.generation > db.generation:
        raise ValueError(
            f"mining state is at generation {state.generation} but the "
            f"database is at {db.generation}: the snapshot does not "
            f"belong to this database"
        )
    expected = db.num_customers_at(state.generation)
    if state.num_customers != expected:
        raise ValueError(
            f"mining state covers {state.num_customers} customers but the "
            f"database held {expected} at generation {state.generation}: "
            f"the snapshot does not belong to this database"
        )
    threshold = support_threshold(state.minsup, db.num_customers)
    stats = UpdateStats()

    view = db.delta_since(state.generation)
    touched = view.touched_customers()
    additions: list[CustomerSequence] = list(view.new_customers())
    stats.new_customers = len(additions)
    stats.overlaid_customers = len(touched)
    additions.extend(after for _before, after in touched)
    removals = [before for before, _after in touched]

    # ---- Litemset phase: border-seeded customer-support Apriori. ----
    started = time.perf_counter()
    litemset_result = _update_litemsets(
        db, state, additions, removals, threshold, stats
    )
    litemset_seconds = time.perf_counter() - started

    # ---- Transformation phase, delta only. ----
    started = time.perf_counter()
    catalog = LitemsetCatalog.from_result(litemset_result)
    pos_sequences = _transform_customers(additions, catalog)
    neg_sequences = _transform_customers(removals, catalog)
    pos_prepared = counting.prepare_sequences(pos_sequences)
    neg_prepared = counting.prepare_sequences(neg_sequences)
    transform_seconds = time.perf_counter() - started

    # ---- Sequence phase: frontier replay over the new id alphabet. ----
    started = time.perf_counter()
    phase = SequencePhaseResult(
        stats=AlgorithmStats("incremental"), collect_counts=True
    )
    l1 = catalog.one_sequence_supports()
    if l1:
        phase.large_by_length[1] = l1
    phase.stats.record_generated(1, len(l1))
    phase.stats.record_pass(
        length=1, phase="litemset", num_candidates=len(l1),
        num_large=len(l1), elapsed_seconds=0.0,
    )

    old_threshold = state.threshold
    old_catalog = set(state.large_itemsets())
    old_ids = frozenset(
        lid for lid in catalog.ids if catalog.itemset_of(lid) in old_catalog
    )

    def expand(candidate: IdSequence) -> tuple:
        return tuple(catalog.itemset_of(lid) for lid in candidate)

    k = 2
    while phase.large_by_length.get(k - 1):
        if state.max_pattern_length is not None and k > state.max_pattern_length:
            break
        pass_started = time.perf_counter()
        if k == 2:
            counts, num_cached, num_new = _update_length2(
                db, state, catalog, old_ids,
                pos_prepared if pos_sequences else None,
                neg_prepared if neg_sequences else None,
                counting, stats,
            )
            phase.length2_complete = True
            num_generated = len(catalog.ids) * len(catalog.ids)
        else:
            candidates, parents = apriori_generate(
                phase.large_by_length[k - 1].keys(), with_parents=True
            )
            num_generated = len(candidates)
            if not candidates:
                phase.stats.record_generated(k, 0)
                break
            cached: dict[IdSequence, int] = {}
            new: list[IdSequence] = []
            for candidate in candidates:
                old = state.sequence_counts.get(expand(candidate))
                if old is None:
                    new.append(candidate)
                else:
                    cached[candidate] = old
            counts = {}
            if cached:
                pos_counts = (
                    count_candidates(
                        pos_prepared, cached, parents=parents,
                        **counting.kwargs(),
                    )
                    if pos_sequences else {}
                )
                neg_counts = (
                    count_candidates(
                        neg_prepared, cached, parents=parents,
                        **counting.kwargs(),
                    )
                    if neg_sequences else {}
                )
                for candidate, old in cached.items():
                    counts[candidate] = (
                        old
                        + pos_counts.get(candidate, 0)
                        - neg_counts.get(candidate, 0)
                    )
            if new:
                counts.update(_count_full_scan(db, catalog, new, counting))
                stats.full_scan_passes += 1
            num_cached, num_new = len(cached), len(new)
            for candidate, old in cached.items():
                _note_flips(stats, old, counts[candidate],
                            old_threshold, threshold)
        stats.cached_sequence_candidates += num_cached
        stats.new_sequence_candidates += num_new
        phase.stats.record_generated(k, num_generated)
        phase.record_counts(k, counts)
        large = filter_large(counts, threshold)
        counting.note_large(pos_prepared, large)
        counting.note_large(neg_prepared, large)
        phase.stats.record_pass(
            length=k, phase="incremental",
            num_candidates=len(counts), num_large=len(large),
            elapsed_seconds=time.perf_counter() - pass_started,
        )
        if not large:
            break
        phase.large_by_length[k] = large
        k += 1
    sequence_seconds = time.perf_counter() - started

    # ---- Maximal phase: from scratch, exactly as in a full mine. ----
    started = time.perf_counter()
    expanded = {
        catalog.expand_events(id_sequence): count
        for id_sequence, count in phase.all_large().items()
    }
    maximal = maximal_sequences(expanded)
    patterns = sorted(
        (
            Pattern(
                sequence=sequence_of_events(events),
                count=count,
                support=count / db.num_customers if db.num_customers else 0.0,
            )
            for events, count in maximal.items()
        ),
        key=lambda p: p.sequence.sort_key(),
    )
    maximal_seconds = time.perf_counter() - started

    params = MiningParams(
        minsup=state.minsup,
        algorithm=state.algorithm,
        counting=counting,
        max_pattern_length=state.max_pattern_length,
        max_litemset_size=state.max_litemset_size,
    )
    result = MiningResult(
        patterns=patterns,
        num_customers=db.num_customers,
        threshold=threshold,
        params=params,
        timings=PhaseTimings(
            sort_seconds=0.0,
            litemset_seconds=litemset_seconds,
            transform_seconds=transform_seconds,
            sequence_seconds=sequence_seconds,
            maximal_seconds=maximal_seconds,
        ),
        algorithm_stats=phase.stats,
        litemset_result=litemset_result,
        large_counts_by_length={
            length: len(large)
            for length, large in sorted(phase.large_by_length.items())
        },
    )
    new_state = build_mining_state(
        minsup=state.minsup,
        algorithm=state.algorithm,
        strategy=counting.strategy,
        num_customers=db.num_customers,
        generation=db.generation,
        litemset_result=litemset_result,
        catalog=catalog,
        phase_result=phase,
        max_pattern_length=state.max_pattern_length,
        max_litemset_size=state.max_litemset_size,
    )
    result.state = new_state
    return UpdateOutcome(result=result, state=new_state, update_stats=stats)


def _note_flips(
    stats: UpdateStats, old: int, new: int,
    old_threshold: int, threshold: int,
) -> None:
    """Record a cached candidate crossing its threshold in either
    direction (each generation has its own threshold: appending
    customers raises the integer cutoff for an unchanged minsup)."""
    if old < old_threshold and new >= threshold:
        stats.promoted_from_border += 1
    elif old >= old_threshold and new < threshold:
        stats.demoted_from_large += 1


def _transform_customers(
    customers: Iterable[CustomerSequence], catalog: LitemsetCatalog
) -> list[tuple[frozenset[int], ...]]:
    """The transformation phase over an in-memory customer list (the
    delta is held in memory by design — it is the small side)."""
    transformed = []
    for customer in customers:
        events = []
        for event in customer.events:
            ids = catalog.contained_ids(event)
            if ids:
                events.append(ids)
        if events:
            transformed.append(tuple(events))
    return transformed


def _update_litemsets(
    db: PartitionedDatabase,
    state: MiningState,
    additions: PySequence[CustomerSequence],
    removals: PySequence[CustomerSequence],
    threshold: int,
    stats: UpdateStats,
) -> LitemsetResult:
    """The litemset phase seeded from the snapshot's itemset border.

    Item counts (level 1) never need old data: the snapshot holds every
    base item's exact count, and an item absent from it has base support
    0. Higher levels consume the snapshot's counted candidates the same
    way the sequence phase does, falling back to one streaming scan of
    the merged database per level that generated uncached candidates.
    """
    item_counts = dict(state.item_counts)
    for sign, customers in ((1, additions), (-1, removals)):
        for customer in customers:
            seen: set[int] = set()
            for event in customer.events:
                seen.update(event)
            for item in seen:
                item_counts[item] = item_counts.get(item, 0) + sign
    old_threshold = state.threshold
    for item, count in item_counts.items():
        _note_flips(stats, state.item_counts.get(item, 0), count,
                    old_threshold, threshold)
    supports: dict[tuple[int, ...], int] = {}
    counted: dict[tuple[int, ...], int] = {}
    current_large = sorted(
        (item,) for item, count in item_counts.items() if count >= threshold
    )
    passes = [
        LitemsetPassStats(
            length=1, num_candidates=len(item_counts),
            num_large=len(current_large),
        )
    ]
    for itemset in current_large:
        supports[itemset] = item_counts[itemset[0]]

    length = 2
    while current_large and (
        state.max_litemset_size is None or length <= state.max_litemset_size
    ):
        candidates = generate_candidate_itemsets(current_large)
        if not candidates:
            break
        cached = [c for c in candidates if c in state.itemset_counts]
        new = [c for c in candidates if c not in state.itemset_counts]
        counts: dict[tuple[int, ...], int] = {}
        if cached:
            pos = (
                count_itemset_supports(additions, cached)
                if additions else Counter()
            )
            neg = (
                count_itemset_supports(removals, cached)
                if removals else Counter()
            )
            for candidate in cached:
                old = state.itemset_counts[candidate]
                counts[candidate] = old + pos[candidate] - neg[candidate]
                _note_flips(stats, old, counts[candidate],
                            old_threshold, threshold)
        if new:
            full = count_itemset_supports(db, new)
            for candidate in new:
                counts[candidate] = full[candidate]
            stats.full_scan_passes += 1
        stats.cached_itemset_candidates += len(cached)
        stats.new_itemset_candidates += len(new)
        counted.update(counts)
        current_large = sorted(
            c for c in candidates if counts[c] >= threshold
        )
        passes.append(
            LitemsetPassStats(
                length=length, num_candidates=len(candidates),
                num_large=len(current_large),
            )
        )
        for itemset in current_large:
            supports[itemset] = counts[itemset]
        length += 1
    return LitemsetResult(
        supports=supports,
        passes=tuple(passes),
        item_counts=item_counts,
        counted_supports=counted,
    )


def _update_length2(
    db: PartitionedDatabase,
    state: MiningState,
    catalog: LitemsetCatalog,
    old_ids: frozenset[int],
    pos_prepared: CountableSequences | None,
    neg_prepared: CountableSequences | None,
    counting: CountingOptions,
    stats: UpdateStats,
) -> tuple[dict[IdSequence, int], int, int]:
    """The length-2 pass of the frontier replay.

    C₂ is all |L₁|² ordered pairs, never materialized: when the
    snapshot's length-2 border is *complete* (every occurring pair over
    its alphabet is present), a pair of old-alphabet ids that is absent
    has base support exactly 0, so all old-alphabet pairs are served by
    cache + delta arithmetic and only pairs involving an id **new to
    the catalog** are full-scanned. Returns ``(counts, num_cached,
    num_full_scanned)``.
    """
    pos2 = (
        count_length2(pos_prepared, **counting.sharding_kwargs())
        if pos_prepared is not None else {}
    )
    neg2 = (
        count_length2(neg_prepared, **counting.sharding_kwargs())
        if neg_prepared is not None else {}
    )
    encode = {catalog.itemset_of(lid): lid for lid in catalog.ids}
    cached2: dict[IdSequence, int] = {}
    for sequence, old in state.sequence_counts.items():
        if len(sequence) != 2:
            continue
        first = encode.get(sequence[0])
        second = encode.get(sequence[1])
        if first is not None and second is not None:
            cached2[(first, second)] = old
    counts: dict[IdSequence, int] = {}
    old_threshold = state.threshold
    threshold = support_threshold(state.minsup, db.num_customers)
    if state.length2_complete:
        for pair in set(cached2) | set(pos2) | set(neg2):
            if pair[0] in old_ids and pair[1] in old_ids:
                old = cached2.get(pair, 0)
                counts[pair] = old + pos2.get(pair, 0) - neg2.get(pair, 0)
                _note_flips(stats, old, counts[pair],
                            old_threshold, threshold)
        full_pairs = [
            (first, second)
            for first in catalog.ids
            for second in catalog.ids
            if first not in old_ids or second not in old_ids
        ]
    else:
        # Snapshot without a complete length-2 border (e.g. a run capped
        # at max_pattern_length=1): only explicitly cached pairs can use
        # delta arithmetic; everything else is recounted.
        for pair, old in cached2.items():
            counts[pair] = old + pos2.get(pair, 0) - neg2.get(pair, 0)
            _note_flips(stats, old, counts[pair], old_threshold, threshold)
        full_pairs = [
            (first, second)
            for first in catalog.ids
            for second in catalog.ids
            if (first, second) not in cached2
        ]
    num_cached = len(counts)
    if full_pairs:
        counts.update(_count_full_scan(db, catalog, full_pairs, counting))
        stats.full_scan_passes += 1
    return counts, num_cached, len(full_pairs)


def _count_full_scan(
    db: PartitionedDatabase,
    catalog: LitemsetCatalog,
    candidates: PySequence[IdSequence],
    counting: CountingOptions,
) -> dict[IdSequence, int]:
    """Exact supports of uncached candidates: one streaming scan of the
    merged database, transforming each customer through the new catalog
    on the fly (the old transformed partitions were built against the
    old alphabet, so they cannot serve a new-alphabet candidate).

    Always a serial hash-tree scan: the per-customer transform dominates
    and the candidate batch is small, so the run's strategy/worker knobs
    apply only to the cached delta passes, not here."""
    counts: dict[IdSequence, int] = {candidate: 0 for candidate in candidates}
    if not counts:
        return counts
    tree = SequenceHashTree(
        list(counts),
        leaf_capacity=counting.leaf_capacity,
        branch_factor=counting.branch_factor,
    )
    for customer in db.iter_unordered():
        events = []
        for event in customer.events:
            ids = catalog.contained_ids(event)
            if ids:
                events.append(ids)
        if not events:
            continue
        index = OccurrenceIndex(tuple(events))
        for candidate in tree.contained_in(index):
            counts[candidate] += 1
    return counts
