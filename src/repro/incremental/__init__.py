"""Incremental mining: keep mined results updatable as data arrives.

The paper mines a static customer database; a production system's
database grows every day. Re-running the full five-phase pipeline for
every delta wastes almost all of its work — the supports of yesterday's
candidates barely move. This subsystem makes a mining run *resumable
against new data*:

* :class:`~repro.incremental.state.MiningState` — a snapshot of one
  mining run's frontier: the per-length large sets **and the negative
  border** (every candidate that was counted but fell below the
  threshold) with exact support counts, for both the litemset and the
  sequence phase. Serialized next to the partition manifest by
  :mod:`repro.io.state`.
* :func:`~repro.incremental.update.update_mining` — the delta re-mine:
  counts every retained candidate against only the appended data
  (support is additive across disjoint customer sets, and an overlaid
  customer contributes the difference between its merged and pre-delta
  sequence), promotes border candidates that crossed the threshold,
  grows genuinely new candidates level-wise (only those fall back to
  full scans), and re-runs the maximal phase. The result is exactly the
  full re-mine's pattern set, at a fraction of the work.

The on-disk substrate is :meth:`repro.db.partitioned.PartitionedDatabase.
append_delta`; the CLI surface is ``seqmine mine --save-state``,
``seqmine append`` and ``seqmine update``.
"""

from repro.incremental.state import MiningState, build_mining_state
from repro.incremental.update import UpdateOutcome, UpdateStats, update_mining

__all__ = [
    "MiningState",
    "UpdateOutcome",
    "UpdateStats",
    "build_mining_state",
    "update_mining",
]
