"""Itemset hash tree (VLDB 1994) with subset lookup.

The litemset phase and the transformation phase both need the same
primitive: *given a transaction, find every stored itemset that is a subset
of it*. The Apriori paper's hash tree answers this without scanning every
stored itemset. Interior nodes hash on one item per tree level; leaves hold
small buckets of itemsets that are verified exactly.

Stored itemsets may have mixed lengths (the transformation phase stores all
litemsets, length 1..L, in one tree). An itemset whose length equals the
depth of an interior node cannot be hashed further and is kept in that
node's ``stored_here`` list; like leaf entries, those are verified with an
exact subset test, so hash-bucket collisions can never produce a false
positive.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence as PySequence

from repro.core.sequence import Itemset

DEFAULT_LEAF_CAPACITY = 8
DEFAULT_BRANCH_FACTOR = 32


class _Node:
    __slots__ = ("children", "bucket", "stored_here")

    def __init__(self) -> None:
        self.children: dict[int, _Node] | None = None  # None ⇒ leaf
        self.bucket: list[Itemset] = []
        self.stored_here: list[Itemset] = []

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class ItemsetHashTree:
    """Hash tree over canonical (sorted-tuple) itemsets."""

    def __init__(
        self,
        itemsets: Iterable[Itemset] = (),
        *,
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        branch_factor: int = DEFAULT_BRANCH_FACTOR,
    ) -> None:
        if leaf_capacity < 1:
            raise ValueError("leaf_capacity must be >= 1")
        if branch_factor < 2:
            raise ValueError("branch_factor must be >= 2")
        self._leaf_capacity = leaf_capacity
        self._branch_factor = branch_factor
        self._root = _Node()
        self._size = 0
        for itemset in itemsets:
            self.insert(itemset)

    def __len__(self) -> int:
        return self._size

    def _hash(self, item: int) -> int:
        return item % self._branch_factor

    def insert(self, itemset: Itemset) -> None:
        """Insert a canonical itemset (sorted tuple of ints)."""
        if not itemset:
            raise ValueError("cannot insert an empty itemset")
        node = self._root
        depth = 0
        while True:
            if node.is_leaf:
                node.bucket.append(itemset)
                self._size += 1
                if len(node.bucket) > self._leaf_capacity:
                    self._split(node, depth)
                return
            if len(itemset) == depth:
                node.stored_here.append(itemset)
                self._size += 1
                return
            child_key = self._hash(itemset[depth])
            child = node.children.get(child_key)
            if child is None:
                child = _Node()
                node.children[child_key] = child
            node = child
            depth += 1

    def _split(self, node: _Node, depth: int) -> None:
        """Convert an overflowing leaf at ``depth`` into an interior node."""
        bucket = node.bucket
        node.bucket = []
        node.children = {}
        for itemset in bucket:
            if len(itemset) == depth:
                node.stored_here.append(itemset)
                continue
            child_key = self._hash(itemset[depth])
            child = node.children.setdefault(child_key, _Node())
            child.bucket.append(itemset)
        for child in node.children.values():
            if len(child.bucket) > self._leaf_capacity:
                self._split_child_if_possible(child, depth + 1)

    def _split_child_if_possible(self, node: _Node, depth: int) -> None:
        # A bucket where every itemset has length == depth cannot be split
        # further; it simply stays an oversized leaf (rare: needs many
        # equal-length itemsets colliding along the whole hash path).
        if all(len(i) == depth for i in node.bucket):
            return
        self._split(node, depth)

    def subsets_of(self, transaction: PySequence[int] | frozenset[int]) -> set[Itemset]:
        """All stored itemsets that are subsets of ``transaction``."""
        items = tuple(sorted(transaction))
        if not items:
            return set()
        item_set = frozenset(items)
        found: set[Itemset] = set()
        self._collect(self._root, items, 0, item_set, found)
        return found

    def _collect(
        self,
        node: _Node,
        items: tuple[int, ...],
        start: int,
        item_set: frozenset[int],
        found: set[Itemset],
    ) -> None:
        if node.is_leaf:
            for candidate in node.bucket:
                if item_set.issuperset(candidate):
                    found.add(candidate)
            return
        for candidate in node.stored_here:
            if item_set.issuperset(candidate):
                found.add(candidate)
        children = node.children
        for index in range(start, len(items)):
            child = children.get(self._hash(items[index]))
            if child is not None:
                self._collect(child, items, index + 1, item_set, found)

    def __iter__(self) -> Iterator[Itemset]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.bucket
            else:
                yield from node.stored_here
                stack.extend(node.children.values())
