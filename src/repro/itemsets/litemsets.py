"""The litemset catalog: the itemset ↔ integer-id mapping (Section 3.1).

After the litemset phase, the paper maps each large itemset to an integer
so the sequence phase can "treat large itemsets as single entities" and
compare events in constant time. :class:`LitemsetCatalog` owns that
mapping, the litemset supports, and the hash tree used by the
transformation phase to answer *which litemsets does this transaction
contain?*
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.core.sequence import IdSequence, Itemset, Sequence
from repro.itemsets.apriori import LitemsetResult
from repro.itemsets.hashtree import (
    DEFAULT_BRANCH_FACTOR,
    DEFAULT_LEAF_CAPACITY,
    ItemsetHashTree,
)


class LitemsetCatalog:
    """Bidirectional litemset ↔ id mapping plus containment lookup.

    Ids are assigned 1..n in (length, lexicographic) order of the itemsets,
    making every downstream artifact (candidates, patterns, stats)
    deterministic for a given database and minsup.
    """

    def __init__(
        self,
        supports: Mapping[Itemset, int],
        *,
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        branch_factor: int = DEFAULT_BRANCH_FACTOR,
    ) -> None:
        ordered = sorted(supports, key=lambda s: (len(s), s))
        self._itemsets: tuple[Itemset, ...] = tuple(ordered)
        self._id_of: dict[Itemset, int] = {
            itemset: index + 1 for index, itemset in enumerate(ordered)
        }
        self._supports: dict[int, int] = {
            self._id_of[itemset]: supports[itemset] for itemset in ordered
        }
        self._tree = ItemsetHashTree(
            ordered, leaf_capacity=leaf_capacity, branch_factor=branch_factor
        )

    @classmethod
    def from_result(
        cls, result: LitemsetResult, **kwargs: int
    ) -> "LitemsetCatalog":
        return cls(result.supports, **kwargs)

    def __len__(self) -> int:
        return len(self._itemsets)

    def __iter__(self) -> Iterator[Itemset]:
        return iter(self._itemsets)

    def __contains__(self, itemset: Itemset) -> bool:
        return itemset in self._id_of

    @property
    def ids(self) -> range:
        """All litemset ids (1-based, contiguous)."""
        return range(1, len(self._itemsets) + 1)

    def id_of(self, itemset: Itemset) -> int:
        """The id of a litemset; KeyError if the itemset is not large."""
        return self._id_of[itemset]

    def itemset_of(self, litemset_id: int) -> Itemset:
        """The itemset behind a litemset id."""
        return self._itemsets[litemset_id - 1]

    def support_of(self, litemset_id: int) -> int:
        """Customer-support count of a litemset (= of the 1-sequence)."""
        return self._supports[litemset_id]

    def one_sequence_supports(self) -> dict[IdSequence, int]:
        """Supports of all large 1-sequences over the id alphabet."""
        return {(lid,): support for lid, support in self._supports.items()}

    def contained_ids(self, transaction: Iterable[int]) -> frozenset[int]:
        """Ids of every litemset contained in ``transaction``.

        This is the transformation-phase primitive: one hash-tree lookup
        per transaction.
        """
        found = self._tree.subsets_of(tuple(transaction))
        return frozenset(self._id_of[itemset] for itemset in found)

    def expand(self, id_sequence: IdSequence) -> Sequence:
        """Inflate an id-alphabet sequence back to an itemset Sequence."""
        return Sequence(self.itemset_of(lid) for lid in id_sequence)

    def expand_events(self, id_sequence: IdSequence) -> tuple[frozenset[int], ...]:
        """Inflate to bare frozenset events (for containment checks)."""
        return tuple(frozenset(self.itemset_of(lid)) for lid in id_sequence)
