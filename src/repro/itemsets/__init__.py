"""Litemset phase substrate: itemset hash tree, customer-support Apriori."""
