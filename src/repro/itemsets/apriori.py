"""The litemset phase (phase 2): customer-support Apriori.

Finds all *large itemsets* — itemsets contained in some transaction of at
least ``minsup`` of the *customers*. This differs from the classic
market-basket Apriori in the support denominator only: a customer who buys
``(bread, butter)`` three times still contributes 1 to its support, because
sequence support is per customer (the paper, Section 3, notes this is the
one modification needed to the VLDB 1994 algorithm).

The output feeds the transformation phase: every large itemset becomes a
single symbol (litemset id) of the sequence-phase alphabet, and — because a
1-sequence ``<(X)>`` is contained in a customer iff the itemset ``X`` is —
the litemset supports double as the supports of all large 1-sequences.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.core.passkey import pass_digest
from repro.core.protocols import CustomerRecord, PassCheckpoint, SequenceDatabaseLike
from repro.core.sequence import Itemset
from repro.itemsets.hashtree import (
    DEFAULT_BRANCH_FACTOR,
    DEFAULT_LEAF_CAPACITY,
    ItemsetHashTree,
)


@dataclass(frozen=True, slots=True)
class LitemsetPassStats:
    """Per-level counters of the litemset phase."""

    length: int
    num_candidates: int
    num_large: int


@dataclass(frozen=True, slots=True)
class LitemsetResult:
    """All large itemsets with their customer-support counts.

    ``item_counts`` and ``counted_supports`` additionally retain the
    phase's *negative border* — everything that was counted but fell
    below the threshold: the exact support of every single item seen in
    the database, and of every candidate itemset of length ≥ 2 that a
    pass counted. The incremental subsystem
    (:mod:`repro.incremental`) snapshots these so a later delta only
    has to count what the border cannot answer.
    """

    supports: Mapping[Itemset, int]
    passes: tuple[LitemsetPassStats, ...]
    item_counts: Mapping[int, int] = field(default_factory=dict)
    counted_supports: Mapping[Itemset, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.supports)

    def itemsets(self) -> list[Itemset]:
        """Litemsets in deterministic (length, lexicographic) order."""
        return sorted(self.supports, key=lambda s: (len(s), s))


def generate_candidate_itemsets(
    large_prev: Iterable[Itemset],
) -> list[Itemset]:
    """Apriori candidate generation for itemsets: join + prune.

    Joins (k−1)-itemsets sharing their first k−2 items, then prunes
    candidates with any (k−1)-subset outside ``large_prev``. For k = 2 the
    join degenerates to all unordered pairs, as in the original.
    """
    prev = sorted(set(large_prev))
    if not prev:
        return []
    k_minus_1 = len(prev[0])
    if any(len(s) != k_minus_1 for s in prev):
        raise ValueError("all itemsets must have equal length for the join")
    prev_set = set(prev)
    candidates: list[Itemset] = []
    by_prefix: dict[Itemset, list[Itemset]] = {}
    for itemset in prev:
        by_prefix.setdefault(itemset[:-1], []).append(itemset)
    for siblings in by_prefix.values():
        for i, first in enumerate(siblings):
            for second in siblings[i + 1 :]:
                # siblings are sorted, so first[-1] < second[-1]
                candidate = first + (second[-1],)
                if _all_subsets_large(candidate, prev_set):
                    candidates.append(candidate)
    candidates.sort()
    return candidates


def _all_subsets_large(candidate: Itemset, prev_set: set[Itemset]) -> bool:
    for drop in range(len(candidate)):
        subset = candidate[:drop] + candidate[drop + 1 :]
        if subset not in prev_set:
            return False
    return True


def _iter_customers(db: SequenceDatabaseLike) -> Iterator[CustomerRecord]:
    """Customers of ``db`` in any order — support counting is
    order-independent, and a disk-partitioned database offers a cheaper
    unordered stream (no K-way merge) than its ordered ``__iter__``."""
    unordered = getattr(db, "iter_unordered", None)
    return iter(unordered()) if unordered is not None else iter(db)


def count_itemset_supports(
    db: SequenceDatabaseLike,
    candidates: Iterable[Itemset],
    *,
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
    branch_factor: int = DEFAULT_BRANCH_FACTOR,
) -> Counter[Itemset]:
    """Customer-support counts of ``candidates`` in one database pass."""
    tree = ItemsetHashTree(
        candidates, leaf_capacity=leaf_capacity, branch_factor=branch_factor
    )
    counts: Counter[Itemset] = Counter()
    if len(tree) == 0:
        return counts
    for customer in _iter_customers(db):
        contained: set[Itemset] = set()
        for event in customer.events:
            contained |= tree.subsets_of(event)
        for itemset in contained:
            counts[itemset] += 1
    return counts


def _count_items(
    db: SequenceDatabaseLike, checkpoint: PassCheckpoint | None
) -> Counter[int]:
    """Pass 1: customer support of every single item, checkpointed.

    The pass input is the whole database (no candidate set), so its
    checkpoint identity is the constant empty key set. The counter's
    insertion (first-seen) order is preserved through replay — it feeds
    the mining-state snapshot, which must be byte-identical on resume.
    """
    if checkpoint is not None:
        key = pass_digest("items", ())
        cached = checkpoint.replay("items", key)
        if cached is not None:
            return Counter(cached)
        item_counts = _count_items(db, None)
        checkpoint.record("items", key, item_counts)
        return item_counts
    item_counts: Counter[int] = Counter()
    for customer in _iter_customers(db):
        seen: set[int] = set()
        for event in customer.events:
            seen.update(event)
        for item in seen:
            item_counts[item] += 1
    return item_counts


def _count_itemsets_checkpointed(
    db: SequenceDatabaseLike,
    candidates: list[Itemset],
    *,
    leaf_capacity: int,
    branch_factor: int,
    checkpoint: PassCheckpoint | None,
) -> Counter[Itemset]:
    """One per-level candidate pass, replayed or recorded when a
    checkpoint store is attached. Only contained candidates carry
    entries (``Counter`` answers 0 for the rest) — true for the fresh
    and the replayed result alike."""
    if checkpoint is None:
        return count_itemset_supports(
            db, candidates, leaf_capacity=leaf_capacity, branch_factor=branch_factor
        )
    key = pass_digest("itemsets", candidates)
    cached = checkpoint.replay("itemsets", key)
    if cached is not None:
        return Counter(cached)
    counts = _count_itemsets_checkpointed(
        db,
        candidates,
        leaf_capacity=leaf_capacity,
        branch_factor=branch_factor,
        checkpoint=None,
    )
    checkpoint.record("itemsets", key, counts)
    return counts


def find_litemsets(
    db: SequenceDatabaseLike,
    minsup: float,
    *,
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
    branch_factor: int = DEFAULT_BRANCH_FACTOR,
    max_length: int | None = None,
    checkpoint: PassCheckpoint | None = None,
) -> LitemsetResult:
    """Run the litemset phase: all itemsets with customer-support ≥ minsup.

    ``max_length`` optionally caps the itemset size (useful in stress tests
    on pathological dense data); ``None`` mines to fixpoint as the paper
    does. ``checkpoint`` optionally plugs in the durable pass store
    (see :class:`~repro.core.protocols.PassCheckpoint`): the raw-item
    scan and each per-level candidate pass are recorded as they
    complete, and replayed in order on resume — full counts, negative
    border included, so the resumed result is identical.
    """
    threshold = db.threshold(minsup)
    supports: dict[Itemset, int] = {}
    passes: list[LitemsetPassStats] = []
    counted_supports: dict[Itemset, int] = {}

    item_counts = _count_items(db, checkpoint)
    current_large = sorted(
        (item,) for item, count in item_counts.items() if count >= threshold
    )
    passes.append(
        LitemsetPassStats(
            length=1, num_candidates=len(item_counts), num_large=len(current_large)
        )
    )
    for itemset in current_large:
        supports[itemset] = item_counts[itemset[0]]

    length = 2
    while current_large and (max_length is None or length <= max_length):
        candidates = generate_candidate_itemsets(current_large)
        if not candidates:
            break
        counts = _count_itemsets_checkpointed(
            db,
            candidates,
            leaf_capacity=leaf_capacity,
            branch_factor=branch_factor,
            checkpoint=checkpoint,
        )
        for candidate in candidates:
            counted_supports[candidate] = counts[candidate]
        current_large = sorted(
            c for c in candidates if counts[c] >= threshold
        )
        passes.append(
            LitemsetPassStats(
                length=length,
                num_candidates=len(candidates),
                num_large=len(current_large),
            )
        )
        for itemset in current_large:
            supports[itemset] = counts[itemset]
        length += 1

    return LitemsetResult(
        supports=supports,
        passes=tuple(passes),
        item_counts=dict(item_counts),
        counted_supports=counted_supports,
    )
