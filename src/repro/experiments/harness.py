"""Measurement harness: one mining run → one structured record.

Every figure/table builder in :mod:`repro.experiments.figures` is a loop
over :func:`run_mining` calls; this module owns the record shape so that
benches, the CLI and EXPERIMENTS.md all report identical columns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.miner import MiningParams, MiningResult, mine
from repro.db.database import SequenceDatabase


@dataclass(frozen=True, slots=True)
class RunRecord:
    """One (dataset, algorithm, minsup) measurement."""

    dataset: str
    algorithm: str
    minsup: float
    num_customers: int
    seconds: float
    num_patterns: int
    num_litemsets: int
    max_pattern_length: int
    candidates_counted: int
    candidates_generated: int
    skipped_by_containment: int

    def as_row(self) -> list:
        return [
            self.dataset,
            self.algorithm,
            f"{self.minsup:.2%}",
            self.seconds,
            self.num_patterns,
            self.num_litemsets,
            self.max_pattern_length,
            self.candidates_counted,
            self.skipped_by_containment,
        ]

    ROW_HEADERS = (
        "dataset",
        "algorithm",
        "minsup",
        "seconds",
        "patterns",
        "litemsets",
        "max_len",
        "cand_counted",
        "cand_skipped",
    )


def run_mining(
    db: SequenceDatabase,
    *,
    dataset: str,
    algorithm: str,
    minsup: float,
    **param_overrides: object,
) -> tuple[RunRecord, MiningResult]:
    """Mine once and package the measurement."""
    params = MiningParams(minsup=minsup, algorithm=algorithm, **param_overrides)
    started = time.perf_counter()
    result = mine(db, params)
    elapsed = time.perf_counter() - started
    stats = result.algorithm_stats
    max_len = max(
        (p.sequence.length for p in result.patterns),
        default=0,
    )
    record = RunRecord(
        dataset=dataset,
        algorithm=algorithm,
        minsup=minsup,
        num_customers=db.num_customers,
        seconds=elapsed,
        num_patterns=result.num_patterns,
        num_litemsets=result.num_litemsets,
        max_pattern_length=max_len,
        candidates_counted=stats.total_candidates_counted,
        candidates_generated=stats.total_generated,
        skipped_by_containment=stats.skipped_by_containment,
    )
    return record, result
