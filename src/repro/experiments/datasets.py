"""The paper's dataset grid, scaled for laptop runs, with caching.

Table 2 of the paper evaluates five synthetic datasets, named by their
generator knobs, all with |D| = 250 000 customers:

    C10-T2.5-S4-I1.25   C10-T5-S4-I1.25   C10-T5-S4-I2.5
    C20-T2.5-S4-I1.25   C20-T2.5-S8-I1.25

and sweeps minimum support over 1 %, 0.75 %, 0.5 %, 0.33 %, 0.25 %.

This reproduction keeps the five names and the five-point sweep but scales
|D| down and the sweep band up (see EXPERIMENTS.md for the calibration
argument: the noise floor — the support of a *random* item — sits at
|C|·|T|/N ≈ 0.25 % regardless of |D|, so at small |D| the same relative
positions of sweep vs. noise floor are preserved by shifting the band).
"""

from __future__ import annotations

import os

from repro.datagen.generator import generate_database
from repro.datagen.params import SyntheticParams
from repro.db.database import SequenceDatabase

#: The paper's five dataset names (Table 2).
PAPER_DATASETS: tuple[str, ...] = (
    "C10-T2.5-S4-I1.25",
    "C10-T5-S4-I1.25",
    "C10-T5-S4-I2.5",
    "C20-T2.5-S4-I1.25",
    "C20-T2.5-S8-I1.25",
)

#: The paper's minsup sweep (fractions of customers).
PAPER_MINSUPS: tuple[float, ...] = (0.01, 0.0075, 0.005, 0.0033, 0.0025)

#: Scaled sweeps used by the reproduction benches. The per-item noise
#: floor is |C|·|T|/N: 0.25 % for the C10-T2.5 dataset but 0.5 % for the
#: denser T5/C20 datasets, so — like the paper, whose identical sweep cost
#: 70× more on the dense datasets — the dense panels get a sweep shifted
#: up by the same 2× density ratio to keep bench wall-time sane.
BENCH_MINSUPS: tuple[float, ...] = (0.025, 0.02, 0.015, 0.01, 0.0075)
BENCH_MINSUPS_DENSE: tuple[float, ...] = (0.05, 0.04, 0.03, 0.025, 0.02)

#: Default customer count for bench datasets (REPRO_BENCH_CUSTOMERS to
#: override; the paper used 250 000).
DEFAULT_BENCH_CUSTOMERS = 600

DEFAULT_SEED = 1995  # the paper's year; any fixed seed works


def bench_minsups(dataset: str) -> tuple[float, ...]:
    """The minsup sweep for one dataset, density-adjusted (see above)."""
    sweep = (
        BENCH_MINSUPS if dataset.startswith("C10-T2.5") else BENCH_MINSUPS_DENSE
    )
    if fast_mode():
        return sweep[::2]  # 3 of 5 points
    return sweep


def fast_mode() -> bool:
    """REPRO_BENCH_FAST=1 trims sweeps for smoke-testing the bench suite."""
    return os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def bench_customers() -> int:
    """Bench |D|, overridable via the REPRO_BENCH_CUSTOMERS env var."""
    raw = os.environ.get("REPRO_BENCH_CUSTOMERS", "")
    if raw:
        value = int(raw)
        if value < 1:
            raise ValueError("REPRO_BENCH_CUSTOMERS must be positive")
        return value
    if fast_mode():
        return 400
    return DEFAULT_BENCH_CUSTOMERS


def dataset_params(
    name: str, *, num_customers: int | None = None
) -> SyntheticParams:
    """Generator parameters for a paper dataset name at bench scale."""
    return SyntheticParams.from_name(
        name,
        num_customers=num_customers if num_customers is not None else bench_customers(),
    )


_CACHE: dict[tuple, SequenceDatabase] = {}


def load_dataset(
    name: str,
    *,
    num_customers: int | None = None,
    seed: int = DEFAULT_SEED,
) -> SequenceDatabase:
    """Generate (or fetch from the in-process cache) a named dataset.

    Generation is deterministic in (name, num_customers, seed); the cache
    makes a bench session generate each dataset once.
    """
    params = dataset_params(name, num_customers=num_customers)
    key = (params, seed)
    db = _CACHE.get(key)
    if db is None:
        db = generate_database(params, seed=seed)
        _CACHE[key] = db
    return db


def clear_cache() -> None:
    """Drop all cached datasets (tests use this to bound memory)."""
    _CACHE.clear()
