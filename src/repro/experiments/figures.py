"""Builders for every table and figure of the paper's evaluation.

Each function regenerates one artifact of Section 4 of the paper (or one
ablation DESIGN.md calls out) and returns a :class:`FigureResult` holding
both machine-readable rows and a rendered text report. The pytest
benches under ``benchmarks/`` and the ``seqmine experiment`` CLI both call
straight into these builders, so the numbers in EXPERIMENTS.md are
reproducible from either entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence as PySequence

from repro.analysis.compare import pattern_length_histogram
from repro.analysis.report import format_series_chart, format_table
from repro.core.apriorisome import NextLengthPolicy
from repro.miner import ALGORITHM_NAMES, MiningParams, mine
from repro.core.phase import CountingOptions
from repro.datagen.params import SyntheticParams
from repro.experiments.datasets import (
    DEFAULT_SEED,
    PAPER_DATASETS,
    bench_customers,
    bench_minsups,
    load_dataset,
)
from repro.experiments.harness import RunRecord, run_mining


@dataclass(slots=True)
class FigureResult:
    """One regenerated artifact: rows + headers + optional chart series."""

    figure_id: str
    title: str
    headers: tuple[str, ...]
    rows: list[list] = field(default_factory=list)
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    x_label: str = ""
    y_label: str = ""
    notes: list[str] = field(default_factory=list)

    def render(self, *, chart: bool = True) -> str:
        parts = [format_table(self.headers, self.rows, title=self.title)]
        if chart and self.series:
            parts.append(
                format_series_chart(
                    self.series,
                    title=f"{self.figure_id}: {self.y_label} vs {self.x_label}",
                    x_label=self.x_label,
                    y_label=self.y_label,
                )
            )
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)


# --------------------------------------------------------------------- #
# Table 1 / Table 2 — generator parameters and dataset characteristics
# --------------------------------------------------------------------- #


def table1_parameters() -> FigureResult:
    """The generator parameter glossary (paper Table 1)."""
    defaults = SyntheticParams()
    result = FigureResult(
        figure_id="table1-params",
        title="Table 1: synthetic data parameters (paper notation)",
        headers=("symbol", "meaning", "repro default", "paper value"),
    )
    paper = defaults.paper_scale()
    result.rows = [
        ["|D|", "Number of customers", defaults.num_customers, paper.num_customers],
        ["|C|", "Avg transactions per customer",
         defaults.avg_transactions_per_customer, "per dataset"],
        ["|T|", "Avg items per transaction",
         defaults.avg_items_per_transaction, "per dataset"],
        ["|S|", "Avg length of potentially large sequences",
         defaults.avg_pattern_sequence_length, "per dataset"],
        ["|I|", "Avg size of itemsets in potentially large sequences",
         defaults.avg_pattern_itemset_size, "per dataset"],
        ["N_S", "Number of potentially large sequences",
         defaults.num_pattern_sequences, paper.num_pattern_sequences],
        ["N_I", "Number of potentially large itemsets",
         defaults.num_pattern_itemsets, paper.num_pattern_itemsets],
        ["N", "Number of items", defaults.num_items, paper.num_items],
    ]
    return result


def table2_datasets(
    *,
    datasets: PySequence[str] = PAPER_DATASETS,
    num_customers: int | None = None,
    seed: int = DEFAULT_SEED,
) -> FigureResult:
    """Characteristics of the five generated datasets (paper Table 2)."""
    result = FigureResult(
        figure_id="table2-datasets",
        title="Table 2: generated dataset characteristics",
        headers=(
            "dataset",
            "customers",
            "transactions",
            "avg_trans/cust",
            "avg_items/trans",
            "distinct_items",
            "size_mb",
        ),
    )
    for name in datasets:
        db = load_dataset(name, num_customers=num_customers, seed=seed)
        stats = db.stats()
        result.rows.append(
            [
                name,
                stats.num_customers,
                stats.num_transactions,
                round(stats.avg_transactions_per_customer, 2),
                round(stats.avg_items_per_transaction, 2),
                stats.num_distinct_items,
                round(stats.approx_size_mb, 3),
            ]
        )
    return result


# --------------------------------------------------------------------- #
# Figure 6 — execution time vs minimum support, per dataset
# --------------------------------------------------------------------- #


def fig6_execution_times(
    dataset: str,
    *,
    minsups: PySequence[float] | None = None,
    algorithms: PySequence[str] = ALGORITHM_NAMES,
    num_customers: int | None = None,
    seed: int = DEFAULT_SEED,
) -> FigureResult:
    """One panel of the paper's Fig. 6: runtime of the three algorithms as
    the minimum support decreases."""
    if minsups is None:
        minsups = bench_minsups(dataset)
    db = load_dataset(dataset, num_customers=num_customers, seed=seed)
    result = FigureResult(
        figure_id=f"fig6-{dataset}",
        title=f"Fig. 6 panel: execution times on {dataset} "
        f"(|D|={db.num_customers})",
        headers=RunRecord.ROW_HEADERS,
        x_label="minsup (%)",
        y_label="seconds",
    )
    answers: dict[float, int] = {}
    for algorithm in algorithms:
        points = []
        for minsup in minsups:
            record, mined = run_mining(
                db, dataset=dataset, algorithm=algorithm, minsup=minsup
            )
            result.rows.append(record.as_row())
            points.append((minsup * 100, record.seconds))
            expected = answers.setdefault(minsup, mined.num_patterns)
            if expected != mined.num_patterns:
                result.notes.append(
                    f"DISAGREEMENT at minsup={minsup}: {algorithm} found "
                    f"{mined.num_patterns} patterns, expected {expected}"
                )
        result.series[algorithm] = points
    result.notes.append(
        "expected shape: AprioriSome ≲ AprioriAll; DynamicSome degrades "
        "sharply at the lowest supports (intermediate-phase explosion)."
    )
    return result


# --------------------------------------------------------------------- #
# Figure 7 — candidates counted per pass (AprioriSome's advantage)
# --------------------------------------------------------------------- #


def fig7_candidate_counts(
    *,
    dataset: str = "C10-T5-S4-I1.25",
    minsup: float = 0.03,
    num_customers: int | None = None,
    seed: int = DEFAULT_SEED,
) -> FigureResult:
    """Per-pass candidate counts for the three algorithms: how much
    counting work each algorithm does at each length (the paper's §4
    discussion of why AprioriSome wins)."""
    db = load_dataset(dataset, num_customers=num_customers, seed=seed)
    result = FigureResult(
        figure_id="fig7-candidates",
        title=f"Fig. 7: candidates counted per pass on {dataset} "
        f"(minsup {minsup:.2%}, |D|={db.num_customers})",
        headers=("algorithm", "length", "phase", "candidates", "large", "seconds"),
        x_label="pass length",
        y_label="candidates counted",
    )
    for algorithm in ALGORITHM_NAMES:
        _, mined = run_mining(
            db, dataset=dataset, algorithm=algorithm, minsup=minsup
        )
        points = []
        for p in mined.algorithm_stats.passes:
            result.rows.append(
                [algorithm, p.length, p.phase, p.num_candidates, p.num_large,
                 p.elapsed_seconds]
            )
            points.append((p.length, p.num_candidates))
        result.series[algorithm] = sorted(points)
        result.rows.append(
            [algorithm, "-", "skipped-by-containment",
             mined.algorithm_stats.skipped_by_containment, "-", "-"]
        )
    return result


# --------------------------------------------------------------------- #
# Figure 8 — scale-up with the number of customers
# --------------------------------------------------------------------- #


def fig8_scaleup_customers(
    *,
    dataset: str = "C10-T2.5-S4-I1.25",
    factors: PySequence[float] = (1.0, 2.0, 3.0, 4.0),
    minsup: float = 0.025,
    algorithms: PySequence[str] = ("aprioriall", "apriorisome"),
    base_customers: int | None = None,
    seed: int = DEFAULT_SEED,
) -> FigureResult:
    """Relative runtime as |D| grows (paper Fig. 8 shows ~linear)."""
    base = base_customers if base_customers is not None else bench_customers()
    result = FigureResult(
        figure_id="fig8-scaleup-customers",
        title=f"Fig. 8: scale-up with customers on {dataset} "
        f"(minsup {minsup:.2%})",
        headers=("algorithm", "customers", "seconds", "relative"),
        x_label="customers",
        y_label="relative time",
    )
    for algorithm in algorithms:
        baseline: float | None = None
        points = []
        for factor in factors:
            customers = max(1, round(base * factor))
            db = load_dataset(dataset, num_customers=customers, seed=seed)
            record, _ = run_mining(
                db, dataset=dataset, algorithm=algorithm, minsup=minsup
            )
            if baseline is None:
                baseline = record.seconds or 1e-9
            relative = record.seconds / baseline
            result.rows.append(
                [algorithm, customers, record.seconds, round(relative, 2)]
            )
            points.append((customers, relative))
        result.series[algorithm] = points
    result.notes.append("expected shape: close-to-linear growth in |D|.")
    return result


# --------------------------------------------------------------------- #
# Figure 9 — scale-up with transactions/customer and items/transaction
# --------------------------------------------------------------------- #


def fig9_scaleup_density(
    *,
    trans_per_customer: PySequence[float] = (10, 20, 30, 40),
    items_per_transaction: PySequence[float] = (2.5, 5.0, 7.5, 10.0),
    minsup: float = 0.03,
    algorithm: str = "apriorisome",
    num_customers: int | None = None,
    seed: int = DEFAULT_SEED,
) -> FigureResult:
    """Relative runtime as customer-sequence density grows (paper Fig. 9):
    one family varying |C| at |T|=2.5, one varying |T| at |C|=10."""
    customers = (
        num_customers if num_customers is not None else max(200, bench_customers() // 2)
    )
    result = FigureResult(
        figure_id="fig9-scaleup-density",
        title=f"Fig. 9: scale-up with sequence density ({algorithm}, "
        f"minsup {minsup:.2%}, |D|={customers})",
        headers=("family", "C", "T", "seconds", "relative"),
        x_label="avg items per customer",
        y_label="relative time",
    )

    def run_family(name: str, configs: list[tuple[float, float]]) -> None:
        baseline: float | None = None
        points = []
        for c_value, t_value in configs:
            params_name = SyntheticParams(
                avg_transactions_per_customer=c_value,
                avg_items_per_transaction=t_value,
            ).name
            db = load_dataset(params_name, num_customers=customers, seed=seed)
            record, _ = run_mining(
                db, dataset=params_name, algorithm=algorithm, minsup=minsup
            )
            if baseline is None:
                baseline = record.seconds or 1e-9
            relative = record.seconds / baseline
            result.rows.append(
                [name, c_value, t_value, record.seconds, round(relative, 2)]
            )
            points.append((c_value * t_value, relative))
        result.series[name] = points

    run_family("vary-C (T=2.5)", [(c, 2.5) for c in trans_per_customer])
    run_family("vary-T (C=10)", [(10, t) for t in items_per_transaction])
    result.notes.append(
        "expected shape: superlinear growth with density — more contained "
        "candidate occurrences per customer."
    )
    return result


# --------------------------------------------------------------------- #
# Ablations (DESIGN.md §3)
# --------------------------------------------------------------------- #


def ablation_counting(
    *,
    dataset: str = "C10-T5-S4-I1.25",
    minsup: float = 0.03,
    num_customers: int | None = None,
    seed: int = DEFAULT_SEED,
) -> FigureResult:
    """Hash-tree vs naive candidate counting (§3.2's data structure)."""
    db = load_dataset(dataset, num_customers=num_customers, seed=seed)
    result = FigureResult(
        figure_id="ablation-counting",
        title=f"Ablation: counting engine on {dataset} (minsup {minsup:.2%})",
        headers=("strategy", "seconds", "patterns"),
    )
    patterns_seen = set()
    for strategy in ("hashtree", "naive"):
        record, mined = run_mining(
            db,
            dataset=dataset,
            algorithm="aprioriall",
            minsup=minsup,
            counting=CountingOptions(strategy=strategy),
        )
        result.rows.append([strategy, record.seconds, record.num_patterns])
        patterns_seen.add(tuple(str(p.sequence) for p in mined.patterns))
    if len(patterns_seen) != 1:
        result.notes.append("DISAGREEMENT between counting strategies!")
    return result


def ablation_phases(
    *,
    dataset: str = "C10-T5-S4-I1.25",
    minsup: float = 0.03,
    num_customers: int | None = None,
    seed: int = DEFAULT_SEED,
) -> FigureResult:
    """Per-phase wall-clock breakdown of the five-phase pipeline."""
    db = load_dataset(dataset, num_customers=num_customers, seed=seed)
    result = FigureResult(
        figure_id="ablation-phases",
        title=f"Ablation: phase breakdown on {dataset} (minsup {minsup:.2%})",
        headers=("algorithm", "litemset", "transform", "sequence", "maximal",
                 "total"),
    )
    for algorithm in ALGORITHM_NAMES:
        mined = mine(db, MiningParams(minsup=minsup, algorithm=algorithm))
        t = mined.timings
        result.rows.append(
            [
                algorithm,
                t.litemset_seconds,
                t.transform_seconds,
                t.sequence_seconds,
                t.maximal_seconds,
                t.total_seconds,
            ]
        )
    return result


def ablation_next_policy(
    *,
    dataset: str = "C10-T5-S4-I1.25",
    minsup: float = 0.03,
    num_customers: int | None = None,
    seed: int = DEFAULT_SEED,
) -> FigureResult:
    """AprioriSome under different next(k) skip policies."""
    db = load_dataset(dataset, num_customers=num_customers, seed=seed)
    policies: Mapping[str, NextLengthPolicy] = {
        "paper-default": NextLengthPolicy(),
        "never-skip": NextLengthPolicy(breakpoints=((2.0, 1),), max_skip=1),
        "always-skip-2": NextLengthPolicy(breakpoints=((0.0001, 2),), max_skip=2),
        "aggressive": NextLengthPolicy(breakpoints=((0.2, 2), (0.5, 4)), max_skip=6),
    }
    result = FigureResult(
        figure_id="ablation-next-policy",
        title=f"Ablation: next(k) policy on {dataset} (minsup {minsup:.2%})",
        headers=("policy", "seconds", "patterns", "counted_lengths",
                 "cand_counted", "cand_skipped"),
    )
    for name, policy in policies.items():
        record, mined = run_mining(
            db,
            dataset=dataset,
            algorithm="apriorisome",
            minsup=minsup,
            next_policy=policy,
        )
        stats = mined.algorithm_stats
        result.rows.append(
            [
                name,
                record.seconds,
                record.num_patterns,
                ",".join(str(k) for k in stats.counted_lengths),
                stats.total_candidates_counted,
                stats.skipped_by_containment,
            ]
        )
    return result


def ablation_dynamic_step(
    *,
    dataset: str = "C10-T5-S4-I1.25",
    minsup: float = 0.03,
    steps: PySequence[int] = (1, 2, 3, 4),
    num_customers: int | None = None,
    seed: int = DEFAULT_SEED,
) -> FigureResult:
    """DynamicSome's step knob (the paper evaluated step variants)."""
    db = load_dataset(dataset, num_customers=num_customers, seed=seed)
    result = FigureResult(
        figure_id="ablation-dynamic-step",
        title=f"Ablation: DynamicSome step on {dataset} (minsup {minsup:.2%})",
        headers=("step", "seconds", "patterns", "cand_counted", "cand_generated"),
    )
    for step in steps:
        record, _ = run_mining(
            db,
            dataset=dataset,
            algorithm="dynamicsome",
            minsup=minsup,
            dynamic_step=step,
        )
        result.rows.append(
            [
                step,
                record.seconds,
                record.num_patterns,
                record.candidates_counted,
                record.candidates_generated,
            ]
        )
    return result


def pattern_length_summary(
    *,
    dataset: str = "C10-T2.5-S4-I1.25",
    minsup: float = 0.015,
    num_customers: int | None = None,
    seed: int = DEFAULT_SEED,
) -> FigureResult:
    """Supplementary: histogram of maximal pattern lengths."""
    db = load_dataset(dataset, num_customers=num_customers, seed=seed)
    _, mined = run_mining(
        db, dataset=dataset, algorithm="apriorisome", minsup=minsup
    )
    histogram = pattern_length_histogram(mined)
    result = FigureResult(
        figure_id="pattern-lengths",
        title=f"Maximal pattern lengths on {dataset} (minsup {minsup:.2%})",
        headers=("length", "patterns"),
    )
    result.rows = [[k, v] for k, v in histogram.items()]
    return result


#: Registry used by the CLI: experiment id → zero-arg builder.
EXPERIMENTS: dict[str, Callable[[], FigureResult]] = {
    "table1-params": table1_parameters,
    "table2-datasets": table2_datasets,
    **{
        f"fig6-{name}": (lambda name=name: fig6_execution_times(name))
        for name in PAPER_DATASETS
    },
    "fig7-candidates": fig7_candidate_counts,
    "fig8-scaleup-customers": fig8_scaleup_customers,
    "fig9-scaleup-density": fig9_scaleup_density,
    "ablation-counting": ablation_counting,
    "ablation-phases": ablation_phases,
    "ablation-next-policy": ablation_next_policy,
    "ablation-dynamic-step": ablation_dynamic_step,
    "pattern-lengths": pattern_length_summary,
}
