"""The experiment harness: dataset grid and per-figure series builders."""
