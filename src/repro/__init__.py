"""repro — a reproduction of "Mining Sequential Patterns" (ICDE 1995).

Agrawal & Srikant's paper defined the sequential-pattern-mining problem
and gave three algorithms for it: **AprioriAll**, **AprioriSome**, and
**DynamicSome**, all built on a five-phase pipeline (sort → litemset →
transformation → sequence → maximal). This package implements the full
pipeline, the three algorithms, the paper's synthetic data generator, a
brute-force oracle, and the experiment harness that regenerates the
paper's evaluation figures — plus the production-minded layers grown on
top: pluggable counting backends (:mod:`repro.core.counting`), sharded
parallel counting (:mod:`repro.parallel`), out-of-core partitioned
storage (:mod:`repro.db.partitioned`), GSP-style time constraints
(:mod:`repro.extensions.timeconstraints`), incremental mining over
appended deltas (:mod:`repro.incremental`), and a pattern-growth
engine — PrefixSpan with pseudo-projection and out-of-core streaming
(:mod:`repro.core.prefixspan`) — as a fourth algorithm whose output is
byte-identical to the candidate family's, and a pattern-serving tier
(:mod:`repro.serving`) that answers indexed match/predict queries over
mined patterns behind a hot-swappable asyncio HTTP server.

Quickstart::

    from repro import SequenceDatabase, mine_sequential_patterns

    db = SequenceDatabase.from_sequences([
        [(30,), (90,)],
        [(10, 20), (30,), (40, 60, 70)],
        [(30, 50, 70)],
        [(30,), (40, 70), (90,)],
        [(90,)],
    ])
    result = mine_sequential_patterns(db, minsup=0.25)
    for pattern in result.patterns:
        print(pattern)

The curated names below are the stable import surface
(``docs/API.md`` documents them); everything else is internal and may
move between versions.
"""

from repro.core.apriorisome import NextLengthPolicy
from repro.core.prefixspan import PrefixSpanResult, mine_prefixspan
from repro.miner import (
    ALGORITHM_NAMES,
    ALL_ALGORITHM_NAMES,
    AlgorithmName,
    MiningParams,
    MiningResult,
    Pattern,
    mine,
    mine_from_transactions,
    mine_sequential_patterns,
)
from repro.core.phase import CountingOptions
from repro.core.sequence import (
    Itemset,
    Sequence,
    format_sequence,
    make_itemset,
    parse_sequence,
)
from repro.datagen.generator import generate_database, iter_customer_sequences
from repro.datagen.params import SyntheticParams
from repro.db.database import CustomerSequence, SequenceDatabase, support_threshold
from repro.db.partitioned import PartitionedDatabase
from repro.db.records import Transaction
from repro.incremental import MiningState, UpdateOutcome, update_mining
from repro.serving import PatternIndex, PatternServer

__version__ = "1.1.0"

__all__ = [
    "ALGORITHM_NAMES",
    "ALL_ALGORITHM_NAMES",
    "AlgorithmName",
    "CountingOptions",
    "CustomerSequence",
    "Itemset",
    "MiningParams",
    "MiningResult",
    "MiningState",
    "NextLengthPolicy",
    "PartitionedDatabase",
    "Pattern",
    "PatternIndex",
    "PatternServer",
    "PrefixSpanResult",
    "Sequence",
    "SequenceDatabase",
    "SyntheticParams",
    "Transaction",
    "UpdateOutcome",
    "__version__",
    "format_sequence",
    "generate_database",
    "iter_customer_sequences",
    "make_itemset",
    "mine",
    "mine_from_transactions",
    "mine_prefixspan",
    "mine_sequential_patterns",
    "parse_sequence",
    "support_threshold",
    "update_mining",
]
