"""Out-of-core partitioned customer database (disk-backed mining).

The in-memory :class:`~repro.db.database.SequenceDatabase` holds every
customer as Python objects — fine for the paper's 5-customer example,
hopeless for its Fig. 8 scale-up experiments (millions of customers).
This module keeps the database on disk instead, split into K binlog
partitions (:mod:`repro.io.binlog`), and streams it through every phase
of the pipeline:

* the **litemset phase** iterates customers partition by partition (the
  database object is re-iterable, so the multi-pass Apriori loop works
  unchanged);
* the **transformation phase** streams each raw partition through the
  litemset catalog and writes a *transformed* binlog partition next to
  it — the whole transformed database never exists in memory either;
* every **counting pass** (forward, on-the-fly, backward; all four
  strategies) loads one prepared partition at a time, counts it with the
  ordinary serial engine, and sums — exact, because customer support is
  additive across disjoint customer partitions;
* the **bitset/vertical strategies** compile each transformed partition
  once per mining run and cache the compiled form on disk
  (``tpart-NNNNN.compiled.pkl``), so later passes deserialize instead of
  recompiling — the out-of-core analogue of the in-memory once-per-run
  compile contract;
* the **parallel executor** shards by partition: each worker receives
  partition *indices*, opens the files itself, and counts them — no
  sequence data is ever pickled, under fork or spawn alike
  (:mod:`repro.parallel.executor`).

Customers are assigned to partitions round-robin at write time, which
makes streaming creation possible without knowing the total count;
iteration (`__iter__`) K-way-merges the partitions back into ascending
``customer_id`` order, so a partitioned database enumerates customers
exactly like its in-memory equivalent.
"""

from __future__ import annotations

import heapq
import json
import math
import pickle
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.db.database import (
    CustomerSequence,
    DatabaseStats,
    SequenceDatabase,
    support_threshold,
)
from repro.io.binlog import BinlogReader, BinlogWriter

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "seqmine-partitioned"
MANIFEST_VERSION = 1

#: Rough ratio of resident Python-object footprint to binlog bytes, used
#: to pick a partition count from a ``--max-memory-mb`` budget. Python
#: tuples/ints cost an order of magnitude more than varints on disk;
#: measured on CPython 3.11 synthetic data the ratio is ~20-30x, so 32 is
#: a deliberately conservative planning factor.
MEMORY_EXPANSION_FACTOR = 32

#: Measured binlog-bytes-per-SPMF-text-byte (0.42 on bench_outofcore's
#: synthetic data; varints vs space-separated decimals plus -1/-2
#: terminators). Used to translate a *text* input's file size into the
#: binlog bytes :data:`MEMORY_EXPANSION_FACTOR` is calibrated against.
TEXT_TO_BINLOG_FACTOR = 0.42


def partition_file_name(index: int) -> str:
    return f"part-{index:05d}.binlog"


def transformed_file_name(index: int) -> str:
    return f"tpart-{index:05d}.binlog"


def compiled_cache_name(index: int) -> str:
    return f"tpart-{index:05d}.compiled.pkl"


def partitions_for_budget(data_bytes: int, max_memory_mb: float) -> int:
    """Partition count keeping one partition's resident form under budget.

    ``data_bytes`` is the database's **binlog** size (the unit
    :data:`MEMORY_EXPANSION_FACTOR` is calibrated against); for a text
    input use :func:`partitions_for_budget_from_text`.
    """
    if max_memory_mb <= 0:
        raise ValueError(f"max-memory-mb must be > 0, got {max_memory_mb}")
    budget_bytes = max_memory_mb * 1024 * 1024
    estimated_resident = data_bytes * MEMORY_EXPANSION_FACTOR
    return max(1, math.ceil(estimated_resident / budget_bytes))


def partitions_for_budget_from_text(
    text_bytes: int, max_memory_mb: float
) -> int:
    """Partition count for a budget, from an SPMF/CSV *text* file's size
    (scaled down to estimated binlog bytes first, so the budget is not
    over-partitioned ~2.5x)."""
    return partitions_for_budget(
        max(1, int(text_bytes * TEXT_TO_BINLOG_FACTOR)), max_memory_mb
    )


class PartitionedDatabase:
    """A customer-sequence database stored as K binlog partitions on disk.

    Duck-type compatible with :class:`~repro.db.database.SequenceDatabase`
    everywhere the pipeline needs it (iteration over
    :class:`CustomerSequence`, ``num_customers``, ``threshold``,
    ``stats``, ``support_count``), but with O(partition) peak memory: no
    method ever materializes more than one partition (for counting) or
    one record per partition (for ordered iteration).
    """

    def __init__(self, directory: str | Path, manifest: dict):
        self.directory = Path(directory)
        self._manifest = manifest
        self.partition_paths = [
            self.directory / partition_file_name(i)
            for i in range(manifest["partitions"])
        ]
        for path in self.partition_paths:
            if not path.exists():
                raise ValueError(f"{self.directory}: missing partition {path.name}")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def create(
        cls,
        directory: str | Path,
        customers: Iterable[CustomerSequence],
        *,
        partitions: int,
        overwrite: bool = False,
    ) -> "PartitionedDatabase":
        """Stream ``customers`` into ``directory`` as K round-robin partitions.

        The iterable is consumed exactly once and never buffered, so this
        works for sources far larger than memory (the streaming SPMF
        reader, the synthetic generator's customer iterator).
        """
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if manifest_path.exists():
            if not overwrite:
                raise ValueError(
                    f"{directory} already holds a partitioned database "
                    f"(pass overwrite to replace it)"
                )
            # Drop the old manifest *before* touching the partitions: if
            # this write fails mid-stream, the directory must read as
            # "no database here" rather than as the previous database's
            # manifest over partially overwritten partition files. Old
            # partition files (and the transformed cache) go too, so a
            # smaller replacement cannot leave stale higher-index
            # partitions beside the new manifest.
            manifest_path.unlink()
            for stale in directory.glob("part-*.binlog"):
                stale.unlink()
            shutil.rmtree(directory / "transformed", ignore_errors=True)
        directory.mkdir(parents=True, exist_ok=True)
        writers = [
            BinlogWriter(directory / partition_file_name(i))
            for i in range(partitions)
        ]
        num_customers = 0
        num_transactions = 0
        num_items_total = 0
        vocabulary: set[int] = set()
        last_id: int | None = None
        try:
            for customer in customers:
                if last_id is not None and customer.customer_id <= last_id:
                    raise ValueError(
                        f"customers must arrive in ascending id order "
                        f"(got {customer.customer_id} after {last_id})"
                    )
                last_id = customer.customer_id
                writers[num_customers % partitions].append(
                    customer.customer_id, customer.events
                )
                num_customers += 1
                num_transactions += len(customer.events)
                for event in customer.events:
                    num_items_total += len(event)
                    vocabulary.update(event)
        except BaseException:
            # Source failed mid-stream: leave footerless (reader-rejected)
            # partition files, never valid-looking truncated ones.
            for writer in writers:
                writer.abort()
            raise
        for writer in writers:
            writer.close()
        manifest = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "partitions": partitions,
            "num_customers": num_customers,
            "num_transactions": num_transactions,
            "num_items_total": num_items_total,
            "num_distinct_items": len(vocabulary),
        }
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
            handle.write("\n")
        return cls(directory, manifest)

    @classmethod
    def from_database(
        cls,
        db: SequenceDatabase,
        directory: str | Path,
        *,
        partitions: int,
        overwrite: bool = False,
    ) -> "PartitionedDatabase":
        return cls.create(
            directory, iter(db), partitions=partitions, overwrite=overwrite
        )

    @classmethod
    def open(cls, directory: str | Path) -> "PartitionedDatabase":
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise ValueError(
                f"{directory} is not a partitioned database: "
                f"missing {MANIFEST_NAME}"
            )
        with open(manifest_path, "r", encoding="utf-8") as handle:
            try:
                manifest = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{manifest_path}: not valid JSON: {exc}") from exc
        if manifest.get("format") != MANIFEST_FORMAT:
            raise ValueError(
                f"{manifest_path}: unexpected format {manifest.get('format')!r}"
            )
        if manifest.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"{manifest_path}: unsupported manifest version "
                f"{manifest.get('version')!r}"
            )
        required = (
            "partitions", "num_customers", "num_transactions",
            "num_items_total", "num_distinct_items",
        )
        missing = [key for key in required if key not in manifest]
        if missing:
            raise ValueError(
                f"{manifest_path}: corrupt manifest: missing "
                f"{', '.join(missing)}"
            )
        return cls(directory, manifest)

    # ------------------------------------------------------------------ #
    # Access (SequenceDatabase-compatible surface)
    # ------------------------------------------------------------------ #

    @property
    def num_partitions(self) -> int:
        return self._manifest["partitions"]

    @property
    def num_customers(self) -> int:
        return self._manifest["num_customers"]

    def __len__(self) -> int:
        return self.num_customers

    def iter_partition(self, index: int) -> Iterator[CustomerSequence]:
        """Stream one partition's customers (file order = id order)."""
        for customer_id, events in BinlogReader(self.partition_paths[index]):
            yield CustomerSequence(customer_id=customer_id, events=events)

    def __iter__(self) -> Iterator[CustomerSequence]:
        """All customers in ascending id order (K-way streaming merge).

        Round-robin assignment preserves id order within each partition,
        so an ordinary heap merge on ``customer_id`` restores the global
        order while holding one record batch per partition in memory.
        Binlog readers open their file only transiently per batch, so
        the merge works for any K regardless of the process fd limit.
        """
        streams = [self.iter_partition(i) for i in range(self.num_partitions)]
        return heapq.merge(*streams, key=lambda c: c.customer_id)

    def iter_unordered(self) -> Iterator[CustomerSequence]:
        """All customers, partition by partition — no merge overhead.

        Order-independent scans (support counting, vocabulary, the
        litemset phase) should prefer this: same customers, no per-record
        heap comparison, one partition's reader live at a time.
        """
        for index in range(self.num_partitions):
            yield from self.iter_partition(index)

    def threshold(self, minsup: float) -> int:
        return support_threshold(minsup, self.num_customers)

    def item_vocabulary(self) -> frozenset[int]:
        """All distinct items (one streaming scan)."""
        vocabulary: set[int] = set()
        for customer in self.iter_unordered():
            for event in customer.events:
                vocabulary.update(event)
        return frozenset(vocabulary)

    def support_count(self, pattern) -> int:
        """Direct streaming support count (verification/reporting path)."""
        return sum(
            1 for customer in self.iter_unordered() if customer.contains(pattern)
        )

    def support(self, pattern) -> float:
        if not self.num_customers:
            return 0.0
        return self.support_count(pattern) / self.num_customers

    def stats(self) -> DatabaseStats:
        """Table 2 statistics from the manifest (no scan needed)."""
        m = self._manifest
        return DatabaseStats.from_totals(
            num_customers=m["num_customers"],
            num_transactions=m["num_transactions"],
            num_items_total=m["num_items_total"],
            num_distinct_items=m["num_distinct_items"],
        )

    def disk_bytes(self) -> int:
        """Total size of the partition files on disk."""
        return sum(path.stat().st_size for path in self.partition_paths)

    def to_memory(self) -> SequenceDatabase:
        """Materialize the whole database in memory (tests, small data)."""
        return SequenceDatabase(list(self))

    # ------------------------------------------------------------------ #
    # Transformation phase (streamed, partition by partition)
    # ------------------------------------------------------------------ #

    def transform(self, catalog) -> "PartitionedTransformedDatabase":
        """The transformation phase, streamed: raw partition in,
        transformed binlog partition out (litemset-id events, empty
        transactions dropped, empty customers dropped). Mirrors
        :func:`repro.db.transform.transform_database` exactly — including
        keeping the *original* customer count as the support denominator.
        """
        transformed_dir = self.directory / "transformed"
        transformed_dir.mkdir(parents=True, exist_ok=True)
        paths: list[Path] = []
        counts: list[int] = []
        max_sequence_length = 0
        num_transformed = 0
        for index in range(self.num_partitions):
            path = transformed_dir / transformed_file_name(index)
            with BinlogWriter(path) as writer:
                for customer in self.iter_partition(index):
                    events = []
                    for event in customer.events:
                        ids = catalog.contained_ids(event)
                        if ids:
                            events.append(tuple(sorted(ids)))
                    if events:
                        writer.append(customer.customer_id, events)
                        if len(events) > max_sequence_length:
                            max_sequence_length = len(events)
                paths.append(path)
                counts.append(writer.num_records)
                num_transformed += writer.num_records
            stale = transformed_dir / compiled_cache_name(index)
            if stale.exists():
                stale.unlink()  # cached compile of a previous catalog
        sequences = PartitionedSequences(paths, counts)
        return PartitionedTransformedDatabase(
            sequences=sequences,
            num_customers=self.num_customers,
            num_transformed=num_transformed,
            catalog=catalog,
            max_sequence_length=max_sequence_length,
        )


class PartitionedSequences:
    """The transformed database as disk partitions — the out-of-core
    countable.

    This is what the counting layer sees instead of a list of transformed
    sequences: ``len()`` is the transformed customer count, iteration
    streams event tuples partition by partition, and
    :meth:`load_prepared` returns one partition in the form the active
    strategy counts fastest — the raw event list (hashtree/naive), the
    bitset-compiled partition (bitset; deserialized from the on-disk
    compile cache), or the vertical inversion of that compiled partition
    (vertical). :meth:`prepare` is the once-per-run hook that builds the
    compile cache; it is idempotent, so forward, on-the-fly and backward
    passes can all call through :meth:`~repro.core.phase.CountingOptions.
    prepare_sequences` freely.

    Instances are tiny (paths and counts) and picklable, which is how the
    parallel executor ships them: workers get the *description* of the
    database and open partition files themselves.
    """

    def __init__(self, paths: list[Path], counts: list[int]):
        self.paths = [Path(p) for p in paths]
        self.counts = list(counts)
        self.strategy: str = "hashtree"

    @property
    def num_partitions(self) -> int:
        return len(self.paths)

    def __len__(self) -> int:
        return sum(self.counts)

    def iter_partition(self, index: int) -> Iterator[tuple[frozenset[int], ...]]:
        """Stream one partition's transformed sequences."""
        for _customer_id, events in BinlogReader(self.paths[index]):
            yield tuple(frozenset(event) for event in events)

    def __iter__(self) -> Iterator[tuple[frozenset[int], ...]]:
        for index in range(self.num_partitions):
            yield from self.iter_partition(index)

    # ------------------------------------------------------------------ #
    # Strategy preparation (the out-of-core compile cache)
    # ------------------------------------------------------------------ #

    def _cache_path(self, index: int) -> Path:
        return self.paths[index].with_name(compiled_cache_name(index))

    @property
    def length2_form(self) -> str:
        """Which prepared form the length-2 occurring-pairs sweep loads:
        the compiled partition when the run's strategy keeps a compile
        cache, the raw partition otherwise. Lives here so serial and
        parallel length-2 counting cannot drift apart."""
        return "bitset" if self.strategy in ("bitset", "vertical") else "hashtree"

    def prepare(self, strategy: str) -> "PartitionedSequences":
        """Record the run's strategy; build the on-disk compile cache.

        For ``bitset`` and ``vertical`` every partition is compiled into
        the bitmask form exactly once and pickled next to its binlog;
        every later pass (serial or in a worker process) deserializes the
        compiled partition instead of recompiling. The scanning
        strategies need no preparation.
        """
        self.strategy = strategy
        if strategy in ("bitset", "vertical"):
            from repro.core.bitset import CompiledDatabase

            for index in range(self.num_partitions):
                cache = self._cache_path(index)
                if cache.exists():
                    continue
                compiled = CompiledDatabase.compile(
                    list(self.iter_partition(index))
                )
                with open(cache, "wb") as handle:
                    pickle.dump(compiled, handle, protocol=pickle.HIGHEST_PROTOCOL)
        return self

    def load_prepared(self, index: int, strategy: str | None = None):
        """One partition in the active strategy's countable form.

        The caller owns the returned object and drops it after the
        partition's counts are merged — peak memory is one partition.
        """
        strategy = self.strategy if strategy is None else strategy
        if strategy in ("bitset", "vertical"):
            cache = self._cache_path(index)
            if cache.exists():
                with open(cache, "rb") as handle:
                    compiled = pickle.load(handle)
            else:  # raw engine call without prepare(): compile transiently
                from repro.core.bitset import CompiledDatabase

                compiled = CompiledDatabase.compile(
                    list(self.iter_partition(index))
                )
            if strategy == "vertical":
                from repro.core.vertical import ensure_vertical

                return ensure_vertical(compiled)
            return compiled
        return list(self.iter_partition(index))

    def iter_prepared(self, strategy: str | None = None):
        """Yield every partition in prepared form, one at a time."""
        for index in range(self.num_partitions):
            yield self.load_prepared(index, strategy)


@dataclass(frozen=True, slots=True)
class PartitionedTransformedDatabase:
    """The transformed database DT, on disk.

    Field-compatible with :class:`~repro.db.transform.TransformedDatabase`
    everywhere the sequence phase looks: ``sequences`` (here the
    partitioned countable), ``num_customers`` (the support denominator —
    still the *original* count), ``catalog`` and
    ``max_sequence_length``.
    """

    sequences: PartitionedSequences
    num_customers: int
    num_transformed: int
    catalog: object
    max_sequence_length: int

    def __len__(self) -> int:
        return self.num_transformed

    @property
    def num_dropped_customers(self) -> int:
        return self.num_customers - self.num_transformed


def write_partitions_from_spmf(
    source: str | Path,
    directory: str | Path,
    *,
    partitions: int,
    overwrite: bool = False,
) -> PartitionedDatabase:
    """Stream an SPMF file into a partitioned database (never holds the
    whole dataset in memory)."""
    from repro.io.spmf import iter_spmf

    return PartitionedDatabase.create(
        directory, iter_spmf(source), partitions=partitions, overwrite=overwrite
    )


def write_partitions_from_csv(
    source: str | Path,
    directory: str | Path,
    *,
    partitions: int,
    overwrite: bool = False,
) -> PartitionedDatabase:
    """Load a CSV transaction table and partition it. CSV rows are
    unsorted by contract, so this path sorts in memory first (the sort
    phase); use SPMF or ``generate --stream-out`` for larger-than-memory
    sources."""
    from repro.io.csvio import read_database_csv

    db = read_database_csv(source)
    return PartitionedDatabase.from_database(
        db, directory, partitions=partitions, overwrite=overwrite
    )
