"""Out-of-core partitioned customer database (disk-backed mining).

The in-memory :class:`~repro.db.database.SequenceDatabase` holds every
customer as Python objects — fine for the paper's 5-customer example,
hopeless for its Fig. 8 scale-up experiments (millions of customers).
This module keeps the database on disk instead, split into K binlog
partitions (:mod:`repro.io.binlog`), and streams it through every phase
of the pipeline:

* the **litemset phase** iterates customers partition by partition (the
  database object is re-iterable, so the multi-pass Apriori loop works
  unchanged);
* the **transformation phase** streams each raw partition through the
  litemset catalog and writes a *transformed* binlog partition next to
  it — the whole transformed database never exists in memory either;
* every **counting pass** (forward, on-the-fly, backward; all four
  strategies) loads one prepared partition at a time, counts it with the
  ordinary serial engine, and sums — exact, because customer support is
  additive across disjoint customer partitions;
* the **bitset/vertical strategies** compile each transformed partition
  once per mining run and cache the compiled form on disk
  (``tpart-NNNNN.compiled.pkl``), so later passes deserialize instead of
  recompiling — the out-of-core analogue of the in-memory once-per-run
  compile contract;
* the **parallel executor** shards by partition: each worker receives
  partition *indices*, opens the files itself, and counts them — no
  sequence data is ever pickled, under fork or spawn alike
  (:mod:`repro.parallel.executor`).

Customers are assigned to partitions round-robin at write time, which
makes streaming creation possible without knowing the total count;
iteration (`__iter__`) K-way-merges the partitions back into ascending
``customer_id`` order, so a partitioned database enumerates customers
exactly like its in-memory equivalent.

A partitioned database is also **appendable** (the substrate of the
incremental-mining subsystem, :mod:`repro.incremental`): each
:meth:`PartitionedDatabase.append_delta` call adds one *generation* of
new data without rewriting any existing partition file. New customers
land in fresh ``delta-GGGGG-part-*.binlog`` partitions; additional
transactions for customers that already exist land as *overlay* records
in ``delta-GGGGG-overlay.binlog`` and are spliced onto the owning
customer's event list during iteration (appended transactions are later
in time, so the merged sequence is simply base events followed by
overlay events, in generation order). :meth:`delta_since` exposes
exactly what changed after a given generation — the view the
incremental miner counts instead of rescanning the base.
"""

from __future__ import annotations

import heapq
import json
import math
import pickle
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.core.protocols import CountingStrategy, LitemsetCatalogLike
from repro.core.sequence import Sequence

from repro.db.database import (
    CustomerSequence,
    DatabaseStats,
    SequenceDatabase,
    support_threshold,
)
from repro.io.atomic import atomic_writer
from repro.io.binlog import BinlogReader, BinlogWriter

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "seqmine-partitioned"
MANIFEST_VERSION = 1

#: File name of the mining-state snapshot the incremental subsystem
#: serializes next to the manifest (see :mod:`repro.io.state`).
MINING_STATE_NAME = "mining_state.json"


def _write_manifest(path: Path, manifest: dict) -> None:
    # The manifest is the database's commit record: an append becomes
    # visible exactly when this replace lands, so it must be atomic — a
    # torn manifest would poison every later open/append/update.
    with atomic_writer(path, "w") as handle:
        json.dump(manifest, handle, indent=2)
        handle.write("\n")

#: Rough ratio of resident Python-object footprint to binlog bytes, used
#: to pick a partition count from a ``--max-memory-mb`` budget. Python
#: tuples/ints cost an order of magnitude more than varints on disk;
#: measured on CPython 3.11 synthetic data the ratio is ~20-30x, so 32 is
#: a deliberately conservative planning factor.
MEMORY_EXPANSION_FACTOR = 32

#: Measured binlog-bytes-per-SPMF-text-byte (0.42 on bench_outofcore's
#: synthetic data; varints vs space-separated decimals plus -1/-2
#: terminators). Used to translate a *text* input's file size into the
#: binlog bytes :data:`MEMORY_EXPANSION_FACTOR` is calibrated against.
TEXT_TO_BINLOG_FACTOR = 0.42


def partition_file_name(index: int) -> str:
    return f"part-{index:05d}.binlog"


def delta_partition_file_name(generation: int, index: int) -> str:
    return f"delta-{generation:05d}-part-{index:05d}.binlog"


def delta_overlay_file_name(generation: int) -> str:
    return f"delta-{generation:05d}-overlay.binlog"


def transformed_file_name(index: int) -> str:
    return f"tpart-{index:05d}.binlog"


def compiled_cache_name(index: int) -> str:
    return f"tpart-{index:05d}.compiled.pkl"


def partitions_for_budget(data_bytes: int, max_memory_mb: float) -> int:
    """Partition count keeping one partition's resident form under budget.

    ``data_bytes`` is the database's **binlog** size (the unit
    :data:`MEMORY_EXPANSION_FACTOR` is calibrated against); for a text
    input use :func:`partitions_for_budget_from_text`.
    """
    if max_memory_mb <= 0:
        raise ValueError(f"max-memory-mb must be > 0, got {max_memory_mb}")
    budget_bytes = max_memory_mb * 1024 * 1024
    estimated_resident = data_bytes * MEMORY_EXPANSION_FACTOR
    return max(1, math.ceil(estimated_resident / budget_bytes))


def partitions_for_budget_from_text(
    text_bytes: int, max_memory_mb: float
) -> int:
    """Partition count for a budget, from an SPMF/CSV *text* file's size
    (scaled down to estimated binlog bytes first, so the budget is not
    over-partitioned ~2.5x)."""
    return partitions_for_budget(
        max(1, int(text_bytes * TEXT_TO_BINLOG_FACTOR)), max_memory_mb
    )


class PartitionedDatabase:
    """A customer-sequence database stored as K binlog partitions on disk.

    Duck-type compatible with :class:`~repro.db.database.SequenceDatabase`
    everywhere the pipeline needs it (iteration over
    :class:`CustomerSequence`, ``num_customers``, ``threshold``,
    ``stats``, ``support_count``), but with O(partition) peak memory: no
    method ever materializes more than one partition (for counting) or
    one record per partition (for ordered iteration).
    """

    def __init__(self, directory: str | Path, manifest: dict[str, Any]) -> None:
        self.directory = Path(directory)
        self._manifest = manifest
        self.partition_paths = [
            self.directory / partition_file_name(i)
            for i in range(manifest["partitions"])
        ]
        # Every partition's generation: 0 for the base files, then the
        # delta generations in order. Appends only ever add entries, so
        # a partition index is stable for the lifetime of the database.
        self._partition_generations = [0] * manifest["partitions"]
        for delta in manifest.get("deltas", ()):
            for i in range(delta["partitions"]):
                self.partition_paths.append(
                    self.directory
                    / delta_partition_file_name(delta["generation"], i)
                )
                self._partition_generations.append(delta["generation"])
        for path in self.partition_paths:
            if not path.exists():
                raise ValueError(f"{self.directory}: missing partition {path.name}")
        for path in self.overlay_paths():
            if not path.exists():
                raise ValueError(f"{self.directory}: missing overlay {path.name}")
        self._overlay_cache: list[tuple[int, dict[int, tuple]]] | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def create(
        cls,
        directory: str | Path,
        customers: Iterable[CustomerSequence],
        *,
        partitions: int,
        overwrite: bool = False,
    ) -> "PartitionedDatabase":
        """Stream ``customers`` into ``directory`` as K round-robin partitions.

        The iterable is consumed exactly once and never buffered, so this
        works for sources far larger than memory (the streaming SPMF
        reader, the synthetic generator's customer iterator).
        """
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if manifest_path.exists():
            if not overwrite:
                raise ValueError(
                    f"{directory} already holds a partitioned database "
                    f"(pass overwrite to replace it)"
                )
            # Drop the old manifest *before* touching the partitions: if
            # this write fails mid-stream, the directory must read as
            # "no database here" rather than as the previous database's
            # manifest over partially overwritten partition files. Old
            # partition files (and the transformed cache) go too, so a
            # smaller replacement cannot leave stale higher-index
            # partitions beside the new manifest.
            manifest_path.unlink()
            for stale in directory.glob("part-*.binlog"):
                stale.unlink()
            for stale in directory.glob("delta-*.binlog"):
                stale.unlink()
            stale_state = directory / MINING_STATE_NAME
            if stale_state.exists():
                stale_state.unlink()  # snapshot of the replaced database
            shutil.rmtree(directory / "transformed", ignore_errors=True)
        directory.mkdir(parents=True, exist_ok=True)
        writers = [
            BinlogWriter(directory / partition_file_name(i))
            for i in range(partitions)
        ]
        num_customers = 0
        num_transactions = 0
        num_items_total = 0
        vocabulary: set[int] = set()
        last_id: int | None = None
        try:
            for customer in customers:
                if last_id is not None and customer.customer_id <= last_id:
                    raise ValueError(
                        f"customers must arrive in ascending id order "
                        f"(got {customer.customer_id} after {last_id})"
                    )
                last_id = customer.customer_id
                writers[num_customers % partitions].append(
                    customer.customer_id, customer.events
                )
                num_customers += 1
                num_transactions += len(customer.events)
                for event in customer.events:
                    num_items_total += len(event)
                    vocabulary.update(event)
        except BaseException:
            # Source failed mid-stream: leave footerless (reader-rejected)
            # partition files, never valid-looking truncated ones.
            for writer in writers:
                writer.abort()
            raise
        for writer in writers:
            writer.close()
        manifest = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "partitions": partitions,
            "num_customers": num_customers,
            "num_transactions": num_transactions,
            "num_items_total": num_items_total,
            "num_distinct_items": len(vocabulary),
            # Append bookkeeping: the id watermark splits a future delta
            # into overlay records (id <= max) vs new customers (id >
            # max), and the exact vocabulary keeps num_distinct_items
            # maintainable without rescanning the base. Both optional on
            # read, so pre-append manifests still open.
            "max_customer_id": last_id if last_id is not None else 0,
            "vocabulary": sorted(vocabulary),
            "deltas": [],
        }
        _write_manifest(manifest_path, manifest)
        return cls(directory, manifest)

    @classmethod
    def from_database(
        cls,
        db: SequenceDatabase,
        directory: str | Path,
        *,
        partitions: int,
        overwrite: bool = False,
    ) -> "PartitionedDatabase":
        return cls.create(
            directory, iter(db), partitions=partitions, overwrite=overwrite
        )

    @classmethod
    def open(cls, directory: str | Path) -> "PartitionedDatabase":
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise ValueError(
                f"{directory} is not a partitioned database: "
                f"missing {MANIFEST_NAME}"
            )
        with open(manifest_path, "r", encoding="utf-8") as handle:
            try:
                manifest = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{manifest_path}: not valid JSON: {exc}") from exc
        if manifest.get("format") != MANIFEST_FORMAT:
            raise ValueError(
                f"{manifest_path}: unexpected format {manifest.get('format')!r}"
            )
        if manifest.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"{manifest_path}: unsupported manifest version "
                f"{manifest.get('version')!r}"
            )
        required = (
            "partitions", "num_customers", "num_transactions",
            "num_items_total", "num_distinct_items",
        )
        missing = [key for key in required if key not in manifest]
        if missing:
            raise ValueError(
                f"{manifest_path}: corrupt manifest: missing "
                f"{', '.join(missing)}"
            )
        return cls(directory, manifest)

    # ------------------------------------------------------------------ #
    # Access (SequenceDatabase-compatible surface)
    # ------------------------------------------------------------------ #

    @property
    def num_partitions(self) -> int:
        """All partitions across generations (base + every delta)."""
        return len(self.partition_paths)

    @property
    def num_base_partitions(self) -> int:
        return self._manifest["partitions"]

    @property
    def num_customers(self) -> int:
        return self._manifest["num_customers"]

    @property
    def generation(self) -> int:
        """How many deltas have been appended (0 = never appended)."""
        deltas = self._manifest.get("deltas", ())
        return deltas[-1]["generation"] if deltas else 0

    def num_customers_at(self, generation: int) -> int:
        """The customer count as of ``generation`` (before later deltas)."""
        return self.num_customers - sum(
            delta["num_new_customers"]
            for delta in self._manifest.get("deltas", ())
            if delta["generation"] > generation
        )

    def __len__(self) -> int:
        return self.num_customers

    def overlay_paths(self) -> list[Path]:
        """Overlay files of every delta generation that has one."""
        return [
            self.directory / delta_overlay_file_name(delta["generation"])
            for delta in self._manifest.get("deltas", ())
            if delta.get("num_overlay_customers", 0)
        ]

    def _overlays(self) -> list[tuple[int, dict[int, tuple]]]:
        """Per-generation overlay maps ``{customer_id: extra events}``.

        Loaded once and kept resident: overlays are delta-sized (the
        appended transactions of existing customers), not base-sized.
        """
        if self._overlay_cache is None:
            cache: list[tuple[int, dict[int, tuple]]] = []
            for delta in self._manifest.get("deltas", ()):
                if not delta.get("num_overlay_customers", 0):
                    continue
                path = self.directory / delta_overlay_file_name(
                    delta["generation"]
                )
                cache.append(
                    (
                        delta["generation"],
                        {cid: events for cid, events in BinlogReader(path)},
                    )
                )
            self._overlay_cache = cache
        return self._overlay_cache

    def _merged_events(
        self, customer_id: int, events: tuple, max_generation: int | None
    ) -> tuple:
        """``events`` plus the customer's overlay transactions, oldest
        generation first (appended transactions are later in time)."""
        for generation, overlay in self._overlays():
            if max_generation is not None and generation > max_generation:
                break
            extra = overlay.get(customer_id)
            if extra:
                events = events + extra
        return events

    def iter_partition(
        self, index: int, *, max_generation: int | None = None
    ) -> Iterator[CustomerSequence]:
        """Stream one partition's customers (file order = id order), with
        overlay transactions of generations ≤ ``max_generation`` (default:
        all) spliced onto each customer."""
        for customer_id, events in BinlogReader(self.partition_paths[index]):
            yield CustomerSequence(
                customer_id=customer_id,
                events=self._merged_events(customer_id, events, max_generation),
            )

    def __iter__(self) -> Iterator[CustomerSequence]:
        """All customers in ascending id order (K-way streaming merge).

        Round-robin assignment preserves id order within each partition,
        so an ordinary heap merge on ``customer_id`` restores the global
        order while holding one record batch per partition in memory.
        Binlog readers open their file only transiently per batch, so
        the merge works for any K regardless of the process fd limit.
        """
        streams = [self.iter_partition(i) for i in range(self.num_partitions)]
        return heapq.merge(*streams, key=lambda c: c.customer_id)

    def iter_unordered(self) -> Iterator[CustomerSequence]:
        """All customers, partition by partition — no merge overhead.

        Order-independent scans (support counting, vocabulary, the
        litemset phase) should prefer this: same customers, no per-record
        heap comparison, one partition's reader live at a time.
        """
        for index in range(self.num_partitions):
            yield from self.iter_partition(index)

    def threshold(self, minsup: float) -> int:
        return support_threshold(minsup, self.num_customers)

    def item_vocabulary(self) -> frozenset[int]:
        """All distinct items (one streaming scan)."""
        vocabulary: set[int] = set()
        for customer in self.iter_unordered():
            for event in customer.events:
                vocabulary.update(event)
        return frozenset(vocabulary)

    def support_count(self, pattern: Sequence) -> int:
        """Direct streaming support count (verification/reporting path)."""
        return sum(
            1 for customer in self.iter_unordered() if customer.contains(pattern)
        )

    def support(self, pattern: Sequence) -> float:
        if not self.num_customers:
            return 0.0
        return self.support_count(pattern) / self.num_customers

    def stats(self) -> DatabaseStats:
        """Table 2 statistics from the manifest (no scan needed)."""
        m = self._manifest
        return DatabaseStats.from_totals(
            num_customers=m["num_customers"],
            num_transactions=m["num_transactions"],
            num_items_total=m["num_items_total"],
            num_distinct_items=m["num_distinct_items"],
        )

    def disk_bytes(self) -> int:
        """Total size of the partition (and overlay) files on disk."""
        return sum(
            path.stat().st_size
            for path in [*self.partition_paths, *self.overlay_paths()]
        )

    def to_memory(self) -> SequenceDatabase:
        """Materialize the whole database in memory (tests, small data)."""
        return SequenceDatabase(list(self))

    # ------------------------------------------------------------------ #
    # Appending deltas (the incremental-mining substrate)
    # ------------------------------------------------------------------ #

    def _append_watermarks(self) -> tuple[int, set[int]]:
        """``(max_customer_id, vocabulary)`` for an append.

        Both live in the manifest for databases created since they were
        introduced; for an older manifest they are recovered with one
        streaming scan and persisted immediately, so the scan happens at
        most once per database (not once per caller)."""
        max_id = self._manifest.get("max_customer_id")
        vocabulary = self._manifest.get("vocabulary")
        if max_id is not None and vocabulary is not None:
            return max_id, set(vocabulary)
        max_id = 0
        items: set[int] = set()
        for customer in self.iter_unordered():
            if customer.customer_id > max_id:
                max_id = customer.customer_id
            for event in customer.events:
                items.update(event)
        manifest = dict(self._manifest)
        manifest["max_customer_id"] = max_id
        manifest["vocabulary"] = sorted(items)
        _write_manifest(self.directory / MANIFEST_NAME, manifest)
        self._manifest = manifest
        return max_id, items

    def _missing_customer_ids(self, ids: set[int]) -> set[int]:
        """The subset of ``ids`` that no existing partition holds; stops
        scanning as soon as every id is accounted for."""
        remaining = set(ids)
        for path in self.partition_paths:
            if not remaining:
                break
            for customer_id, _events in BinlogReader(path):
                remaining.discard(customer_id)
                if not remaining:
                    break
        return remaining

    def max_customer_id(self) -> int:
        """The highest customer id in the database — the watermark an
        append uses to split a delta into overlays (id ≤ max) and new
        customers (id > max)."""
        return self._append_watermarks()[0]

    def append_delta(
        self,
        customers: Iterable[CustomerSequence],
        *,
        partitions: int = 1,
    ) -> dict:
        """Append one delta generation without rewriting existing files.

        ``customers`` must arrive in ascending ``customer_id`` order. Ids
        above the database's current maximum are **new customers** and
        stream round-robin into ``partitions`` fresh binlog partitions;
        ids at or below it are **overlay records** — their events are the
        customer's *additional* (later) transactions and are spliced onto
        the existing sequence during iteration. Every overlay id must
        belong to an existing customer: a delta containing overlays is
        validated with one streaming id scan of the existing partitions
        (overlay-free appends — the common growth path — skip it), and a
        dangling id fails the whole append with nothing recorded.

        Returns the manifest entry of the appended delta. The base
        partitions, earlier deltas, and any mining-state snapshot are
        untouched; re-mining (full or incremental) sees the merged
        database.
        """
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        max_id, vocabulary = self._append_watermarks()
        generation = self.generation + 1
        overlay_path = self.directory / delta_overlay_file_name(generation)
        part_paths = [
            self.directory / delta_partition_file_name(generation, i)
            for i in range(partitions)
        ]
        writers: list[BinlogWriter] = []
        overlay_writer: BinlogWriter | None = None
        overlay_ids: set[int] = set()
        num_new = 0
        num_overlay = 0
        num_transactions = 0
        num_items_total = 0
        last_id: int | None = None
        try:
            for customer in customers:
                if last_id is not None and customer.customer_id <= last_id:
                    raise ValueError(
                        f"delta customers must arrive in ascending id order "
                        f"(got {customer.customer_id} after {last_id})"
                    )
                last_id = customer.customer_id
                if not customer.events:
                    raise ValueError(
                        f"delta record for customer {customer.customer_id} "
                        f"has no transactions"
                    )
                if customer.customer_id <= max_id:
                    if overlay_writer is None:
                        overlay_writer = BinlogWriter(overlay_path)
                    overlay_writer.append(customer.customer_id, customer.events)
                    overlay_ids.add(customer.customer_id)
                    num_overlay += 1
                else:
                    if not writers:
                        writers = [BinlogWriter(path) for path in part_paths]
                    writers[num_new % partitions].append(
                        customer.customer_id, customer.events
                    )
                    num_new += 1
                num_transactions += len(customer.events)
                for event in customer.events:
                    num_items_total += len(event)
                    vocabulary.update(event)
        except BaseException:
            for writer in writers:
                writer.abort()
            if overlay_writer is not None:
                overlay_writer.abort()
            raise
        for writer in writers:
            writer.close()
        if overlay_writer is not None:
            overlay_writer.close()
        if num_overlay:
            dangling = self._missing_customer_ids(overlay_ids)
            if dangling:
                # Fail the append wholesale: a silently half-applied
                # delta (overlays that no iteration would ever splice)
                # must not read back as appended data.
                overlay_path.unlink()
                for path in part_paths:
                    if path.exists():
                        path.unlink()
                raise ValueError(
                    f"overlay records reference customers that do not "
                    f"exist: {sorted(dangling)[:5]}"
                )
        if not writers:
            # No new customers: drop the unused partition files entirely
            # rather than recording empty ones.
            part_paths = []
        entry = {
            "generation": generation,
            "partitions": len(part_paths),
            "num_new_customers": num_new,
            "num_overlay_customers": num_overlay,
            # Id watermark when this delta was appended: ids above it are
            # customers that did not exist before this generation.
            "max_customer_id_before": max_id,
        }
        manifest = dict(self._manifest)
        manifest["num_customers"] = manifest["num_customers"] + num_new
        manifest["num_transactions"] = (
            manifest["num_transactions"] + num_transactions
        )
        manifest["num_items_total"] = manifest["num_items_total"] + num_items_total
        manifest["num_distinct_items"] = len(vocabulary)
        manifest["max_customer_id"] = max(
            max_id, last_id if last_id is not None else 0
        )
        manifest["vocabulary"] = sorted(vocabulary)
        manifest["deltas"] = list(manifest.get("deltas", ())) + [entry]
        _write_manifest(self.directory / MANIFEST_NAME, manifest)
        self._manifest = manifest
        for path in part_paths:
            self.partition_paths.append(path)
            self._partition_generations.append(generation)
        self._overlay_cache = None
        return entry

    def delta_since(self, generation: int) -> "DeltaView":
        """Everything appended after ``generation`` (see :class:`DeltaView`)."""
        if not 0 <= generation <= self.generation:
            raise ValueError(
                f"generation {generation} out of range 0..{self.generation}"
            )
        return DeltaView(self, generation)

    # ------------------------------------------------------------------ #
    # Transformation phase (streamed, partition by partition)
    # ------------------------------------------------------------------ #

    def transform(
        self, catalog: LitemsetCatalogLike
    ) -> "PartitionedTransformedDatabase":
        """The transformation phase, streamed: raw partition in,
        transformed binlog partition out (litemset-id events, empty
        transactions dropped, empty customers dropped). Mirrors
        :func:`repro.db.transform.transform_database` exactly — including
        keeping the *original* customer count as the support denominator.
        """
        transformed_dir = self.directory / "transformed"
        transformed_dir.mkdir(parents=True, exist_ok=True)
        paths: list[Path] = []
        counts: list[int] = []
        max_sequence_length = 0
        num_transformed = 0
        for index in range(self.num_partitions):
            path = transformed_dir / transformed_file_name(index)
            with BinlogWriter(path) as writer:
                for customer in self.iter_partition(index):
                    events = []
                    for event in customer.events:
                        ids = catalog.contained_ids(event)
                        if ids:
                            events.append(tuple(sorted(ids)))
                    if events:
                        writer.append(customer.customer_id, events)
                        if len(events) > max_sequence_length:
                            max_sequence_length = len(events)
                paths.append(path)
                counts.append(writer.num_records)
                num_transformed += writer.num_records
            stale = transformed_dir / compiled_cache_name(index)
            if stale.exists():
                stale.unlink()  # cached compile of a previous catalog
        sequences = PartitionedSequences(paths, counts)
        return PartitionedTransformedDatabase(
            sequences=sequences,
            num_customers=self.num_customers,
            num_transformed=num_transformed,
            catalog=catalog,
            max_sequence_length=max_sequence_length,
        )


@dataclass(frozen=True, slots=True)
class DeltaView:
    """What changed in a :class:`PartitionedDatabase` after ``since``.

    The incremental miner (:mod:`repro.incremental.update`) counts
    retained candidates against exactly this view instead of rescanning
    the base: customer support is additive across disjoint customer
    sets, and an overlaid customer's contribution change is the
    difference between its merged and its pre-delta sequence —

    ``new_count(s) = old_count(s) + count(s, additions) − count(s, removals)``

    where :meth:`additions` is the new customers plus the touched
    customers' merged sequences and :meth:`removals` is the touched
    customers' pre-delta sequences.
    """

    db: PartitionedDatabase
    since: int

    @property
    def is_empty(self) -> bool:
        return self.db.generation <= self.since

    def new_customers(self) -> Iterator[CustomerSequence]:
        """Customers introduced after ``since`` (later overlays merged)."""
        for index, generation in enumerate(self.db._partition_generations):
            if generation > self.since:
                yield from self.db.iter_partition(index)

    def touched_customers(
        self,
    ) -> list[tuple[CustomerSequence, CustomerSequence]]:
        """``(pre-delta, merged)`` sequence pairs of every customer that
        existed at ``since`` and gained overlay transactions afterwards.

        Fetching the pre-delta sequences streams the ≤ ``since``
        partitions once, materializing only the touched customers —
        an I/O pass over the old data, but no candidate counting."""
        touched: set[int] = set()
        watermark: int | None = None
        for delta in self.db._manifest.get("deltas", ()):
            if delta["generation"] > self.since and watermark is None:
                watermark = delta["max_customer_id_before"]
        for generation, overlay in self.db._overlays():
            if generation > self.since:
                touched.update(
                    cid for cid in overlay
                    if watermark is None or cid <= watermark
                )
        if not touched:
            return []
        pairs: list[tuple[CustomerSequence, CustomerSequence]] = []
        remaining = set(touched)
        for index, generation in enumerate(self.db._partition_generations):
            if generation > self.since or not remaining:
                continue
            for customer_id, events in BinlogReader(
                self.db.partition_paths[index]
            ):
                if customer_id not in remaining:
                    continue
                remaining.discard(customer_id)
                pairs.append(
                    (
                        CustomerSequence(
                            customer_id=customer_id,
                            events=self.db._merged_events(
                                customer_id, events, self.since
                            ),
                        ),
                        CustomerSequence(
                            customer_id=customer_id,
                            events=self.db._merged_events(
                                customer_id, events, None
                            ),
                        ),
                    )
                )
        if remaining:
            raise ValueError(
                f"overlay records reference customers that do not exist: "
                f"{sorted(remaining)[:5]}"
            )
        return pairs

    def additions(self) -> list[CustomerSequence]:
        """New customers plus touched customers' merged sequences."""
        merged = [after for _before, after in self.touched_customers()]
        return [*self.new_customers(), *merged]

    def removals(self) -> list[CustomerSequence]:
        """Touched customers' pre-delta sequences (their support
        contribution is superseded by the merged form in
        :meth:`additions`)."""
        return [before for before, _after in self.touched_customers()]


class PartitionedSequences:
    """The transformed database as disk partitions — the out-of-core
    countable.

    This is what the counting layer sees instead of a list of transformed
    sequences: ``len()`` is the transformed customer count, iteration
    streams event tuples partition by partition, and
    :meth:`load_prepared` returns one partition in the form the active
    strategy counts fastest — the raw event list (hashtree/naive), the
    bitset-compiled partition (bitset; deserialized from the on-disk
    compile cache), or the vertical inversion of that compiled partition
    (vertical). :meth:`prepare` is the once-per-run hook that builds the
    compile cache; it is idempotent, so forward, on-the-fly and backward
    passes can all call through :meth:`~repro.core.phase.CountingOptions.
    prepare_sequences` freely.

    Instances are tiny (paths and counts) and picklable, which is how the
    parallel executor ships them: workers get the *description* of the
    database and open partition files themselves.
    """

    def __init__(self, paths: list[Path], counts: list[int]) -> None:
        self.paths = [Path(p) for p in paths]
        self.counts = list(counts)
        self.strategy: CountingStrategy = "hashtree"

    @property
    def num_partitions(self) -> int:
        return len(self.paths)

    def __len__(self) -> int:
        return sum(self.counts)

    def iter_partition(self, index: int) -> Iterator[tuple[frozenset[int], ...]]:
        """Stream one partition's transformed sequences."""
        for _customer_id, events in BinlogReader(self.paths[index]):
            yield tuple(frozenset(event) for event in events)

    def __iter__(self) -> Iterator[tuple[frozenset[int], ...]]:
        for index in range(self.num_partitions):
            yield from self.iter_partition(index)

    # ------------------------------------------------------------------ #
    # Strategy preparation (the out-of-core compile cache)
    # ------------------------------------------------------------------ #

    def _cache_path(self, index: int) -> Path:
        return self.paths[index].with_name(compiled_cache_name(index))

    @property
    def length2_form(self) -> CountingStrategy:
        """Which prepared form the length-2 occurring-pairs sweep loads:
        the compiled partition when the run's strategy keeps a compile
        cache, the raw partition otherwise. Lives here so serial and
        parallel length-2 counting cannot drift apart."""
        return "bitset" if self.strategy in ("bitset", "vertical") else "hashtree"

    def prepare(self, strategy: CountingStrategy) -> "PartitionedSequences":
        """Record the run's strategy; build the on-disk compile cache.

        For ``bitset`` and ``vertical`` every partition is compiled into
        the bitmask form exactly once and pickled next to its binlog;
        every later pass (serial or in a worker process) deserializes the
        compiled partition instead of recompiling. The scanning
        strategies need no preparation.
        """
        self.strategy = strategy
        if strategy in ("bitset", "vertical"):
            from repro.core.bitset import CompiledDatabase

            for index in range(self.num_partitions):
                cache = self._cache_path(index)
                if cache.exists():
                    continue
                compiled = CompiledDatabase.compile(
                    list(self.iter_partition(index))
                )
                # Atomic: load_prepared dispatches on cache.exists(), so
                # a half-written pickle must never be visible under the
                # final name (a crashed prepare() simply recompiles).
                with atomic_writer(cache, "wb") as handle:
                    pickle.dump(compiled, handle, protocol=pickle.HIGHEST_PROTOCOL)
        return self

    def load_prepared(
        self, index: int, strategy: CountingStrategy | None = None
    ) -> object:
        """One partition in the active strategy's countable form.

        The caller owns the returned object and drops it after the
        partition's counts are merged — peak memory is one partition.
        """
        strategy = self.strategy if strategy is None else strategy
        if strategy in ("bitset", "vertical"):
            cache = self._cache_path(index)
            if cache.exists():
                with open(cache, "rb") as handle:
                    compiled = pickle.load(handle)
            else:  # raw engine call without prepare(): compile transiently
                from repro.core.bitset import CompiledDatabase

                compiled = CompiledDatabase.compile(
                    list(self.iter_partition(index))
                )
            if strategy == "vertical":
                from repro.core.vertical import ensure_vertical

                return ensure_vertical(compiled)
            return compiled
        return list(self.iter_partition(index))

    def iter_prepared(
        self, strategy: CountingStrategy | None = None
    ) -> Iterator[object]:
        """Yield every partition in prepared form, one at a time."""
        for index in range(self.num_partitions):
            yield self.load_prepared(index, strategy)


@dataclass(frozen=True, slots=True)
class PartitionedTransformedDatabase:
    """The transformed database DT, on disk.

    Field-compatible with :class:`~repro.db.transform.TransformedDatabase`
    everywhere the sequence phase looks: ``sequences`` (here the
    partitioned countable), ``num_customers`` (the support denominator —
    still the *original* count), ``catalog`` and
    ``max_sequence_length``.
    """

    sequences: PartitionedSequences
    num_customers: int
    num_transformed: int
    catalog: LitemsetCatalogLike
    max_sequence_length: int

    def __len__(self) -> int:
        return self.num_transformed

    @property
    def num_dropped_customers(self) -> int:
        return self.num_customers - self.num_transformed


def write_partitions_from_spmf(
    source: str | Path,
    directory: str | Path,
    *,
    partitions: int,
    overwrite: bool = False,
) -> PartitionedDatabase:
    """Stream an SPMF file into a partitioned database (never holds the
    whole dataset in memory)."""
    from repro.io.spmf import iter_spmf

    return PartitionedDatabase.create(
        directory, iter_spmf(source), partitions=partitions, overwrite=overwrite
    )


def write_partitions_from_csv(
    source: str | Path,
    directory: str | Path,
    *,
    partitions: int,
    overwrite: bool = False,
) -> PartitionedDatabase:
    """Load a CSV transaction table and partition it. CSV rows are
    unsorted by contract, so this path sorts in memory first (the sort
    phase); use SPMF or ``generate --stream-out`` for larger-than-memory
    sources."""
    from repro.io.csvio import read_database_csv

    db = read_database_csv(source)
    return PartitionedDatabase.from_database(
        db, directory, partitions=partitions, overwrite=overwrite
    )
