"""Raw transaction records — the input format of the mining pipeline.

The paper's input is a relational table with columns ``customer-id``,
``transaction-time`` and ``the items purchased in the transaction``.
:class:`Transaction` models one such row. The *sort phase* (phase 1 of the
five-phase method) turns an unordered bag of these rows into customer
sequences; that lives in :mod:`repro.db.database`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sequence import Itemset, make_itemset


class RecordError(ValueError):
    """Raised for malformed transaction records."""


@dataclass(frozen=True, slots=True, order=True)
class Transaction:
    """One row of the customer-transaction table.

    Ordering is ``(customer_id, transaction_time)`` — exactly the sort key
    of the paper's sort phase — so a list of transactions can be sorted
    directly.
    """

    customer_id: int
    transaction_time: int
    items: Itemset = field(compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.customer_id, int) or isinstance(self.customer_id, bool):
            raise RecordError(f"customer_id must be an int, got {self.customer_id!r}")
        if not isinstance(self.transaction_time, int) or isinstance(
            self.transaction_time, bool
        ):
            raise RecordError(
                f"transaction_time must be an int, got {self.transaction_time!r}"
            )
        try:
            canonical = make_itemset(self.items)
        except ValueError as exc:
            raise RecordError(str(exc)) from exc
        object.__setattr__(self, "items", canonical)


def merge_transactions(first: Transaction, second: Transaction) -> Transaction:
    """Merge two same-customer, same-time transactions by item union.

    The paper assumes no customer has two transactions with the same
    transaction-time; real data violates that, so the sort phase merges
    them (a customer buying in two stores at the same minute is one event).
    """
    if (first.customer_id, first.transaction_time) != (
        second.customer_id,
        second.transaction_time,
    ):
        raise RecordError("can only merge transactions with equal (customer, time)")
    return Transaction(
        customer_id=first.customer_id,
        transaction_time=first.transaction_time,
        items=make_itemset(first.items + second.items),
    )
