"""``seqmine fsck``: validate and repair a partitioned-database directory.

The durability design (:mod:`repro.io.atomic`, the binlog footer) makes
every on-disk artifact either complete or detectably broken; fsck is
the tool that walks a directory and acts on what it detects. Damage is
handled at the smallest possible blast radius:

* **Interrupted writes** — ``*.tmp`` orphans from atomic writes that
  never committed, and delta partition files whose append never
  reached its manifest commit — are removed and reported: they were
  never part of the database.
* **The base** — the manifest and the base partitions — is
  load-bearing for everything; if it is missing or corrupt, fsck fails
  with a one-line error (there is nothing safe to repair *to*).
* **Delta generations** are transactional suffixes: if generation G's
  files are corrupt, fsck *quarantines* G and every later generation
  (renames each file to ``*.quarantined``, preserving the evidence)
  and rewrites the manifest rolled back to generation G−1, with
  statistics recomputed by a streaming scan of the survivors. The
  database reopens as it was before the damaged append.
* **The mining-state snapshot** is quarantined if unreadable, or if a
  rollback left it describing a generation the database no longer has.
* **Derived caches** (``transformed/`` binlogs and compiled pickles)
  are simply deleted when invalid — they are recomputed on the next
  mine.

Partition validation is full-strength: every surviving binlog is
checked with :meth:`~repro.io.binlog.BinlogReader.verify`, which
re-hashes the record region against the version-2 footer CRC — so bit
rot inside records is caught, not just truncation.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.io.binlog import BinlogFormatError, BinlogReader
from repro.db.partitioned import (
    MANIFEST_FORMAT,
    MANIFEST_NAME,
    MANIFEST_VERSION,
    MINING_STATE_NAME,
    _write_manifest,
    delta_overlay_file_name,
    delta_partition_file_name,
    partition_file_name,
)

__all__ = ["FsckReport", "QUARANTINE_SUFFIX", "fsck_directory"]

#: Appended to a damaged file's name instead of deleting it: the
#: evidence survives for post-mortems, while every reader (which
#: matches exact names from the manifest) stops seeing it.
QUARANTINE_SUFFIX = ".quarantined"


@dataclass(slots=True)
class FsckReport:
    """What ``fsck`` found and did; ``clean`` means nothing was wrong."""

    directory: Path
    checked_files: int = 0
    problems: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)
    rolled_back_to_generation: int | None = None

    @property
    def clean(self) -> bool:
        return not self.problems

    def lines(self) -> list[str]:
        """The CLI's stdout rendering, one finding per line."""
        out = [f"fsck {self.directory}: checked {self.checked_files} files"]
        for problem in self.problems:
            out.append(f"  problem: {problem}")
        for name in self.removed:
            out.append(f"  removed: {name}")
        for name in self.quarantined:
            out.append(f"  quarantined: {name}")
        if self.rolled_back_to_generation is not None:
            out.append(
                f"  rolled back to generation {self.rolled_back_to_generation}"
            )
        out.append("clean" if self.clean else "repaired")
        return out


def _quarantine(path: Path, report: FsckReport) -> None:
    if path.exists():
        path.replace(path.with_name(path.name + QUARANTINE_SUFFIX))
        report.quarantined.append(path.name)


def _verify_binlog(path: Path) -> str | None:
    """``None`` if ``path`` is a fully valid binlog, else the problem."""
    if not path.exists():
        return f"{path.name}: missing"
    try:
        BinlogReader(path).verify()
    except BinlogFormatError as exc:
        return str(exc)
    return None


def _read_manifest_strict(directory: Path) -> dict[str, Any]:
    """The manifest, or ``ValueError`` — manifest damage is fatal."""
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise ValueError(
            f"{directory} is not a partitioned database: missing {MANIFEST_NAME}"
        )
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{manifest_path}: not valid JSON: {exc}") from exc
    if (
        not isinstance(manifest, dict)
        or manifest.get("format") != MANIFEST_FORMAT
        or manifest.get("version") != MANIFEST_VERSION
        or not isinstance(manifest.get("partitions"), int)
    ):
        raise ValueError(
            f"{manifest_path}: not a version-{MANIFEST_VERSION} "
            f"partitioned-database manifest"
        )
    return manifest


def _delta_files(directory: Path, delta: dict[str, Any]) -> list[Path]:
    paths = [
        directory / delta_partition_file_name(delta["generation"], i)
        for i in range(delta.get("partitions", 0))
    ]
    if delta.get("num_overlay_customers", 0):
        paths.append(directory / delta_overlay_file_name(delta["generation"]))
    return paths


def _recompute_statistics(
    manifest: dict[str, Any],
    partition_paths: Iterable[Path],
    overlay_paths: Iterable[Path],
) -> None:
    """Rebuild the manifest's scan-derived totals from surviving files.

    Per-delta transaction/item totals are not stored in the manifest, so
    a rollback cannot subtract its way back — it rescans, streaming, and
    the result is exact by construction.
    """
    num_customers = 0
    num_transactions = 0
    num_items_total = 0
    vocabulary: set[int] = set()
    max_customer_id = 0
    for path in partition_paths:
        for customer_id, events in BinlogReader(path):
            num_customers += 1
            if customer_id > max_customer_id:
                max_customer_id = customer_id
            num_transactions += len(events)
            for event in events:
                num_items_total += len(event)
                vocabulary.update(event)
    for path in overlay_paths:
        # Overlay records extend existing customers: they add
        # transactions and items but never customers.
        for _customer_id, events in BinlogReader(path):
            num_transactions += len(events)
            for event in events:
                num_items_total += len(event)
                vocabulary.update(event)
    manifest["num_customers"] = num_customers
    manifest["num_transactions"] = num_transactions
    manifest["num_items_total"] = num_items_total
    manifest["num_distinct_items"] = len(vocabulary)
    manifest["max_customer_id"] = max_customer_id
    manifest["vocabulary"] = sorted(vocabulary)


def _remove_tmp_orphans(directory: Path, report: FsckReport) -> None:
    for scan_dir in (directory, directory / "transformed"):
        if not scan_dir.is_dir():
            continue
        for orphan in sorted(scan_dir.glob("*.tmp")):
            orphan.unlink()
            relative = orphan.relative_to(directory)
            report.problems.append(
                f"{relative}: interrupted write (orphaned temp file)"
            )
            report.removed.append(str(relative))


def _remove_uncommitted_deltas(
    directory: Path, manifest: dict[str, Any], report: FsckReport
) -> None:
    """Delete delta files no manifest entry commits to.

    These are the droppings of an append that crashed before its
    manifest replace — the database never contained them, and the next
    append will reuse their generation number.
    """
    committed = {
        path.name
        for delta in manifest.get("deltas", ())
        for path in _delta_files(directory, delta)
    }
    for path in sorted(directory.glob("delta-*.binlog")):
        if path.name not in committed:
            path.unlink()
            report.problems.append(
                f"{path.name}: uncommitted delta file (append never "
                f"reached its manifest commit)"
            )
            report.removed.append(path.name)


def _check_derived_caches(directory: Path, report: FsckReport) -> None:
    transformed = directory / "transformed"
    if not transformed.is_dir():
        return
    for path in sorted(transformed.glob("*.binlog")):
        report.checked_files += 1
        problem = _verify_binlog(path)
        if problem is not None:
            path.unlink()
            report.problems.append(f"transformed cache invalid: {problem}")
            report.removed.append(str(path.relative_to(directory)))
    for path in sorted(transformed.glob("*.pkl")):
        report.checked_files += 1
        try:
            pickle.loads(path.read_bytes())
        except Exception as exc:
            path.unlink()
            report.problems.append(
                f"{path.relative_to(directory)}: corrupt compiled cache: {exc}"
            )
            report.removed.append(str(path.relative_to(directory)))


def fsck_directory(directory: str | Path) -> FsckReport:
    """Validate ``directory``; repair what is repairable.

    Returns the report. Raises ``ValueError`` (one line, CLI-ready) only
    for unrepairable damage: a missing/corrupt manifest or a corrupt
    *base* partition.
    """
    directory = Path(directory)
    report = FsckReport(directory=directory)
    _remove_tmp_orphans(directory, report)

    manifest = _read_manifest_strict(directory)
    report.checked_files += 1

    base_paths = [
        directory / partition_file_name(i)
        for i in range(manifest["partitions"])
    ]
    for path in base_paths:
        report.checked_files += 1
        problem = _verify_binlog(path)
        if problem is not None:
            raise ValueError(f"base partition damaged beyond repair: {problem}")

    _remove_uncommitted_deltas(directory, manifest, report)

    deltas = list(manifest.get("deltas", ()))
    surviving: list[dict[str, Any]] = []
    rolled_back = False
    for position, delta in enumerate(deltas):
        problem = None
        for path in _delta_files(directory, delta):
            report.checked_files += 1
            problem = _verify_binlog(path)
            if problem is not None:
                break
        if problem is None:
            surviving.append(delta)
            continue
        # First damaged generation: quarantine it and every later one —
        # deltas are an ordered chain, and a chain with a hole is not
        # the database the manifest describes.
        report.problems.append(
            f"delta generation {delta['generation']} damaged: {problem}"
        )
        for later in deltas[position:]:
            for path in _delta_files(directory, later):
                _quarantine(path, report)
        rolled_back = True
        break

    good_generation = surviving[-1]["generation"] if surviving else 0
    if rolled_back:
        manifest["deltas"] = surviving
        overlay_paths = [
            directory / delta_overlay_file_name(delta["generation"])
            for delta in surviving
            if delta.get("num_overlay_customers", 0)
        ]
        partition_paths = list(base_paths)
        for delta in surviving:
            partition_paths.extend(
                directory / delta_partition_file_name(delta["generation"], i)
                for i in range(delta.get("partitions", 0))
            )
        _recompute_statistics(manifest, partition_paths, overlay_paths)
        _write_manifest(directory / MANIFEST_NAME, manifest)
        report.rolled_back_to_generation = good_generation

    state_path = directory / MINING_STATE_NAME
    if state_path.exists():
        from repro.io.state import MiningStateError, read_mining_state

        report.checked_files += 1
        try:
            state = read_mining_state(state_path)
        except MiningStateError as exc:
            report.problems.append(str(exc))
            _quarantine(state_path, report)
        else:
            if state.generation > good_generation:
                report.problems.append(
                    f"{MINING_STATE_NAME}: snapshot of generation "
                    f"{state.generation}, database rolled back to "
                    f"{good_generation}"
                )
                _quarantine(state_path, report)

    _check_derived_caches(directory, report)
    return report
