"""Transaction database substrate: records, sort phase, transformation."""
