"""Transaction database substrate: records, sort phase, transformation,
and the out-of-core partitioned database (:mod:`repro.db.partitioned`)."""
