"""Transaction database substrate: records, the sort phase, the
transformation phase, and the out-of-core partitioned database with
appendable delta generations (:mod:`repro.db.partitioned`).

The stable entry points re-exported here are the two database types —
in-memory :class:`SequenceDatabase` and disk-backed
:class:`PartitionedDatabase` (duck-type compatible everywhere the
pipeline looks) — their shared record types, and the support-threshold
arithmetic every algorithm, oracle and test derives its integer cutoff
from.
"""

from repro.db.database import (
    CustomerSequence,
    DatabaseStats,
    SequenceDatabase,
    support_threshold,
)
from repro.db.partitioned import DeltaView, PartitionedDatabase
from repro.db.records import Transaction
from repro.db.transform import TransformedDatabase, transform_database

__all__ = [
    "CustomerSequence",
    "DatabaseStats",
    "DeltaView",
    "PartitionedDatabase",
    "SequenceDatabase",
    "Transaction",
    "TransformedDatabase",
    "support_threshold",
    "transform_database",
]
