"""The transformation phase (phase 3).

Replaces every transaction of every customer by the *set of litemset ids
contained in it*, so that sequence-phase containment becomes ordered set
membership instead of repeated subset tests. Transactions containing no
litemset are dropped; customers left with no transactions are dropped from
the transformed view — but the support denominator stays the original
customer count, because a dropped customer simply supports nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.db.database import SequenceDatabase
from repro.itemsets.litemsets import LitemsetCatalog

if TYPE_CHECKING:
    from repro.db.partitioned import (
        PartitionedDatabase,
        PartitionedTransformedDatabase,
    )

#: A transformed customer sequence: one frozenset of litemset ids per
#: surviving transaction.
TransformedSequence = tuple[frozenset[int], ...]


@dataclass(frozen=True, slots=True)
class TransformedDatabase:
    """The transformed database DT of the paper.

    ``sequences`` holds only customers with at least one surviving
    transaction; ``num_customers`` is the *original* customer count, which
    is the denominator for all supports.
    """

    sequences: tuple[TransformedSequence, ...]
    customer_ids: tuple[int, ...]
    num_customers: int
    catalog: LitemsetCatalog

    def __len__(self) -> int:
        return len(self.sequences)

    @property
    def max_sequence_length(self) -> int:
        """Longest transformed customer sequence (bounds pattern length)."""
        return max((len(s) for s in self.sequences), default=0)

    @property
    def num_dropped_customers(self) -> int:
        return self.num_customers - len(self.sequences)


def transform_database(
    db: SequenceDatabase | PartitionedDatabase, catalog: LitemsetCatalog
) -> TransformedDatabase | PartitionedTransformedDatabase:
    """Run the transformation phase over ``db`` using ``catalog``.

    ``db`` is either an in-memory :class:`SequenceDatabase` (returns a
    :class:`TransformedDatabase`) or a disk-backed
    :class:`~repro.db.partitioned.PartitionedDatabase` (returns a
    :class:`~repro.db.partitioned.PartitionedTransformedDatabase`, the
    transformation itself streamed partition by partition).
    """
    if not isinstance(db, SequenceDatabase):
        from repro.db.partitioned import PartitionedDatabase

        if isinstance(db, PartitionedDatabase):
            return db.transform(catalog)
        raise TypeError(f"cannot transform {type(db).__name__}")
    sequences: list[TransformedSequence] = []
    customer_ids: list[int] = []
    for customer in db:
        events = []
        for event in customer.events:
            ids = catalog.contained_ids(event)
            if ids:
                events.append(ids)
        if events:
            sequences.append(tuple(events))
            customer_ids.append(customer.customer_id)
    return TransformedDatabase(
        sequences=tuple(sequences),
        customer_ids=tuple(customer_ids),
        num_customers=db.num_customers,
        catalog=catalog,
    )
