"""The customer-sequence database and the sort phase (phase 1).

:class:`SequenceDatabase` is the substrate every later phase works on: the
result of sorting the raw transaction table by ``(customer_id,
transaction_time)`` and grouping it into one ordered event list per
customer. It also owns the support arithmetic — support in this paper is a
fraction of *customers*, and the integer threshold derived from a
fractional ``minsup`` is used identically by every algorithm, the oracle,
and the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence as PySequence

from repro.core.sequence import (
    Itemset,
    Sequence,
    make_itemset,
    sequence_contains,
)
from repro.db.records import RecordError, Transaction, merge_transactions


@dataclass(frozen=True, slots=True)
class CustomerSequence:
    """One customer's ordered transaction history (times already applied)."""

    customer_id: int
    events: tuple[Itemset, ...]

    def as_sequence(self) -> Sequence:
        """View this history as a pattern-space :class:`Sequence`."""
        return Sequence(self.events)

    def contains(self, pattern: Sequence) -> bool:
        """Itemset-aware containment of ``pattern`` in this history."""
        return sequence_contains(self.events, pattern.events)

    @property
    def num_transactions(self) -> int:
        return len(self.events)

    @property
    def num_items(self) -> int:
        return sum(len(event) for event in self.events)


@dataclass(frozen=True, slots=True)
class DatabaseStats:
    """Summary statistics, mirroring the columns of the paper's Table 2."""

    num_customers: int
    num_transactions: int
    num_items_total: int
    num_distinct_items: int
    avg_transactions_per_customer: float
    avg_items_per_transaction: float
    approx_size_mb: float

    def as_row(self) -> dict[str, float | int]:
        return {
            "customers": self.num_customers,
            "transactions": self.num_transactions,
            "avg_trans_per_cust": round(self.avg_transactions_per_customer, 2),
            "avg_items_per_trans": round(self.avg_items_per_transaction, 2),
            "distinct_items": self.num_distinct_items,
            "size_mb": round(self.approx_size_mb, 2),
        }

    @classmethod
    def from_totals(
        cls,
        *,
        num_customers: int,
        num_transactions: int,
        num_items_total: int,
        num_distinct_items: int,
    ) -> "DatabaseStats":
        """Assemble the row from raw totals — the single home of the
        derived ratios and the paper-style size estimate (4 bytes per
        item id plus 8 bytes of per-transaction framing), shared by the
        in-memory scan and the partitioned manifest."""
        approx_bytes = num_items_total * 4 + num_transactions * 8
        return cls(
            num_customers=num_customers,
            num_transactions=num_transactions,
            num_items_total=num_items_total,
            num_distinct_items=num_distinct_items,
            avg_transactions_per_customer=(
                num_transactions / num_customers if num_customers else 0.0
            ),
            avg_items_per_transaction=(
                num_items_total / num_transactions if num_transactions else 0.0
            ),
            approx_size_mb=approx_bytes / (1024 * 1024),
        )


def support_threshold(minsup: float, num_customers: int) -> int:
    """Integer customer count a sequence must reach for support ``minsup``.

    ``minsup`` is a fraction in (0, 1]. The threshold is the smallest
    integer count whose fraction of customers is ≥ ``minsup``; a tiny
    epsilon guards against float artifacts when ``minsup * num_customers``
    is integral (e.g. 0.25 × 8 must give 2, not 3).
    """
    if not 0.0 < minsup <= 1.0:
        raise ValueError(f"minsup must be in (0, 1], got {minsup}")
    if num_customers < 0:
        raise ValueError("num_customers must be non-negative")
    return max(1, math.ceil(minsup * num_customers - 1e-9))


class SequenceDatabase:
    """A database of customer sequences (output of the sort phase)."""

    def __init__(self, customers: Iterable[CustomerSequence]) -> None:
        ordered = sorted(customers, key=lambda c: c.customer_id)
        ids = [c.customer_id for c in ordered]
        if len(set(ids)) != len(ids):
            raise RecordError("duplicate customer_id in database")
        self._customers: tuple[CustomerSequence, ...] = tuple(ordered)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_transactions(
        cls, transactions: Iterable[Transaction], *, merge_same_time: bool = True
    ) -> "SequenceDatabase":
        """The sort phase: order rows by (customer, time), group, merge.

        ``merge_same_time=False`` raises on duplicate timestamps instead of
        merging, for callers that want strict paper semantics.
        """
        rows = sorted(transactions)
        customers: list[CustomerSequence] = []
        current_id: int | None = None
        pending: list[Transaction] = []

        def flush() -> None:
            if current_id is None:
                return
            customers.append(
                CustomerSequence(
                    customer_id=current_id,
                    events=tuple(t.items for t in pending),
                )
            )

        for row in rows:
            if row.customer_id != current_id:
                flush()
                current_id = row.customer_id
                pending = [row]
                continue
            if pending and row.transaction_time == pending[-1].transaction_time:
                if not merge_same_time:
                    raise RecordError(
                        f"customer {row.customer_id} has two transactions at "
                        f"time {row.transaction_time}"
                    )
                pending[-1] = merge_transactions(pending[-1], row)
            else:
                pending.append(row)
        flush()
        return cls(customers)

    @classmethod
    def from_sequences(
        cls,
        sequences: Iterable[PySequence[Iterable[int]]]
        | Mapping[int, PySequence[Iterable[int]]],
    ) -> "SequenceDatabase":
        """Build directly from event lists, assigning customer ids 1..n.

        Accepts either an iterable of event lists (ids auto-assigned) or a
        mapping of customer id → event list. Convenient for tests, examples
        and the synthetic generator.
        """
        if isinstance(sequences, Mapping):
            items = sequences.items()
        else:
            items = enumerate(sequences, start=1)
        customers = [
            CustomerSequence(
                customer_id=cid,
                events=tuple(make_itemset(event) for event in events),
            )
            for cid, events in items
        ]
        return cls(customers)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    @property
    def customers(self) -> tuple[CustomerSequence, ...]:
        return self._customers

    @property
    def num_customers(self) -> int:
        return len(self._customers)

    def __len__(self) -> int:
        return len(self._customers)

    def __iter__(self) -> Iterator[CustomerSequence]:
        return iter(self._customers)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SequenceDatabase):
            return NotImplemented
        return self._customers == other._customers

    def threshold(self, minsup: float) -> int:
        """Customer-count threshold for fractional ``minsup`` over this DB."""
        return support_threshold(minsup, self.num_customers)

    def item_vocabulary(self) -> frozenset[int]:
        """All distinct items appearing anywhere in the database."""
        return frozenset(
            item
            for customer in self._customers
            for event in customer.events
            for item in event
        )

    def support_count(self, pattern: Sequence) -> int:
        """Direct (un-transformed) support count of ``pattern``.

        One database scan with the itemset-aware containment test; used for
        verification and for reporting exact supports of mined patterns.
        """
        return sum(1 for c in self._customers if c.contains(pattern))

    def support(self, pattern: Sequence) -> float:
        """Support of ``pattern`` as a fraction of customers."""
        if not self._customers:
            return 0.0
        return self.support_count(pattern) / self.num_customers

    def stats(self) -> DatabaseStats:
        """Summary statistics in the shape of the paper's Table 2."""
        return DatabaseStats.from_totals(
            num_customers=len(self._customers),
            num_transactions=sum(c.num_transactions for c in self._customers),
            num_items_total=sum(c.num_items for c in self._customers),
            num_distinct_items=len(self.item_vocabulary()),
        )
