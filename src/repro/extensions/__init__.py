"""Extensions beyond the 1995 paper (its stated future work)."""
