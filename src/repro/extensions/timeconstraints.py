"""Time-constrained sequential pattern mining — the paper's future work.

The conclusion of the 1995 paper sketches three generalizations that the
authors later published as GSP (EDBT 1996): *maximum/minimum time gaps*
between adjacent pattern elements, and a *sliding window* allowing one
pattern element to be drawn from several nearby transactions. This module
implements those semantics on top of the library's substrates:

* ``min_gap`` — the start of element *i+1* must come strictly more than
  ``min_gap`` time units after the end of element *i*;
* ``max_gap`` — the end of element *i+1* must come within ``max_gap``
  time units of the start of element *i* (``None`` = unconstrained);
* ``window_size`` — the transactions matching one element may span up to
  ``window_size`` time units; their union must contain the element.

Two structural consequences, handled faithfully here:

1. With a window, the litemset phase itself changes — an itemset split
   across two nearby transactions still supports the pattern element — so
   litemsets are counted over per-customer *window unions*.
2. With a ``max_gap``, support is no longer anti-monotone under deleting
   a *middle* element (removing it can fuse two small gaps into one too
   large), so candidates are pruned only through the join (prefix and
   suffix truncations remain safe). For the same reason the answer is the
   set of **all** frequent sequences, as in GSP, rather than only maximal
   ones.

With all constraints at their defaults (no gaps, no window) the result is
exactly the set of large sequences of the core pipeline — a property the
tests enforce against the brute-force oracle.

Counting backends: the candidate-containment pass accepts the same
``strategy`` knob as the core pipeline. ``"bitset"`` compiles each timed
history **once per run** into a :class:`CompiledTimedSequence` — per-item
occurrence bitmasks over the transaction axis — so the windowless
(``window_size == 0``) element-matching step becomes one mask AND per
element instead of a per-candidate rescan of every transaction; with a
window the compiled form falls back to the generic window sweep over its
retained events. ``"hashtree"`` and ``"naive"`` both run the plain
per-candidate loop (there is no hash tree over event-tuple candidates).
All strategies produce identical supports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence as PySequence

from repro.miner import Pattern
from repro.core.sequence import Itemset, Sequence
from repro.db.database import support_threshold
from repro.db.records import Transaction, merge_transactions
from repro.itemsets.apriori import generate_candidate_itemsets
from repro.itemsets.hashtree import ItemsetHashTree

#: One customer's timed history: ((time, items), ...) in time order.
TimedEvents = tuple[tuple[int, frozenset[int]], ...]
#: A candidate sequence over expanded events.
EventTuple = tuple[frozenset[int], ...]


@dataclass(frozen=True, slots=True)
class TimeConstraints:
    """GSP-style matching constraints (all in transaction-time units)."""

    min_gap: int = 0
    max_gap: int | None = None
    window_size: int = 0

    def __post_init__(self) -> None:
        if self.min_gap < 0:
            raise ValueError("min_gap must be >= 0")
        if self.window_size < 0:
            raise ValueError("window_size must be >= 0")
        if self.max_gap is not None:
            if self.max_gap <= 0:
                raise ValueError("max_gap must be positive (or None)")
            if self.max_gap <= self.min_gap:
                raise ValueError("max_gap must exceed min_gap")

    @property
    def unconstrained(self) -> bool:
        return self.min_gap == 0 and self.max_gap is None and self.window_size == 0


def build_timed_sequences(
    transactions: Iterable[Transaction],
) -> list[TimedEvents]:
    """Sort phase for timed mining: per-customer (time, items) histories."""
    rows = sorted(transactions)
    sequences: list[TimedEvents] = []
    current_id: int | None = None
    pending: list[Transaction] = []

    def flush() -> None:
        if current_id is None:
            return
        sequences.append(
            tuple((t.transaction_time, frozenset(t.items)) for t in pending)
        )

    for row in rows:
        if row.customer_id != current_id:
            flush()
            current_id = row.customer_id
            pending = [row]
        elif pending and row.transaction_time == pending[-1].transaction_time:
            pending[-1] = merge_transactions(pending[-1], row)
        else:
            pending.append(row)
    flush()
    return sequences


def window_matches(
    events: TimedEvents, element: frozenset[int], window_size: int
) -> list[tuple[int, int]]:
    """All minimal windows matching one element.

    Returns ``(start_time, end_time)`` pairs: for every start transaction,
    the earliest end transaction such that the union of transactions in
    between (time span ≤ window_size) contains the element. Minimal ends
    dominate all longer ones for gap feasibility, so only they are
    returned.
    """
    matches: list[tuple[int, int]] = []
    n = len(events)
    for start in range(n):
        start_time = events[start][0]
        accumulated: set[int] = set()
        for end in range(start, n):
            end_time = events[end][0]
            if end_time - start_time > window_size:
                break
            accumulated |= events[end][1]
            if element <= accumulated:
                matches.append((start_time, end_time))
                break
    return matches


#: :func:`compile_timed` invocations since import — the test hook for the
#: once-per-run timed compilation contract (mirrors
#: :data:`repro.core.bitset.COMPILE_CALLS`).
TIMED_COMPILE_CALLS = 0


class CompiledTimedSequence:
    """One timed customer history compiled for repeated element matching.

    ``item_masks[item]`` has bit *i* set iff the item occurs in the *i*-th
    transaction; ``times`` are the (strictly increasing) transaction
    times. With ``window_size == 0`` an element's minimal windows are the
    transactions whose mask contains the AND of its items' masks — one
    big-int AND instead of a per-transaction subset scan per candidate
    probe. The raw events are retained for the windowed fallback.
    """

    __slots__ = ("times", "item_masks", "events")

    def __init__(
        self,
        times: tuple[int, ...],
        item_masks: dict[int, int],
        events: TimedEvents,
    ) -> None:
        self.times = times
        self.item_masks = item_masks
        self.events = events

    @classmethod
    def from_events(cls, events: TimedEvents) -> "CompiledTimedSequence":
        item_masks: dict[int, int] = {}
        for index, (_, items) in enumerate(events):
            bit = 1 << index
            for item in items:
                item_masks[item] = item_masks.get(item, 0) | bit
        return cls(tuple(t for t, _ in events), item_masks, events)

    def __getstate__(self) -> tuple[tuple[int, ...], dict[int, int], TimedEvents]:
        return (self.times, self.item_masks, self.events)

    def __setstate__(
        self, state: tuple[tuple[int, ...], dict[int, int], TimedEvents]
    ) -> None:
        self.times, self.item_masks, self.events = state

    def element_windows(
        self, element: frozenset[int], window_size: int
    ) -> list[tuple[int, int]]:
        """Minimal matching windows for one pattern element (the compiled
        equivalent of :func:`window_matches`)."""
        if window_size:
            return window_matches(self.events, element, window_size)
        # Seed with all valid transaction bits, not -1: an empty element
        # matches every transaction (as in window_matches), and the
        # extraction loop below must never walk bits past num_events.
        mask = (1 << len(self.times)) - 1
        for item in element:
            occ = self.item_masks.get(item)
            if occ is None:
                return []
            mask &= occ
        matches: list[tuple[int, int]] = []
        times = self.times
        while mask:
            low = mask & -mask
            at = times[low.bit_length() - 1]
            matches.append((at, at))
            mask ^= low
        return matches


def compile_timed(
    sequences: PySequence[TimedEvents],
) -> list[CompiledTimedSequence]:
    """Compile every timed history once for a whole mining run."""
    global TIMED_COMPILE_CALLS
    TIMED_COMPILE_CALLS += 1
    return [CompiledTimedSequence.from_events(events) for events in sequences]


def contains_timed(
    events: TimedEvents | CompiledTimedSequence,
    pattern: PySequence[frozenset[int]],
    constraints: TimeConstraints,
) -> bool:
    """Constraint-aware containment of ``pattern`` in a timed history.

    Depth-first search over the per-element minimal windows; with a
    max_gap a greedy match can fail where a later one succeeds, so plain
    greedy matching is not sufficient. Accepts a raw timed history or its
    compiled form (which resolves windowless element matches by mask AND).
    """
    if not pattern:
        return True
    if isinstance(events, CompiledTimedSequence):
        per_element = [
            events.element_windows(element, constraints.window_size)
            for element in pattern
        ]
    else:
        per_element = [
            window_matches(events, element, constraints.window_size)
            for element in pattern
        ]
    if any(not m for m in per_element):
        return False

    max_gap = constraints.max_gap
    min_gap = constraints.min_gap

    def search(index: int, prev_start: int, prev_end: int) -> bool:
        if index == len(pattern):
            return True
        for start_time, end_time in per_element[index]:
            if index > 0:
                if start_time <= prev_end + min_gap:
                    continue
                if max_gap is not None and end_time - prev_start > max_gap:
                    continue
            if search(index + 1, start_time, end_time):
                return True
        return False

    return search(0, 0, 0)


def _virtual_transactions(
    events: TimedEvents, window_size: int
) -> list[frozenset[int]]:
    """Maximal window unions per start transaction (for litemset counting)."""
    if window_size == 0:
        return [items for _, items in events]
    virtual: list[frozenset[int]] = []
    n = len(events)
    for start in range(n):
        start_time = events[start][0]
        union: set[int] = set()
        for end in range(start, n):
            if events[end][0] - start_time > window_size:
                break
            union |= events[end][1]
        virtual.append(frozenset(union))
    return virtual


def find_windowed_litemsets(
    sequences: PySequence[TimedEvents], threshold: int, window_size: int
) -> dict[Itemset, int]:
    """Apriori over window unions: itemsets whose windowed customer support
    meets the threshold. With window_size == 0 this is the ordinary
    litemset phase."""
    virtuals = [_virtual_transactions(events, window_size) for events in sequences]

    item_counts: dict[int, int] = {}
    for transactions in virtuals:
        seen: set[int] = set()
        for items in transactions:
            seen |= items
        for item in seen:
            item_counts[item] = item_counts.get(item, 0) + 1
    current = sorted(
        (item,) for item, count in item_counts.items() if count >= threshold
    )
    supports: dict[Itemset, int] = {
        itemset: item_counts[itemset[0]] for itemset in current
    }

    while current:
        candidates = generate_candidate_itemsets(current)
        if not candidates:
            break
        tree = ItemsetHashTree(candidates)
        counts: dict[Itemset, int] = {c: 0 for c in candidates}
        for transactions in virtuals:
            contained: set[Itemset] = set()
            for items in transactions:
                contained |= tree.subsets_of(items)
            for itemset in contained:
                counts[itemset] += 1
        current = sorted(c for c, n in counts.items() if n >= threshold)
        for itemset in current:
            supports[itemset] = counts[itemset]
    return supports


def _join_event_sequences(
    large_prev: PySequence[EventTuple],
) -> list[EventTuple]:
    """AprioriAll-style join over event tuples, without middle pruning
    (delete-middle subsequences are not support-monotone under max_gap)."""
    by_overlap: dict[EventTuple, list[EventTuple]] = {}
    for seq in large_prev:
        by_overlap.setdefault(seq[:-1], []).append(seq)
    candidates: set[EventTuple] = set()
    for seq in large_prev:
        for extender in by_overlap.get(seq[1:], ()):
            candidates.add(seq + (extender[-1],))
    return sorted(candidates, key=lambda s: tuple(tuple(sorted(e)) for e in s))


def mine_time_constrained(
    transactions: Iterable[Transaction],
    minsup: float,
    constraints: TimeConstraints = TimeConstraints(),
    *,
    max_pattern_length: int | None = None,
    strategy: str = "hashtree",
    workers: int = 1,
    chunk_size: int | None = None,
) -> list[Pattern]:
    """Find **all** frequent sequences under GSP-style time constraints.

    Returns patterns sorted deterministically, each with its exact
    constrained support. With default constraints, the result equals the
    full set of large sequences of the unconstrained problem.

    ``strategy`` selects the containment backend (see module docstring):
    ``"bitset"`` compiles each history once before the first counting pass
    and every pass reuses the compiled form; ``"hashtree"``/``"naive"``
    run the generic per-candidate loop. ``workers``/``chunk_size`` shard
    the candidate-containment pass over customer partitions exactly as in
    the core pipeline (``workers=1`` serial, ``N > 1`` that many
    processes, ``0`` all CPUs); the counts are identical for every
    setting.
    """
    from repro.core.counting import COUNTING_STRATEGIES
    from repro.parallel.executor import parallel_count_timed

    if strategy not in COUNTING_STRATEGIES:
        raise ValueError(
            f"unknown counting strategy {strategy!r}; "
            f"expected one of {COUNTING_STRATEGIES}"
        )
    if strategy == "vertical":
        # The vertical id-list joins decide plain subsequence containment;
        # gap/window constraints need the event-wise timed matcher, so the
        # constrained pipeline supports the scanning backends only.
        raise ValueError(
            "counting strategy 'vertical' is not supported for "
            "time-constrained mining; use 'hashtree', 'naive', or 'bitset'"
        )
    sequences = build_timed_sequences(transactions)
    num_customers = len(sequences)
    if num_customers == 0:
        return []
    threshold = support_threshold(minsup, num_customers)

    litemsets = find_windowed_litemsets(
        sequences, threshold, constraints.window_size
    )
    supports: dict[EventTuple, int] = {
        (frozenset(itemset),): count for itemset, count in litemsets.items()
    }

    # Once-per-run compilation: every counting pass below scans the
    # compiled histories; the raw sequences are never rescanned.
    countable: PySequence = (
        compile_timed(sequences) if strategy == "bitset" else sequences
    )

    current: list[EventTuple] = list(supports)
    length = 2
    while current and (max_pattern_length is None or length <= max_pattern_length):
        candidates = _join_event_sequences(current)
        if not candidates:
            break
        counts: dict[EventTuple, int] = parallel_count_timed(
            countable,
            candidates,
            constraints,
            workers=workers,
            chunk_size=chunk_size,
        )
        current = [c for c in candidates if counts[c] >= threshold]
        for candidate in current:
            supports[candidate] = counts[candidate]
        length += 1

    patterns = [
        Pattern(
            sequence=Sequence(tuple(sorted(event)) for event in events),
            count=count,
            support=count / num_customers,
        )
        for events, count in supports.items()
    ]
    patterns.sort(key=lambda p: p.sequence.sort_key())
    return patterns
