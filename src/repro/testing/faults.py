"""Deterministic fault injection at the filesystem seam.

Every durable write in the package funnels through
:mod:`repro.io.fsops` (``open``/``replace``/``fsync``/directory fsync —
see the ``durable-writes`` lint rule), which makes crash testing
tractable: instead of killing processes at random, a test counts the
write-path operations a scenario performs (:func:`count_io_ops`), then
re-runs the scenario failing exactly the Nth operation
(:class:`FaultInjector`), for every interesting N from a seeded
schedule (:func:`fault_schedule`). Two failure modes are supported:

* ``kind="oserror"`` — the operation raises :class:`OSError`, modeling
  a full disk or I/O error. Ordinary error handling runs: context
  managers unwind, ``atomic_writer`` removes its temp file, the CLI
  reports one error line.
* ``kind="kill"`` — the operation raises :class:`SimulatedCrash`, which
  deliberately subclasses :class:`BaseException`, not ``Exception``:
  ``except Exception`` cleanup handlers do **not** run, so the
  filesystem is left exactly as ``kill -9`` at that instant would leave
  it (temp files orphaned, footers unwritten). Only ``finally`` blocks
  and context-manager ``__exit__`` run, which matches process teardown
  closely enough for crash-consistency purposes while keeping the test
  in one process.

Injectors fire **before** the operation touches the filesystem and are
single-shot: after firing, the scenario's remaining I/O (in the same
process — e.g. recovery code under test) proceeds normally.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Iterator

from repro.io.fsops import install_hook, remove_hook

__all__ = [
    "FaultInjector",
    "SimulatedCrash",
    "count_io_ops",
    "fault_schedule",
    "inject_faults",
]


class SimulatedCrash(BaseException):
    """A process death at an exact I/O operation.

    A ``BaseException`` on purpose: ``except Exception`` recovery paths
    must not observe it, exactly as they would not observe ``SIGKILL``.
    Tests catch it explicitly at the scenario boundary.
    """


class FaultInjector:
    """Fail the ``fail_at``-th traced filesystem operation (0-based).

    Install as a :mod:`repro.io.fsops` hook (or use
    :func:`inject_faults`). Counts every traced op; when the counter
    hits ``fail_at`` — optionally only counting ops whose path contains
    ``match`` — raises per ``kind`` and disarms. ``ops_seen`` and
    ``fired`` expose what happened for assertions.
    """

    def __init__(
        self,
        fail_at: int | None,
        *,
        kind: str = "oserror",
        match: str | None = None,
    ) -> None:
        if kind not in ("oserror", "kill"):
            raise ValueError(f"kind must be 'oserror' or 'kill', got {kind!r}")
        self.fail_at = fail_at
        self.kind = kind
        self.match = match
        self.ops_seen = 0
        self.fired = False

    def __call__(self, op: str, path: str) -> None:
        if self.match is not None and self.match not in path:
            return
        index = self.ops_seen
        self.ops_seen += 1
        if self.fired or self.fail_at is None or index != self.fail_at:
            return
        self.fired = True
        if self.kind == "kill":
            raise SimulatedCrash(f"simulated crash at io op {index}: {op} {path}")
        raise OSError(f"injected fault at io op {index}: {op} {path}")


@contextmanager
def inject_faults(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install ``injector`` on the filesystem seam for the duration."""
    install_hook(injector)
    try:
        yield injector
    finally:
        remove_hook(injector)


@contextmanager
def count_io_ops(match: str | None = None) -> Iterator[FaultInjector]:
    """Count a scenario's traced operations without failing any.

    Yields a disarmed injector; read ``ops_seen`` after the block to
    size the injection sweep.
    """
    with inject_faults(FaultInjector(None, match=match)) as counter:
        yield counter


def fault_schedule(seed: int, total_ops: int, samples: int) -> list[int]:
    """Deterministic sample of injection points for a sweep.

    Always includes the first and last operation (the classic torn
    edges); the rest are drawn without replacement from a
    ``random.Random(seed)``, so CI can shard sweeps by seed and any
    failure reproduces from ``(seed, total_ops, samples)`` alone.
    """
    if total_ops <= 0:
        return []
    points = {0, total_ops - 1}
    rng = random.Random(seed)
    interior = list(range(1, total_ops - 1))
    rng.shuffle(interior)
    for point in interior[: max(0, samples - len(points))]:
        points.add(point)
    return sorted(points)
