"""Test-support machinery that ships with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection layer
behind the crash-consistency suite: it hooks the filesystem seam
(:mod:`repro.io.fsops`) and fails the Nth write-path operation from a
seeded schedule. It lives in the package (not in ``tests/``) because
worker processes and external harnesses need to import it, but nothing
here is imported by the mining code itself.
"""

from repro.testing.faults import (
    FaultInjector,
    SimulatedCrash,
    count_io_ops,
    fault_schedule,
    inject_faults,
)

__all__ = [
    "FaultInjector",
    "SimulatedCrash",
    "count_io_ops",
    "fault_schedule",
    "inject_faults",
]
