"""SPMF sequence-database format.

SPMF (the de-facto interchange format for sequential pattern mining tools)
encodes one customer sequence per line: itemsets are runs of positive
integers, ``-1`` ends an itemset, ``-2`` ends the sequence::

    1 2 -1 3 -1 -2
    3 -1 -2

Reading assigns customer ids 1..n in line order; writing discards ids
(SPMF has no customer column). Round-tripping therefore preserves events
but renumbers customers — exactly what the format can express.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.core.sequence import Itemset
from repro.db.database import CustomerSequence, SequenceDatabase
from repro.io.atomic import atomic_writer


class SpmfFormatError(ValueError):
    """Raised for malformed SPMF input."""


def _parse_line(line: str, line_number: int) -> tuple[Itemset, ...] | None:
    tokens = line.split()
    if not tokens:
        return None
    events: list[Itemset] = []
    current: list[int] = []
    terminated = False
    for token in tokens:
        if terminated:
            raise SpmfFormatError(f"line {line_number}: tokens after -2")
        try:
            value = int(token)
        except ValueError as exc:
            raise SpmfFormatError(
                f"line {line_number}: non-integer token {token!r}"
            ) from exc
        if value == -1:
            if not current:
                raise SpmfFormatError(f"line {line_number}: empty itemset before -1")
            events.append(tuple(sorted(set(current))))
            current = []
        elif value == -2:
            terminated = True
        elif value < 0:
            raise SpmfFormatError(f"line {line_number}: invalid negative {value}")
        else:
            current.append(value)
    if not terminated:
        raise SpmfFormatError(f"line {line_number}: missing -2 terminator")
    if current:
        raise SpmfFormatError(f"line {line_number}: itemset not closed by -1")
    if not events:
        return None
    return tuple(events)


def iter_spmf(source: str | Path | TextIO) -> Iterator[CustomerSequence]:
    """Stream an SPMF sequence file as :class:`CustomerSequence` records.

    One line is held in memory at a time, which is what lets the
    out-of-core path (:mod:`repro.db.partitioned`) convert files larger
    than memory. Ids are assigned 1..n in line order, and skipping/error
    semantics match :func:`read_spmf` exactly (they share this code).
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            try:
                yield from iter_spmf(handle)
            except SpmfFormatError as exc:
                raise SpmfFormatError(f"{source}: {exc}") from None
        return
    next_id = 1
    for line_number, line in enumerate(source, start=1):
        stripped = line.strip()
        if not stripped or stripped[0] in "#%@":
            continue
        events = _parse_line(stripped, line_number)
        if events is None:
            continue
        yield CustomerSequence(customer_id=next_id, events=events)
        next_id += 1


def read_spmf(source: str | Path | TextIO) -> SequenceDatabase:
    """Read an SPMF sequence file into a :class:`SequenceDatabase`.

    Blank lines, comment lines (starting with ``#``, ``%`` or ``@`` as in
    SPMF's own datasets) and empty sequences are skipped. Error messages
    cite *physical* line numbers — skipped lines still advance the count,
    so the number always matches the source file — and, when reading from
    a path, name the file.
    """
    return SequenceDatabase(list(iter_spmf(source)))


def write_spmf(
    db: SequenceDatabase | Iterable[CustomerSequence],
    target: str | Path | TextIO,
) -> int:
    """Write customer sequences in SPMF format; returns lines written."""
    if isinstance(target, (str, Path)):
        with atomic_writer(target, "w") as handle:
            return write_spmf(db, handle)
    written = 0
    for customer in db:
        target.write(format_spmf_line(customer.events) + "\n")
        written += 1
    return written


def format_spmf_line(events: Iterable[Itemset]) -> str:
    parts: list[str] = []
    for event in events:
        parts.extend(str(item) for item in event)
        parts.append("-1")
    parts.append("-2")
    return " ".join(parts)


def iter_spmf_lines(db: SequenceDatabase) -> Iterator[str]:
    """Lazy SPMF rendering, handy for streaming large databases."""
    for customer in db:
        yield format_spmf_line(customer.events)
