"""Atomic replacement writes: no reader ever observes a torn artifact.

Every persistent file the package writes — partition manifests,
``mining_state.json``, checkpoint passes, compiled-cache pickles,
pattern output, bench JSON — goes through :func:`atomic_writer`, which
implements the classic commit protocol:

1. write to a temp file **in the target's directory** (same filesystem,
   so the final rename cannot degrade to a copy);
2. flush and ``fsync`` the temp file (the bytes are on disk, not in the
   page cache, before anything points at them);
3. ``os.replace`` it over the target — the atomic commit point: readers
   see either the complete old file or the complete new one, never a
   prefix;
4. ``fsync`` the directory, so the rename itself survives power loss.

On an in-process failure (the ``OSError`` family) the temp file is
removed and the target is untouched; on a process-death-like failure
(``BaseException`` that is not an ``Exception`` — a kill, a simulated
crash) the temp file is deliberately left behind, exactly as a real
crash would leave it, and ``seqmine fsck`` reports and removes such
orphans. The ``durable-writes`` lint rule (``python -m tools.lint
--explain durable-writes``) enforces that persistent writers use this
module rather than a bare ``open(path, "w")``.

All filesystem calls route through :mod:`repro.io.fsops`, so the
fault-injection harness exercises these exact code paths.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Any, Iterator

from repro.io.fsops import fs_fsync, fs_open, fs_replace, fsync_dir

__all__ = [
    "TMP_SUFFIX",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "atomic_writer",
]

#: Suffix of in-flight temp files. Fixed (not randomized) so runs are
#: deterministic, concurrent writers to the *same* target serialize on
#: one temp name instead of littering, and ``fsck`` can recognize an
#: interrupted write by name alone.
TMP_SUFFIX = ".tmp"


def _tmp_path(target: Path) -> Path:
    return target.with_name(target.name + TMP_SUFFIX)


@contextmanager
def atomic_writer(
    path: str | Path,
    mode: str = "w",
    *,
    encoding: str | None = None,
    newline: str | None = None,
) -> Iterator[IO[Any]]:
    """Yield a handle whose contents replace ``path`` atomically on exit.

    ``mode`` must be ``"w"`` or ``"wb"``. The handle streams to a temp
    file next to the target; a clean exit fsyncs, renames it over the
    target, and fsyncs the directory. An exception aborts the write and
    leaves the target untouched.
    """
    if mode not in ("w", "wb"):
        raise ValueError(
            f"atomic_writer mode must be 'w' or 'wb', got {mode!r}"
        )
    target = Path(path)
    tmp = _tmp_path(target)
    kwargs: dict[str, Any] = {}
    if mode == "w":
        kwargs["encoding"] = "utf-8" if encoding is None else encoding
        if newline is not None:
            kwargs["newline"] = newline
    handle = fs_open(tmp, mode, **kwargs)
    try:
        yield handle
        fs_fsync(handle)
    except Exception:
        # In-process failure: clean up our temp file; the target is
        # untouched either way.
        handle.close()
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    except BaseException:
        # Process-death-like failure (kill, simulated crash): leave the
        # temp file exactly as a real crash would; fsck removes orphans.
        handle.close()
        raise
    handle.close()
    fs_replace(tmp, target)
    fsync_dir(target.parent)


def atomic_write_text(path: str | Path, text: str) -> None:
    """Atomically replace ``path`` with ``text`` (UTF-8)."""
    with atomic_writer(path, "w") as handle:
        handle.write(text)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    with atomic_writer(path, "wb") as handle:
        handle.write(data)


def atomic_write_json(
    path: str | Path, payload: Any, *, indent: int | None = 2
) -> None:
    """Atomically replace ``path`` with pretty-printed JSON + newline.

    Key order is the payload's insertion order (never re-sorted), so a
    caller that builds its dict deterministically gets byte-identical
    files across runs — the property the crash-consistency suite
    asserts.
    """
    with atomic_writer(path, "w") as handle:
        json.dump(payload, handle, indent=indent)
        handle.write("\n")
