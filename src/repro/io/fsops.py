"""The filesystem seam under every durable write.

Every persistent artifact in the package — binlog partitions, manifests,
mining-state snapshots, checkpoint passes, pattern output — reaches the
operating system through the three wrappers here instead of calling
``open``/``os.replace``/``os.fsync`` directly. In production the
wrappers are transparent; their value is the *hook*: an installed
:data:`FsHook` observes every durable I/O operation (in program order,
with its operation name and path) and may raise, which is how the
deterministic fault-injection layer (:mod:`repro.testing.faults`)
simulates an ``OSError`` or a process crash at exactly the Nth write of
a run. Keeping the seam in one tiny module means the chaos tests
exercise the *real* write paths — no monkeypatching of builtins, no
divergence between what is tested and what runs.

Read paths deliberately bypass the seam: a failed read is an ordinary
``OSError`` the CLI already surfaces cleanly, and tracing reads would
bloat the fault-injection schedule without adding crash states (a crash
during a read leaves the directory untouched).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import IO, Any, Callable

__all__ = [
    "FsHook",
    "fs_fsync",
    "fs_open",
    "fs_replace",
    "fsync_dir",
    "install_hook",
    "remove_hook",
]

#: An observer of durable I/O operations: called as ``hook(op, path)``
#: with ``op`` in ``{"open", "replace", "fsync", "fsync_dir"}`` *before*
#: the operation runs. A hook may raise to simulate the operation
#: failing (``OSError``) or the process dying mid-write
#: (:class:`repro.testing.faults.SimulatedCrash`).
FsHook = Callable[[str, str], None]

_hooks: list[FsHook] = []


def install_hook(hook: FsHook) -> None:
    """Register ``hook`` to observe every subsequent durable I/O op."""
    _hooks.append(hook)


def remove_hook(hook: FsHook) -> None:
    """Unregister a previously installed hook (no-op if absent)."""
    try:
        _hooks.remove(hook)
    except ValueError:
        pass


def _trace(op: str, path: str | Path) -> None:
    for hook in list(_hooks):
        hook(op, str(path))


def fs_open(path: str | Path, mode: str = "r", **kwargs: Any) -> IO[Any]:
    """``open`` for a durable write path, visible to installed hooks."""
    _trace("open", path)
    return open(path, mode, **kwargs)


def fs_replace(source: str | Path, target: str | Path) -> None:
    """``os.replace`` — the atomic commit point — visible to hooks."""
    _trace("replace", target)
    os.replace(source, target)


def fs_fsync(handle: IO[Any]) -> None:
    """Flush ``handle`` and fsync its descriptor, visible to hooks."""
    _trace("fsync", str(getattr(handle, "name", "<handle>")))
    handle.flush()
    os.fsync(handle.fileno())


def fsync_dir(directory: str | Path) -> None:
    """fsync a directory so a just-committed rename survives power loss.

    Platforms whose directory handles reject ``fsync`` (some network
    filesystems; Windows) degrade silently — the rename itself is still
    atomic, only its durability-across-power-loss is best-effort there.
    """
    _trace("fsync_dir", directory)
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
