"""CSV transaction tables — the paper's raw input format.

Column layout (header required): ``customer_id,transaction_time,items``
with items space-separated inside the third field::

    customer_id,transaction_time,items
    1,1,30
    1,2,90
    2,1,10 20

This is the natural export of a point-of-sale table and is what
``seqmine mine --input`` consumes.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.db.database import SequenceDatabase
from repro.db.records import RecordError, Transaction
from repro.io.atomic import atomic_writer

HEADER = ("customer_id", "transaction_time", "items")


class CsvFormatError(ValueError):
    """Raised for malformed CSV transaction input."""


def read_transactions_csv(source: str | Path | TextIO) -> list[Transaction]:
    """Read raw transactions (unsorted is fine — the sort phase sorts)."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8", newline="") as handle:
            return read_transactions_csv(handle)
    reader = csv.reader(source)
    try:
        header = next(reader)
    except StopIteration as exc:
        raise CsvFormatError("empty CSV: missing header") from exc
    if tuple(h.strip() for h in header) != HEADER:
        raise CsvFormatError(
            f"expected header {','.join(HEADER)!r}, got {','.join(header)!r}"
        )
    transactions: list[Transaction] = []
    for row_number, row in enumerate(reader, start=2):
        if not row or all(not field.strip() for field in row):
            continue
        if len(row) != 3:
            raise CsvFormatError(f"row {row_number}: expected 3 fields, got {len(row)}")
        try:
            customer_id = int(row[0])
            transaction_time = int(row[1])
            items = tuple(int(token) for token in row[2].split())
        except ValueError as exc:
            raise CsvFormatError(f"row {row_number}: {exc}") from exc
        try:
            transactions.append(
                Transaction(
                    customer_id=customer_id,
                    transaction_time=transaction_time,
                    items=items,
                )
            )
        except RecordError as exc:
            raise CsvFormatError(f"row {row_number}: {exc}") from exc
    return transactions


def write_transactions_csv(
    transactions: Iterable[Transaction], target: str | Path | TextIO
) -> int:
    """Write transactions; returns data rows written."""
    if isinstance(target, (str, Path)):
        with atomic_writer(target, "w", newline="") as handle:
            return write_transactions_csv(transactions, handle)
    writer = csv.writer(target)
    writer.writerow(HEADER)
    written = 0
    for transaction in transactions:
        writer.writerow(
            [
                transaction.customer_id,
                transaction.transaction_time,
                " ".join(str(i) for i in transaction.items),
            ]
        )
        written += 1
    return written


def database_to_transactions(db: SequenceDatabase) -> Iterator[Transaction]:
    """Flatten a database back to rows, with times 1..n per customer."""
    for customer in db:
        for when, items in enumerate(customer.events, start=1):
            yield Transaction(
                customer_id=customer.customer_id,
                transaction_time=when,
                items=items,
            )


def read_database_csv(source: str | Path | TextIO) -> SequenceDatabase:
    """Read a CSV transaction table straight into a sorted database."""
    return SequenceDatabase.from_transactions(read_transactions_csv(source))
