"""Readers and writers: CSV transaction tables, SPMF format, pattern
files, and the binary binlog partition format (:mod:`repro.io.binlog`)."""
