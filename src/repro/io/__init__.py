"""Readers and writers: CSV transaction tables, SPMF format, pattern files."""
