"""Readers and writers: CSV transaction tables, the SPMF interchange
format, mined-pattern files, the binary binlog partition format
(:mod:`repro.io.binlog`), and the incremental mining-state snapshot
(:mod:`repro.io.state`).

Shared conventions: every reader validates what it parses and raises a
``ValueError`` subclass naming the file (and, where it can, the line or
byte offset) — :class:`~repro.io.spmf.SpmfFormatError`,
:class:`~repro.io.patterns.PatternFormatError`,
:class:`~repro.io.binlog.BinlogFormatError`,
:class:`~repro.io.state.MiningStateError` — which the CLI surfaces as a
one-line error with exit status 1.

The re-exports below resolve lazily (PEP 562): several submodules
import back into :mod:`repro.core` (pattern files carry
:class:`~repro.miner.Pattern` objects, the state file carries
:class:`~repro.incremental.state.MiningState`), and binding them at
package-import time would cycle through the counting layer's own
``repro.io.binlog`` import.
"""

from importlib import import_module
from typing import Any

#: Stable name → defining submodule; see ``docs/API.md``.
_EXPORTS = {
    "BinlogFormatError": "repro.io.binlog",
    "BinlogReader": "repro.io.binlog",
    "BinlogWriter": "repro.io.binlog",
    "CheckpointError": "repro.io.checkpoint",
    "CheckpointStore": "repro.io.checkpoint",
    "MiningStateError": "repro.io.state",
    "PatternFormatError": "repro.io.patterns",
    "SpmfFormatError": "repro.io.spmf",
    "atomic_write_bytes": "repro.io.atomic",
    "atomic_write_json": "repro.io.atomic",
    "atomic_write_text": "repro.io.atomic",
    "atomic_writer": "repro.io.atomic",
    "iter_spmf": "repro.io.spmf",
    "patterns_from_json": "repro.io.patterns",
    "patterns_to_json": "repro.io.patterns",
    "read_database_csv": "repro.io.csvio",
    "read_mining_state": "repro.io.state",
    "read_patterns": "repro.io.patterns",
    "read_spmf": "repro.io.spmf",
    "write_mining_state": "repro.io.state",
    "write_patterns": "repro.io.patterns",
    "write_spmf": "repro.io.spmf",
    "write_transactions_csv": "repro.io.csvio",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    globals()[name] = value  # cache: next access skips this hook
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
