"""Serialization of mined patterns.

Two formats:

* **text** — one pattern per line in the paper's notation plus the SPMF
  support convention: ``<(30)(40 70)> #SUP: 2 #FREQ: 0.400000``. Human
  readable, diff-able, and what ``seqmine mine --output`` writes.
* **JSON** — a list of ``{"events": [[...]], "count": n, "support": f}``
  objects, for programmatic consumers.

The text format is **versioned and truncation-evident**: a written file
starts with a ``#! seqmine-patterns v1`` header and ends with a
``#! end <count>`` footer. A reader that sees the header demands the
footer and an exact line count, so a crash-truncated copy (e.g. the
orphaned ``*.tmp`` of an interrupted :func:`~repro.io.atomic.atomic_writer`)
is rejected with :class:`TruncatedPatternsError` instead of silently
loading a prefix of the pattern set. Headerless legacy files still read
(lenient mode); consumers that must never serve from a partial file —
the pattern-serving index — pass ``strict=True`` to also reject files
with no header at all.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, TextIO

from repro.io.atomic import atomic_writer
from repro.miner import Pattern
from repro.core.sequence import Sequence, format_sequence, parse_sequence

#: Version written into the ``#! seqmine-patterns v<N>`` header.
FORMAT_VERSION = 1

_HEADER_PREFIX = "seqmine-patterns v"
_FOOTER_PREFIX = "end"


class PatternFormatError(ValueError):
    """Raised for malformed pattern files."""


class TruncatedPatternsError(PatternFormatError):
    """A versioned pattern file whose footer is missing or inconsistent.

    This is the signature a crash leaves: the header made it to disk but
    the ``#! end <count>`` footer (or some of the pattern lines before
    it) did not. Loaders must treat the file as unusable — a prefix of a
    pattern set is *not* a smaller valid pattern set for serving
    purposes, because predictions ranked over it would silently change.
    """


def format_pattern_line(pattern: Pattern) -> str:
    return (
        f"{format_sequence(pattern.sequence)} "
        f"#SUP: {pattern.count} #FREQ: {pattern.support:.6f}"
    )


def parse_pattern_line(line: str) -> Pattern:
    head, sep, rest = line.partition("#SUP:")
    if not sep:
        raise PatternFormatError(f"missing '#SUP:' in {line!r}")
    sequence = parse_sequence(head.strip())
    count_part, _, freq_part = rest.partition("#FREQ:")
    try:
        count = int(count_part.strip())
    except ValueError as exc:
        raise PatternFormatError(f"bad support count in {line!r}") from exc
    support = 0.0
    if freq_part.strip():
        try:
            support = float(freq_part.strip())
        except ValueError as exc:
            raise PatternFormatError(f"bad frequency in {line!r}") from exc
    return Pattern(sequence=sequence, count=count, support=support)


def write_patterns(
    patterns: Iterable[Pattern], target: str | Path | TextIO
) -> int:
    """Write a versioned text pattern file; returns patterns written.

    The header/footer pair makes the file truncation-evident (see the
    module docstring); the count returned excludes both directives.
    """
    if isinstance(target, (str, Path)):
        with atomic_writer(target, "w") as handle:
            return write_patterns(patterns, handle)
    target.write(f"#! {_HEADER_PREFIX}{FORMAT_VERSION}\n")
    written = 0
    for pattern in patterns:
        target.write(format_pattern_line(pattern) + "\n")
        written += 1
    target.write(f"#! {_FOOTER_PREFIX} {written}\n")
    return written


def _parse_header(directive: str) -> None:
    if not directive.startswith(_HEADER_PREFIX):
        raise PatternFormatError(
            f"unrecognized pattern-file header {('#! ' + directive)!r}"
        )
    version_text = directive[len(_HEADER_PREFIX):].strip()
    try:
        version = int(version_text)
    except ValueError as exc:
        raise PatternFormatError(
            f"bad version in pattern-file header {('#! ' + directive)!r}"
        ) from exc
    if version != FORMAT_VERSION:
        raise PatternFormatError(
            f"unsupported pattern-file version {version} "
            f"(this reader understands v{FORMAT_VERSION})"
        )


def _parse_footer(directive: str) -> int:
    try:
        return int(directive[len(_FOOTER_PREFIX):].strip())
    except ValueError as exc:
        raise TruncatedPatternsError(
            f"garbled '#! end' footer {('#! ' + directive)!r} — "
            f"the file is torn mid-footer"
        ) from exc


def read_patterns(
    source: str | Path | TextIO, *, strict: bool = False
) -> list[Pattern]:
    """Read a text pattern file (blank/comment lines skipped).

    A file opening with the ``#! seqmine-patterns`` header is validated
    end to end: unknown versions and stray directives raise
    :class:`PatternFormatError`; a missing, garbled, or miscounting
    ``#! end`` footer raises :class:`TruncatedPatternsError`. Headerless
    files read leniently unless ``strict=True``, which rejects them —
    the mode for consumers that must never load a partial file.
    """
    if isinstance(source, (str, Path)):
        try:
            with open(source, "r", encoding="utf-8") as handle:
                return read_patterns(handle, strict=strict)
        except UnicodeDecodeError as exc:
            raise PatternFormatError(
                f"{source}: not a text pattern file ({exc})"
            ) from exc
    patterns = []
    versioned = False
    seen_content = False
    footer_count: int | None = None
    for line in source:
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#!"):
            directive = stripped[2:].strip()
            if not seen_content:
                _parse_header(directive)
                versioned = True
            elif versioned and directive.startswith(_FOOTER_PREFIX):
                if footer_count is not None:
                    raise PatternFormatError(
                        "duplicate '#! end' footer in pattern file"
                    )
                footer_count = _parse_footer(directive)
            else:
                raise PatternFormatError(
                    f"unexpected directive {stripped!r} in pattern file"
                )
            seen_content = True
            continue
        seen_content = True
        if stripped.startswith("#"):
            continue
        if footer_count is not None:
            raise PatternFormatError(
                "pattern line after the '#! end' footer"
            )
        patterns.append(parse_pattern_line(stripped))
    if versioned:
        if footer_count is None:
            raise TruncatedPatternsError(
                "missing '#! end' footer — the pattern file is truncated"
            )
        if footer_count != len(patterns):
            raise TruncatedPatternsError(
                f"footer declares {footer_count} patterns but the file "
                f"holds {len(patterns)} — the pattern file is truncated"
            )
    elif strict:
        raise PatternFormatError(
            "missing '#! seqmine-patterns' header (file predates the "
            "versioned format, or is not a pattern file); re-mine with "
            "--output to produce a versioned file"
        )
    return patterns


def patterns_to_json(patterns: Iterable[Pattern]) -> str:
    return json.dumps(
        [
            {
                "events": [list(event) for event in pattern.sequence.events],
                "count": pattern.count,
                "support": pattern.support,
            }
            for pattern in patterns
        ],
        indent=2,
    )


def patterns_from_json(text: str) -> list[Pattern]:
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PatternFormatError(f"invalid JSON: {exc}") from exc
    if not isinstance(raw, list):
        raise PatternFormatError("expected a JSON list of patterns")
    patterns = []
    for entry in raw:
        try:
            patterns.append(
                Pattern(
                    sequence=Sequence(entry["events"]),
                    count=int(entry["count"]),
                    support=float(entry["support"]),
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PatternFormatError(f"bad pattern entry {entry!r}") from exc
    return patterns
