"""Serialization of mined patterns.

Two formats:

* **text** — one pattern per line in the paper's notation plus the SPMF
  support convention: ``<(30)(40 70)> #SUP: 2 #FREQ: 0.400000``. Human
  readable, diff-able, and what ``seqmine mine --output`` writes.
* **JSON** — a list of ``{"events": [[...]], "count": n, "support": f}``
  objects, for programmatic consumers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, TextIO

from repro.io.atomic import atomic_writer
from repro.miner import Pattern
from repro.core.sequence import Sequence, format_sequence, parse_sequence


class PatternFormatError(ValueError):
    """Raised for malformed pattern files."""


def format_pattern_line(pattern: Pattern) -> str:
    return (
        f"{format_sequence(pattern.sequence)} "
        f"#SUP: {pattern.count} #FREQ: {pattern.support:.6f}"
    )


def parse_pattern_line(line: str) -> Pattern:
    head, sep, rest = line.partition("#SUP:")
    if not sep:
        raise PatternFormatError(f"missing '#SUP:' in {line!r}")
    sequence = parse_sequence(head.strip())
    count_part, _, freq_part = rest.partition("#FREQ:")
    try:
        count = int(count_part.strip())
    except ValueError as exc:
        raise PatternFormatError(f"bad support count in {line!r}") from exc
    support = 0.0
    if freq_part.strip():
        try:
            support = float(freq_part.strip())
        except ValueError as exc:
            raise PatternFormatError(f"bad frequency in {line!r}") from exc
    return Pattern(sequence=sequence, count=count, support=support)


def write_patterns(
    patterns: Iterable[Pattern], target: str | Path | TextIO
) -> int:
    """Write patterns as text; returns lines written."""
    if isinstance(target, (str, Path)):
        with atomic_writer(target, "w") as handle:
            return write_patterns(patterns, handle)
    written = 0
    for pattern in patterns:
        target.write(format_pattern_line(pattern) + "\n")
        written += 1
    return written


def read_patterns(source: str | Path | TextIO) -> list[Pattern]:
    """Read a text pattern file (blank/comment lines skipped)."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return read_patterns(handle)
    patterns = []
    for line in source:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        patterns.append(parse_pattern_line(stripped))
    return patterns


def patterns_to_json(patterns: Iterable[Pattern]) -> str:
    return json.dumps(
        [
            {
                "events": [list(event) for event in pattern.sequence.events],
                "count": pattern.count,
                "support": pattern.support,
            }
            for pattern in patterns
        ],
        indent=2,
    )


def patterns_from_json(text: str) -> list[Pattern]:
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PatternFormatError(f"invalid JSON: {exc}") from exc
    if not isinstance(raw, list):
        raise PatternFormatError("expected a JSON list of patterns")
    patterns = []
    for entry in raw:
        try:
            patterns.append(
                Pattern(
                    sequence=Sequence(entry["events"]),
                    count=int(entry["count"]),
                    support=float(entry["support"]),
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PatternFormatError(f"bad pattern entry {entry!r}") from exc
    return patterns
