"""The durable pass store behind ``mine --checkpoint-dir`` / ``resume``.

A mining run is a deterministic sequence of counting passes (see
:mod:`repro.core.passkey`), so checkpointing does not need to snapshot
algorithm state at all: it records each pass's exact counts as the pass
completes, and a resumed run simply *replays* the recorded prefix in
order — every replayed pass returns the identical counts dict
(insertion order included), so the resumed run makes the identical
decisions, regenerates the identical next candidate sets, and produces
byte-identical output. The first pass past the durable prefix is
counted for real and recorded, and the run continues normally.

On disk, a checkpoint directory holds:

* ``checkpoint.json`` — the run's full configuration. ``attach`` is
  create-or-open: opening an existing directory with a *different*
  configuration is refused, because replaying another run's passes
  would silently produce that run's answer.
* ``pass-0000.json``, ``pass-0001.json``, ... — one file per completed
  pass: its kind, its input digest, and its counts with keys in the
  stable text encoding. Every file is written atomically
  (:mod:`repro.io.atomic`), so a crash mid-record leaves the previous
  passes durable and at most a ``.tmp`` orphan — never a torn pass.

Divergence (a resumed run whose next pass does not match the stored
kind+digest at the cursor) raises :class:`CheckpointError`: the store
and the run disagree about history, and recounting is the only honest
answer. That can only happen if the database or the code changed under
an unchanged configuration.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.core.passkey import PASS_KINDS, decode_key, encode_key
from repro.io.atomic import atomic_write_json

__all__ = [
    "CheckpointError",
    "CheckpointStore",
    "META_NAME",
    "pass_file_name",
]

META_NAME = "checkpoint.json"
META_FORMAT = "seqmine-checkpoint"
PASS_FORMAT = "seqmine-checkpoint-pass"
VERSION = 1


class CheckpointError(ValueError):
    """Raised for unusable checkpoint directories: configuration
    mismatch, corrupt pass files, or a resumed run that diverged from
    the recorded pass sequence."""


def pass_file_name(index: int) -> str:
    return f"pass-{index:04d}.json"


def _normalize(config: Mapping[str, Any]) -> Any:
    """The JSON-round-tripped form of a config, so equality means
    'serializes identically' (tuples == lists, no type leakage)."""
    return json.loads(json.dumps(config))


class CheckpointStore:
    """One checkpoint directory, opened at a cursor.

    Satisfies :class:`repro.core.protocols.PassCheckpoint`. The cursor
    walks the stored passes strictly in order: ``replay`` serves and
    advances while stored passes remain, then returns ``None`` forever
    after; ``record`` appends at the cursor. ``num_replayed`` /
    ``num_recorded`` expose how much of the run came from disk — the
    CLI reports them, and tests assert resume did no redundant
    counting.
    """

    def __init__(self, directory: str | Path, config: Mapping[str, Any]) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        meta_path = self._directory / META_NAME
        wanted = _normalize(config)
        if meta_path.exists():
            stored = self.read_config(self._directory)
            if stored != wanted:
                raise CheckpointError(
                    f"{self._directory}: checkpoint belongs to a different "
                    f"run configuration; resume with the same inputs or "
                    f"use a fresh --checkpoint-dir"
                )
        else:
            atomic_write_json(
                meta_path,
                {"format": META_FORMAT, "version": VERSION, "config": wanted},
            )
        self._num_stored = 0
        while (self._directory / pass_file_name(self._num_stored)).exists():
            self._num_stored += 1
        self._cursor = 0
        self.num_replayed = 0
        self.num_recorded = 0

    @classmethod
    def attach(
        cls, directory: str | Path, config: Mapping[str, Any]
    ) -> "CheckpointStore":
        """Create-or-open ``directory`` for a run with ``config``.

        A fresh directory is created (with its meta file) and starts
        empty; an existing one is opened at its durable pass prefix,
        after verifying the stored configuration matches exactly.
        """
        return cls(directory, config)

    @staticmethod
    def read_config(directory: str | Path) -> Any:
        """The stored run configuration, or :class:`CheckpointError`."""
        meta_path = Path(directory) / META_NAME
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise CheckpointError(
                f"{meta_path}: cannot read checkpoint meta: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"{meta_path}: corrupt checkpoint meta: {exc}"
            ) from exc
        if (
            not isinstance(payload, dict)
            or payload.get("format") != META_FORMAT
            or payload.get("version") != VERSION
            or not isinstance(payload.get("config"), dict)
        ):
            raise CheckpointError(
                f"{meta_path}: not a version-{VERSION} checkpoint meta file"
            )
        return payload["config"]

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def num_stored(self) -> int:
        """Durable passes on disk (the replayable prefix at attach)."""
        return self._num_stored

    def _load_pass(self, index: int) -> dict[str, Any]:
        path = self._directory / pass_file_name(index)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise CheckpointError(f"{path}: cannot read pass: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"{path}: corrupt pass file: {exc}") from exc
        if (
            not isinstance(payload, dict)
            or payload.get("format") != PASS_FORMAT
            or payload.get("version") != VERSION
            or payload.get("index") != index
            or payload.get("kind") not in PASS_KINDS
            or not isinstance(payload.get("digest"), str)
            or not isinstance(payload.get("counts"), dict)
        ):
            raise CheckpointError(
                f"{path}: not a version-{VERSION} checkpoint pass file"
            )
        return payload

    def replay(self, kind: str, key: str) -> dict[Any, int] | None:
        """Counts of the next stored pass; ``None`` once past the end."""
        if self._cursor >= self._num_stored:
            return None
        payload = self._load_pass(self._cursor)
        if payload["kind"] != kind or payload["digest"] != key:
            raise CheckpointError(
                f"{self._directory}: run diverged from checkpoint at pass "
                f"{self._cursor}: stored {payload['kind']} pass "
                f"{payload['digest'][:12]}..., run produced {kind} pass "
                f"{key[:12]}..."
            )
        counts: dict[Any, int] = {}
        for text, count in payload["counts"].items():
            if not isinstance(count, int):
                raise CheckpointError(
                    f"{self._directory / pass_file_name(self._cursor)}: "
                    f"non-integer count for key {text!r}"
                )
            counts[decode_key(kind, text)] = count
        self._cursor += 1
        self.num_replayed += 1
        return counts

    def record(self, kind: str, key: str, counts: Mapping[Any, int]) -> None:
        """Durably append one completed pass at the cursor."""
        payload = {
            "format": PASS_FORMAT,
            "version": VERSION,
            "index": self._cursor,
            "kind": kind,
            "digest": key,
            # Insertion order preserved: replay must hand back the dict
            # exactly as the pass produced it.
            "counts": {encode_key(k): int(v) for k, v in counts.items()},
        }
        atomic_write_json(self._directory / pass_file_name(self._cursor), payload)
        self._cursor += 1
        self._num_stored = max(self._num_stored, self._cursor)
        self.num_recorded += 1
